#!/usr/bin/env bash
# Tier-1 verify, hermetically: no network, no registry, warnings are
# errors. This is exactly what CI and the PR driver run.
#
#   scripts/ci.sh            # build + clippy + test
#   scripts/ci.sh --quick    # skip the release build (debug test only)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

if ! $quick; then
    echo "==> cargo build --release (offline, -D warnings)"
    cargo build --release --workspace --all-targets
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets (offline, -D warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "==> cargo test -q (offline)"
cargo test --workspace -q

# The WAL acceptance gate, run by name so a filter change in the suite
# above can never silently drop it: kill the engine at a matrix of
# injected crash points (per access method, over real page files and a
# real log) and require zero committed-tuple loss on reopen.
echo "==> WAL crash matrix (heap / hash / isam, fault-injected)"
cargo test -q --test wal_recovery crash_matrix_over_real_files

if ! $quick; then
    # Smoke-run the figure harness binaries at a reduced update count so a
    # harness regression fails tier-1, not at paper-reproduction time.
    # fig11 additionally re-checks its acceptance shape: every query's
    # input-page curve must be non-increasing as frames grow.
    echo "==> figure-binary smoke run (TDBMS_MAX_UC=2)"
    TDBMS_MAX_UC=2 ./target/release/fig5 >/dev/null
    TDBMS_MAX_UC=2 ./target/release/fig11 | awk '
        /^Q[0-9]+/ && !hits_block {
            for (i = 3; i <= NF; i++)
                if ($i + 0 > $(i-1) + 0) {
                    print "fig11: " $1 " input pages grew with more frames"
                    exit 1
                }
        }
        /^Buffer hits/ { hits_block = 1 }
    '
fi

echo "ci: all green"
