#!/usr/bin/env bash
# Tier-1 verify, hermetically: no network, no registry, warnings are
# errors. This is exactly what CI and the PR driver run.
#
#   scripts/ci.sh            # build + clippy + test
#   scripts/ci.sh --quick    # skip the release build (debug test only)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

if ! $quick; then
    echo "==> cargo build --release (offline, -D warnings)"
    cargo build --release --workspace --all-targets
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets (offline, -D warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "==> cargo test -q (offline)"
cargo test --workspace -q

# The WAL acceptance gate, run by name so a filter change in the suite
# above can never silently drop it: kill the engine at a matrix of
# injected crash points (per access method, over real page files and a
# real log) and require zero committed-tuple loss on reopen.
echo "==> WAL crash matrix (heap / hash / isam, fault-injected)"
cargo test -q --test wal_recovery crash_matrix_over_real_files

# Corruption-defense acceptance gates, also pinned by name: the scrub /
# repair property (random workload, one random flipped bit, byte-exact
# restore or precise quarantine) and both transient-retry invariants
# (within budget: correct answers; beyond: an error, never a wrong one).
echo "==> corruption-defense property tests (scrub + transient retry)"
cargo test -q --test corruption_defense \
    flip_a_bit_anywhere_and_repair_restores_or_reports
cargo test -q --test corruption_defense transient_failures

if ! $quick; then
    # Smoke-run the figure harness binaries at a reduced update count so a
    # harness regression fails tier-1, not at paper-reproduction time.
    # fig11 additionally re-checks its acceptance shape: every query's
    # input-page curve must be non-increasing as frames grow.
    echo "==> figure-binary smoke run (TDBMS_MAX_UC=2)"
    # Checksumming is out-of-band by design; the whole Figure 5 output
    # must be byte-identical with it on and off.
    TDBMS_MAX_UC=2 ./target/release/fig5 >/tmp/tdbms-fig5-plain.txt
    TDBMS_CHECKSUMS=1 TDBMS_MAX_UC=2 \
        ./target/release/fig5 >/tmp/tdbms-fig5-scrubbed.txt
    diff /tmp/tdbms-fig5-plain.txt /tmp/tdbms-fig5-scrubbed.txt || {
        echo "fig5: output changed under TDBMS_CHECKSUMS=1"; exit 1; }
    rm -f /tmp/tdbms-fig5-plain.txt /tmp/tdbms-fig5-scrubbed.txt
    TDBMS_MAX_UC=2 ./target/release/fig11 | awk '
        /^Q[0-9]+/ && !hits_block {
            for (i = 3; i <= NF; i++)
                if ($i + 0 > $(i-1) + 0) {
                    print "fig11: " $1 " input pages grew with more frames"
                    exit 1
                }
        }
        /^Buffer hits/ { hits_block = 1 }
    '

    # End-to-end scrubber gate: build a durable database through the
    # shell with a manual checkpoint policy (so the process exit leaves
    # a committed log tail), then `check` must replay the WAL and audit
    # the recovered database clean.
    echo "==> tdbms-check over a WAL-recovered file-backed database"
    dbdir=$(mktemp -d)
    trap 'rm -rf "$dbdir"' EXIT
    {
        echo 'create temporal interval emp (name = c16, salary = i4);'
        echo 'range of e is emp;'
        echo 'append to emp (name = "merrie", salary = 20000);'
        echo 'append to emp (name = "tom", salary = 18000);'
        echo 'replace e (salary = e.salary + 500) where e.name = "tom";'
    } | TDBMS_BATCH=1 TDBMS_DURABLE=1 TDBMS_CHECKPOINT=manual \
        TDBMS_CHECKSUMS=1 ./target/release/tdbms "$dbdir" >/dev/null
    [[ -f "$dbdir/wal.tdbms" ]] || {
        echo "check gate: durable session left no write-ahead log"
        exit 1
    }
    ./target/release/check "$dbdir" | grep -qx 'clean' || {
        echo "check gate: recovered database did not audit clean"
        exit 1
    }
    rm -rf "$dbdir"
fi

echo "ci: all green"
