#!/usr/bin/env bash
# Tier-1 verify as a declared gate matrix, hermetically: no network, no
# registry, warnings are errors. Every gate is named, individually
# timed, and reported in a summary table; a non-zero exit lists exactly
# which gates failed. This is what CI and the PR driver run.
#
#   scripts/ci.sh                   # every gate, release profile
#   scripts/ci.sh --quick           # every gate, debug profile
#   scripts/ci.sh --fmt             # prepend the rustfmt gate
#   scripts/ci.sh --gate <name>     # run a single gate by name
#   scripts/ci.sh --list            # print the gate names and exit
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

profile=release
bindir=target/release
profile_flag=--release
with_fmt=false
only_gate=""
list_only=false
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick)
            profile=debug
            bindir=target/debug
            profile_flag=
            ;;
        --fmt) with_fmt=true ;;
        --gate)
            only_gate="${2:?--gate needs a gate name}"
            shift
            ;;
        --list) list_only=true ;;
        *)
            echo "usage: $0 [--quick] [--fmt] [--gate <name>] [--list]" >&2
            exit 2
            ;;
    esac
    shift
done

# ---------------------------------------------------------------- gates

gate_fmt() {
    cargo fmt --all -- --check
}

gate_build() {
    # shellcheck disable=SC2086 — empty in --quick mode, on purpose.
    cargo build $profile_flag --workspace --all-targets
}

gate_clippy() {
    if ! cargo clippy --version >/dev/null 2>&1; then
        echo "clippy not installed; nothing to lint"
        return 0
    fi
    cargo clippy --workspace --all-targets -- -D warnings
}

gate_test() {
    cargo test --workspace -q
}

# The WAL acceptance gate, run by name so a filter change in the suite
# above can never silently drop it: kill the engine at a matrix of
# injected crash points (per access method, over real page files and a
# real log) and require zero committed-tuple loss on reopen.
gate_wal_crash_matrix() {
    cargo test -q --test wal_recovery crash_matrix_over_real_files
}

# Corruption-defense acceptance gates, also pinned by name: the scrub /
# repair property (random workload, one random flipped bit, byte-exact
# restore or precise quarantine) and both transient-retry invariants
# (within budget: correct answers; beyond: an error, never a wrong one).
gate_corruption_scrub() {
    cargo test -q --test corruption_defense \
        flip_a_bit_anywhere_and_repair_restores_or_reports
}

gate_transient_retry() {
    cargo test -q --test corruption_defense transient_failures
}

# Concurrency acceptance gate: 100 seeded multi-thread schedules (each
# audited clean by tdbms-check), the crash-under-concurrency matrix,
# and the concurrent-vs-serial IoStats accounting property.
gate_concurrency_stress() {
    cargo test -q --test concurrency
}

# Group-commit acceptance gate: the crash matrix (kills between the
# batch fsync and the per-session ack), the inline settle path, and
# the checkpoint interplay — zero acked-tuple loss, no phantom acks.
gate_group_commit_crash() {
    cargo test -q --test group_commit
}

# Lock-free read acceptance gate: readers racing writers stay
# prefix-consistent and monotone, with the engine's own counters
# proving zero commit-lock acquisitions on the read path.
gate_snapshot_stress() {
    cargo test -q --test snapshot_stress
}

# Checksumming is out-of-band by design; the whole Figure 5 output must
# be byte-identical with it on and off.
gate_fig5_checksums() {
    local plain scrubbed rc=0
    plain=$(mktemp) scrubbed=$(mktemp)
    TDBMS_MAX_UC=2 "$bindir/fig5" >"$plain"
    TDBMS_CHECKSUMS=1 TDBMS_MAX_UC=2 "$bindir/fig5" >"$scrubbed"
    if ! diff "$plain" "$scrubbed"; then
        echo "fig5: output changed under TDBMS_CHECKSUMS=1"
        rc=1
    fi
    rm -f "$plain" "$scrubbed"
    return "$rc"
}

# Golden parallel-driver gate: the figure binaries must produce byte-
# identical output at any thread count — `--threads 1` is the paper
# mode, and threading is a pure wall-clock optimization.
gate_figures_threads() {
    local a b rc=0
    a=$(mktemp) b=$(mktemp)
    TDBMS_MAX_UC=2 "$bindir/fig5" --threads 1 >"$a"
    TDBMS_MAX_UC=2 "$bindir/fig5" --threads 4 >"$b"
    if ! diff "$a" "$b"; then
        echo "fig5: output changed between --threads 1 and --threads 4"
        rc=1
    fi
    if [[ "$rc" == 0 ]]; then
        TDBMS_MAX_UC=2 "$bindir/fig11" --threads 1 >"$a"
        TDBMS_MAX_UC=2 "$bindir/fig11" --threads 3 >"$b"
        if ! diff "$a" "$b"; then
            echo "fig11: output changed between --threads 1 and" \
                "--threads 3"
            rc=1
        fi
    fi
    rm -f "$a" "$b"
    return "$rc"
}

# fig11 acceptance shape: every query's input-page curve must be
# non-increasing as frames grow.
gate_fig11_shape() {
    TDBMS_MAX_UC=2 "$bindir/fig11" | awk '
        /^Q[0-9]+/ && !hits_block {
            for (i = 3; i <= NF; i++)
                if ($i + 0 > $(i-1) + 0) {
                    print "fig11: " $1 " input pages grew with more frames"
                    exit 1
                }
        }
        /^Buffer hits/ { hits_block = 1 }
    '
}

# Concurrent-session smoke: the closed-loop throughput benchmark at four
# threads must complete its whole op mix with a balanced I/O ledger (the
# binary asserts ledger consistency itself; here we check the op count),
# prove via its lock counters that no read touched the commit lock, and
# leave the JSON report as the BENCH_throughput.json artifact. A second,
# durable run must show group commit actually batching: strictly more
# commits than log fsyncs.
gate_throughput_smoke() {
    local out durable
    out=$("$bindir/throughput" --threads 4 --ops 64 \
        --json BENCH_throughput.json) || return 1
    echo "$out"
    echo "$out" | grep -q 'throughput: threads=4 ops/thread=64 total=256' \
        || {
            echo "throughput: expected 4x64 completed ops"
            return 1
        }
    echo "$out" | grep -q 'locks: shared=0 ' || {
        echo "throughput: a read acquired the commit lock"
        return 1
    }
    [[ -s BENCH_throughput.json ]] || {
        echo "throughput: BENCH_throughput.json not written"
        return 1
    }
    durable=$("$bindir/throughput" --threads 4 --ops 64 --durable 1 \
        --write-every 1 --join-every 0 --gc-max-delay-ms 5) || return 1
    echo "$durable"
    echo "$durable" | awk '
        /^group-commit:/ {
            split($2, c, "="); split($3, f, "=")
            if (c[2] + 0 > f[2] + 0) { found = 1 }
        }
        END { exit found ? 0 : 1 }
    ' || {
        echo "throughput: group commit never batched (commits <= fsyncs)"
        return 1
    }
}

# Wire-protocol acceptance gate, pinned by name: hostile statements and
# raw-socket garbage through real TCP connections must never panic the
# server (it reports its own catch_unwind counter), guardrails must
# come back as typed errors, and graceful shutdown must leave an
# audit-clean database.
gate_net_protocol() {
    cargo test -q --test net_protocol
}

# End-to-end server smoke: start `tdbms-server` durable on an ephemeral
# port, drive it with the throughput bench in --server mode (8 real TCP
# clients, mixed read/write/join workload), shut it down gracefully
# over the wire, and require exit 0, zero caught panics, and a
# `tdbms-check`-clean database directory.
gate_server_smoke() {
    local dbdir srvout addr rc=0 i
    dbdir=$(mktemp -d)
    srvout=$(mktemp)
    "$bindir/tdbms-server" "$dbdir" --addr 127.0.0.1:0 --durable \
        >"$srvout" 2>&1 &
    local srvpid=$!
    addr=""
    for i in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$srvout")
        [[ -n "$addr" ]] && break
        kill -0 "$srvpid" 2>/dev/null || break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "server-smoke: server never reported its address"
        cat "$srvout"
        kill "$srvpid" 2>/dev/null || true
        rm -rf "$dbdir" "$srvout"
        return 1
    fi
    if ! "$bindir/throughput" --server "$addr" --threads 8 --ops 64 \
        --setup-rows 512 --json BENCH_throughput_server.json; then
        echo "server-smoke: throughput --server failed"
        rc=1
    fi
    if [[ "$rc" == 0 && ! -s BENCH_throughput_server.json ]]; then
        echo "server-smoke: BENCH_throughput_server.json not written"
        rc=1
    fi
    if [[ "$rc" == 0 ]]; then
        "$bindir/tdbms-server" --shutdown "$addr" || {
            echo "server-smoke: graceful shutdown request failed"
            rc=1
        }
    fi
    if [[ "$rc" == 0 ]]; then
        wait "$srvpid" || {
            echo "server-smoke: server exited nonzero"
            rc=1
        }
    else
        kill "$srvpid" 2>/dev/null || true
        wait "$srvpid" 2>/dev/null || true
    fi
    if [[ "$rc" == 0 ]] \
        && ! grep -q ' panics=0' "$srvout"; then
        echo "server-smoke: server caught a panic (or never reported)"
        cat "$srvout"
        rc=1
    fi
    if [[ "$rc" == 0 ]] \
        && ! "$bindir/check" "$dbdir" | grep -qx 'clean'; then
        echo "server-smoke: post-shutdown database did not audit clean"
        rc=1
    fi
    rm -rf "$dbdir" "$srvout"
    return "$rc"
}

# Planner golden gate: the cost-based planner is an optimization, never
# a semantics change — every figure binary must print byte-identical
# output with the planner on (default) and forced to the fixed paper
# heuristic (`TDBMS_PLANNER=fixed`). Then the prediction report itself
# must pass its growth-ordering check (fig5 --predict exits nonzero on
# any mis-ranked pair) and leave the BENCH_planner.json artifact.
gate_planner_golden() {
    local a b f rc=0
    a=$(mktemp) b=$(mktemp)
    for f in fig5 fig6 fig7 fig8 fig9 fig10; do
        TDBMS_MAX_UC=2 "$bindir/$f" >"$a"
        TDBMS_PLANNER=fixed TDBMS_MAX_UC=2 "$bindir/$f" >"$b"
        if ! diff "$a" "$b"; then
            echo "$f: output changed under TDBMS_PLANNER=fixed"
            rc=1
            break
        fi
    done
    rm -f "$a" "$b"
    [[ "$rc" == 0 ]] || return "$rc"
    TDBMS_MAX_UC=2 "$bindir/fig5" --predict --json BENCH_planner.json \
        >/dev/null || {
        echo "fig5 --predict: estimates mis-ranked measured growth"
        return 1
    }
    [[ -s BENCH_planner.json ]] || {
        echo "fig5 --predict: BENCH_planner.json not written"
        return 1
    }
}

# Plan-cache smoke: a read-only server workload over a handful of hot
# statement shapes must be served almost entirely from the engine's
# statement cache — >90% hit rate, reported over the wire through the
# throughput driver's stats request.
gate_plan_cache_smoke() {
    local dbdir srvout addr out rc=0 i
    dbdir=$(mktemp -d)
    srvout=$(mktemp)
    "$bindir/tdbms-server" "$dbdir" --addr 127.0.0.1:0 >"$srvout" 2>&1 &
    local srvpid=$!
    addr=""
    for i in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$srvout")
        [[ -n "$addr" ]] && break
        kill -0 "$srvpid" 2>/dev/null || break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "plan-cache-smoke: server never reported its address"
        cat "$srvout"
        kill "$srvpid" 2>/dev/null || true
        rm -rf "$dbdir" "$srvout"
        return 1
    fi
    out=$("$bindir/throughput" --server "$addr" --threads 4 --ops 128 \
        --write-every 0 --join-every 0 --setup-rows 4) || rc=1
    echo "$out"
    if [[ "$rc" == 0 ]]; then
        echo "$out" | awk '
            /^plan-cache:/ {
                found = 1
                sub(/.*hit-rate=/, ""); sub(/%/, "")
                if ($0 + 0 <= 90) {
                    print "plan-cache-smoke: hit rate " $0 "% <= 90%"
                    exit 1
                }
            }
            END { exit found ? 0 : 2 }
        ' || rc=1
    fi
    if [[ "$rc" == 0 ]]; then
        "$bindir/tdbms-server" --shutdown "$addr" || rc=1
        wait "$srvpid" || rc=1
    else
        kill "$srvpid" 2>/dev/null || true
        wait "$srvpid" 2>/dev/null || true
    fi
    rm -rf "$dbdir" "$srvout"
    return "$rc"
}

# End-to-end scrubber gate: build a durable database through the shell
# with a manual checkpoint policy (so the process exit leaves a
# committed log tail), then `check` must replay the WAL and audit the
# recovered database clean.
gate_check_recovery() {
    local dbdir rc=0
    dbdir=$(mktemp -d)
    {
        echo 'create temporal interval emp (name = c16, salary = i4);'
        echo 'range of e is emp;'
        echo 'append to emp (name = "merrie", salary = 20000);'
        echo 'append to emp (name = "tom", salary = 18000);'
        echo 'replace e (salary = e.salary + 500) where e.name = "tom";'
    } | TDBMS_BATCH=1 TDBMS_DURABLE=1 TDBMS_CHECKPOINT=manual \
        TDBMS_CHECKSUMS=1 "$bindir/tdbms" "$dbdir" >/dev/null
    if [[ ! -f "$dbdir/wal.tdbms" ]]; then
        echo "check gate: durable session left no write-ahead log"
        rc=1
    elif ! "$bindir/check" "$dbdir" | grep -qx 'clean'; then
        echo "check gate: recovered database did not audit clean"
        rc=1
    fi
    rm -rf "$dbdir"
    return "$rc"
}

# Graceful-degradation acceptance gate: the deterministic fault-window
# suite (ENOSPC / failed-fsync / lost-connection behavior at every
# layer), then the seeded wall-clock chaos drill — a real TCP server on
# fault-wrapped file storage driven by reconnecting clients while the
# harness flips disk-full and fsync faults. The drill fails unless the
# server survives, every acked append stays readable, workers see only
# typed retryable errors, writes resume, and the closing audit is
# clean. Two seeds, so one lucky schedule can't green the gate.
gate_chaos() {
    cargo test -q --test chaos || return 1
    local seed out
    for seed in 7 1986; do
        out=$("$bindir/throughput" --chaos "$seed" --threads 4 \
            --ops 200 --json BENCH_chaos.json) || return 1
        echo "$out"
        echo "$out" | grep -q '^audit: clean' || {
            echo "chaos: seed $seed did not end in a clean audit"
            return 1
        }
    done
    [[ -s BENCH_chaos.json ]] || {
        echo "chaos: BENCH_chaos.json not written"
        return 1
    }
}

# Scale smoke: the million-version trajectory in miniature — 10k keys,
# a skewed update stream, reorganization after every round. The driver
# asserts its own invariants (bounded-io, reorg-helps, cold-flat,
# migration, daemon-live) and exits nonzero naming the first one that
# fails; --audit additionally requires a tdbms-check-clean database
# after compaction. Leaves BENCH_scale.json as the artifact.
gate_scale_smoke() {
    "$bindir/scale" --scale 10000 --rounds 3 --audit \
        --json BENCH_scale.json
}

# Bench-trajectory gate: regenerate the benchmark artifacts fresh and
# diff them against the committed baselines (HEAD's copies, so earlier
# gates overwriting the working-tree files can't skew the comparison).
# Throughput qps must stay within TDBMS_QPS_FLOOR (default 0.7x) of
# the baseline — release profile only; debug timings are not
# comparable. The single-threaded scale driver's page accounting is
# deterministic, so those metrics must match the baseline *exactly*.
# On a pass, a dated entry is appended to BENCH_TRAJECTORY.md.
gate_bench_trajectory() {
    local fresh_t fresh_s base floor rc=0
    fresh_t=$(mktemp) fresh_s=$(mktemp) base=$(mktemp)
    "$bindir/throughput" --threads 4 --ops 64 --json "$fresh_t" \
        >/dev/null || return 1
    "$bindir/scale" --scale 10000 --rounds 3 --no-daemon \
        --json "$fresh_s" >/dev/null || return 1
    git show HEAD:BENCH_throughput.json >"$base" 2>/dev/null \
        || cp BENCH_throughput.json "$base"
    floor="${TDBMS_QPS_FLOOR:-0.7}"
    [[ "$profile" == release ]] || floor=0
    scripts/bench_diff "$base" "$fresh_t" --qps-floor "$floor" \
        --exact total_ops --exact errors || {
        echo "bench-trajectory: throughput regressed vs HEAD baseline"
        rc=1
    }
    git show HEAD:BENCH_scale.json >"$base" 2>/dev/null \
        || cp BENCH_scale.json "$base"
    scripts/bench_diff "$base" "$fresh_s" \
        --exact scale --exact hot_pages_baseline \
        --exact hot_pages_reorg --exact cold_pages --exact migrated \
        --exact history_rows --exact primary_pages_reorg || {
        echo "bench-trajectory: scale page accounting drifted vs HEAD"
        rc=1
    }
    if [[ "$rc" == 0 ]]; then
        scripts/bench_diff --record BENCH_TRAJECTORY.md \
            "throughput/$profile" "$fresh_t" qps total_ops errors
        scripts/bench_diff --record BENCH_TRAJECTORY.md \
            "scale/$profile" "$fresh_s" hot_pages_no_reorg \
            hot_pages_reorg migrated
    fi
    rm -f "$fresh_t" "$fresh_s" "$base"
    return "$rc"
}

# --------------------------------------------------------------- driver

GATES=()
$with_fmt && GATES+=(fmt)
GATES+=(
    build clippy test
    wal-crash-matrix corruption-scrub transient-retry
    concurrency-stress group-commit-crash snapshot-stress
    fig5-checksums figures-threads fig11-shape
    planner-golden plan-cache-smoke
    throughput-smoke net-protocol server-smoke check-recovery
    chaos scale-smoke bench-trajectory
)

if $list_only; then
    printf '%s\n' "${GATES[@]}"
    exit 0
fi

if [[ -n "$only_gate" ]]; then
    if ! declare -F "gate_${only_gate//-/_}" >/dev/null; then
        echo "unknown gate: $only_gate (try --list)" >&2
        exit 2
    fi
    GATES=("$only_gate")
fi

# Each gate runs in a child `bash -e` so a failing command anywhere in
# its body fails the gate (errexit is suppressed inside `if !` in the
# parent, which would otherwise let mid-gate failures slip through).
export bindir profile_flag profile
export -f gate_fmt gate_build gate_clippy gate_test \
    gate_wal_crash_matrix gate_corruption_scrub gate_transient_retry \
    gate_concurrency_stress gate_group_commit_crash \
    gate_snapshot_stress gate_fig5_checksums gate_figures_threads \
    gate_fig11_shape gate_planner_golden gate_plan_cache_smoke \
    gate_throughput_smoke gate_net_protocol \
    gate_server_smoke gate_check_recovery gate_chaos \
    gate_scale_smoke gate_bench_trajectory

RAN=() STATUSES=() TOOK=() FAILED=()
for name in "${GATES[@]}"; do
    echo "==> gate: $name ($profile profile)"
    t0=$SECONDS
    status=pass
    set +e
    bash -c "set -euo pipefail; gate_${name//-/_}"
    rc=$?
    set -e
    if [[ "$rc" != 0 ]]; then
        status=FAIL
    fi
    RAN+=("$name")
    STATUSES+=("$status")
    TOOK+=("$((SECONDS - t0))")
    if [[ "$status" == FAIL ]]; then
        FAILED+=("$name")
        echo "==> gate: $name FAILED"
    fi
done

echo
printf '%-20s %-6s %6s\n' "gate" "status" "secs"
printf '%-20s %-6s %6s\n' "----" "------" "----"
for i in "${!RAN[@]}"; do
    printf '%-20s %-6s %6s\n' "${RAN[$i]}" "${STATUSES[$i]}" "${TOOK[$i]}"
done
echo

if [[ "${#FAILED[@]}" -gt 0 ]]; then
    echo "ci: FAILED gates: ${FAILED[*]}"
    exit 1
fi
echo "ci: all green ($profile profile, ${#RAN[@]} gates)"
