#!/usr/bin/env bash
# Tier-1 verify, hermetically: no network, no registry, warnings are
# errors. This is exactly what CI and the PR driver run.
#
#   scripts/ci.sh            # build + clippy + test
#   scripts/ci.sh --quick    # skip the release build (debug test only)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

if ! $quick; then
    echo "==> cargo build --release (offline, -D warnings)"
    cargo build --release --workspace --all-targets
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets (offline, -D warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "==> cargo test -q (offline)"
cargo test --workspace -q

echo "ci: all green"
