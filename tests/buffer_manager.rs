//! Buffer-manager integration checks.
//!
//! The buffer-manager refactor must be invisible in paper mode: these
//! tests pin every Q01–Q12 input/output page count on the temporal/100 %
//! database at update counts 0 and 14 (the paper's reporting point) under
//! the default configuration (1 frame per relation, LRU). Any change to
//! faulting, eviction, or accounting that alters a published figure fails
//! here, not at paper-reproduction time. A seeded property test then
//! drives the pager through arbitrary read/write/append/resize schedules
//! and asserts the v2 ledger identity `hits + misses == accesses`.

use tdbms_bench::{
    build_database, evolve_uniform, queries_for, run_buffer_sweep,
    BenchConfig,
};
use tdbms_core::EvictionPolicy;
use tdbms_kernel::DatabaseClass;
use tdbms_prop::{check, Gen};

/// (query, input pages, output pages) at one update count, paper mode.
fn measure_all(uc: u32) -> Vec<(String, u64, u64)> {
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    assert_eq!(cfg.buffer_frames, 1, "paper mode is the default");
    assert_eq!(cfg.buffer_policy, EvictionPolicy::Lru);
    let mut db = build_database(&cfg);
    for _ in 0..uc {
        evolve_uniform(&mut db, &cfg);
    }
    queries_for(cfg.class)
        .iter()
        .map(|q| {
            let out = db.execute(&q.tquel).unwrap();
            assert!(
                out.stats.buffer_hits + out.stats.input_pages > 0
                    || out.stats.output_pages > 0,
                "{}: nothing measured",
                q.id
            );
            (
                q.id.to_string(),
                out.stats.input_pages,
                out.stats.output_pages,
            )
        })
        .collect()
}

fn assert_golden(uc: u32, golden: &[(&str, u64, u64)]) {
    let measured = measure_all(uc);
    let rendered: Vec<String> = measured
        .iter()
        .map(|(q, i, o)| format!("(\"{q}\", {i}, {o}),"))
        .collect();
    assert_eq!(
        measured.len(),
        golden.len(),
        "query set changed; new table:\n{}",
        rendered.join("\n")
    );
    for ((q, i, o), (gq, gi, go)) in measured.iter().zip(golden) {
        assert_eq!(
            (q.as_str(), *i, *o),
            (*gq, *gi, *go),
            "UC {uc} page counts drifted from the published figures; \
             measured table:\n{}",
            rendered.join("\n")
        );
    }
}

#[test]
fn golden_counts_uc0_paper_mode() {
    assert_golden(
        0,
        &[
            ("Q01", 1, 0),
            ("Q02", 2, 0),
            ("Q03", 128, 0),
            ("Q04", 128, 0),
            ("Q05", 1, 0),
            ("Q06", 2, 0),
            ("Q07", 128, 0),
            ("Q08", 128, 0),
            ("Q09", 1142, 17),
            ("Q10", 2193, 17),
            ("Q11", 384, 0),
            ("Q12", 131, 2),
        ],
    );
}

#[test]
fn golden_counts_uc14_paper_mode() {
    assert_golden(
        14,
        &[
            ("Q01", 29, 0),
            ("Q02", 30, 0),
            ("Q03", 3712, 0),
            ("Q04", 3712, 0),
            ("Q05", 29, 0),
            ("Q06", 30, 0),
            ("Q07", 3712, 0),
            ("Q08", 3712, 0),
            ("Q09", 33425, 17),
            ("Q10", 34449, 17),
            ("Q11", 11136, 0),
            ("Q12", 3743, 2),
        ],
    );
}

#[test]
fn fig11_curve_is_monotone_non_increasing() {
    // Reduced-scale fig11 (UC 3, caps 1/2/4/8): every query's input-page
    // curve must be non-increasing as frames grow — LRU is a stack
    // algorithm and the benchmark's reference strings don't depend on
    // buffering, so the full-scale UC 14 figure inherits the property.
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let data = run_buffer_sweep(cfg, 3, &[1, 2, 4, 8]);
    for (q, costs) in &data.costs {
        for w in costs.windows(2) {
            assert!(
                w[1].cost.input <= w[0].cost.input,
                "{q}: input pages grew with more frames"
            );
        }
    }
}

#[test]
fn iostats_identity_under_random_schedules() {
    // The v2 ledger invariant, as a property: whatever interleaving of
    // reads, writes, appends, cap resizes, invalidations, and truncations
    // the pager sees, every buffered access is classified as exactly one
    // hit or miss (`hits + misses == accesses`), per file and in total.
    use tdbms_storage::{BufferConfig, PageKind, Pager};

    check("iostats_hit_miss_access_identity", 40, |g: &mut Gen| {
        let policy = if g.bool() {
            tdbms_storage::EvictionPolicy::Lru
        } else {
            tdbms_storage::EvictionPolicy::Clock
        };
        let frames = g.range(1usize..4);
        let pager = Pager::in_memory_with_config(BufferConfig::uniform(
            frames, policy,
        ));
        let nfiles = g.range(1usize..4);
        let files: Vec<_> =
            (0..nfiles).map(|_| pager.create_file().unwrap()).collect();
        let mut npages = vec![0u32; nfiles];

        // Track expected accesses per file alongside the pager's ledger.
        let mut expected = vec![0u64; nfiles];
        let ops = g.range(20usize..120);
        for _ in 0..ops {
            let fi = g.range(0usize..nfiles);
            let f = files[fi];
            match g.range(0u32..10) {
                0 | 1 => {
                    pager.append_page(f, PageKind::Data).unwrap();
                    npages[fi] += 1;
                    // Appends materialize a page; they are not accesses.
                }
                2..=5 if npages[fi] > 0 => {
                    let p = g.range(0u32..npages[fi]);
                    pager.read(f, p, |_| ()).unwrap();
                    expected[fi] += 1;
                }
                6 | 7 if npages[fi] > 0 => {
                    let p = g.range(0u32..npages[fi]);
                    pager
                        .write(f, p, |pg| {
                            let _ = pg.push_row(4, &[1, 2, 3, 4]);
                        })
                        .unwrap();
                    expected[fi] += 1;
                }
                8 => {
                    let cap = g.range(1usize..5);
                    pager.set_buffer_frames(f, cap).unwrap();
                }
                _ => pager.invalidate_buffers().unwrap(),
            }
            assert!(
                pager.stats().is_consistent(),
                "ledger inconsistent mid-schedule"
            );
        }
        for (fi, f) in files.iter().enumerate() {
            let io = pager.stats().of(*f);
            assert_eq!(io.accesses, expected[fi], "access count drifted");
            assert_eq!(
                io.hits + io.misses(),
                io.accesses,
                "hit/miss identity violated"
            );
        }
        assert_eq!(
            pager.stats().total_hits() + pager.stats().total_reads(),
            pager.stats().total_accesses()
        );
    });
}

#[test]
fn phase_scoping_surfaces_through_exec_stats() {
    // A decomposed (multi-variable) retrieve attributes its I/O to the
    // "decomposition" and "substitution" phases, and the phase deltas
    // cover the statement's totals.
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut db = build_database(&cfg);
    let out = db
        .execute(
            "retrieve (h.id, i.seq) where h.id = i.id and i.amount = 73700",
        )
        .unwrap();
    let names: Vec<&str> =
        out.stats.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["decomposition", "substitution"]);
    let d = out.stats.scoped("decomposition");
    let s = out.stats.scoped("substitution");
    assert!(d.reads > 0, "detachment scans the base relations");
    assert!(d.writes > 0, "detachment materializes temporaries");
    assert!(s.reads > 0, "substitution reads the temporaries back");
    assert_eq!(d.reads + s.reads, out.stats.input_pages);
    assert_eq!(d.writes + s.writes, out.stats.output_pages);

    // Single-variable statements don't decompose: no phases.
    let out = db.execute("retrieve (h.seq) where h.id = 500").unwrap();
    assert!(out.stats.phases.is_empty());
}
