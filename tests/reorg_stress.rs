//! Reorganization-under-concurrency acceptance suite.
//!
//! The background compactor moves committed, superseded versions out of
//! the primary chains while sessions keep reading and writing. Three
//! things may never happen, and each test here exists to catch one:
//!
//! * a snapshot read blocking on (or even touching) the commit lock
//!   because of a concurrent compaction pass;
//! * a committed version going missing — from `now` queries or from
//!   time travel — because migration raced a writer;
//! * a crash in the middle of a reorganization pass corrupting the
//!   durable state: recovery must come back audit-clean with exactly
//!   the committed versions, no losses, no duplicates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tdbms::wal::{FaultLog, LogStore, SharedMemLog};
use tdbms::{Database, Engine};
use tdbms_check::check_database;
use tdbms_kernel::{Granularity, Prng, TimeVal};
use tdbms_storage::{DiskManager, FaultDisk, FaultPlan, SharedMemDisk};

const KEYS: i64 = 16;

fn beginning() -> String {
    TimeVal::BEGINNING.format(Granularity::Second)
}

/// A fresh keyed rollback relation: ids `1..=KEYS`, hashed on `id`.
fn create_keyed(db: &mut Database) {
    db.execute("create rollback r (id = i4, x = i4)")
        .expect("create");
    for id in 1..=KEYS {
        db.execute(&format!("append to r (id = {id}, x = 0)"))
            .expect("seed");
    }
    db.execute("modify r to hash on id where fillfactor = 100")
        .expect("modify");
}

/// Versions reachable by time travel — every version ever committed.
fn all_versions(db: &mut Database) -> usize {
    db.execute("range of q is r").expect("range");
    db.execute(&format!(
        "retrieve (q.x) as of \"{}\" through \"now\"",
        beginning()
    ))
    .expect("time travel")
    .rows()
    .len()
}

fn audit_clean(engine: &Engine, ctx: &str) {
    engine.with_write(|db| {
        let (pager, catalog, _) = db.internals();
        let report = check_database(pager, catalog).expect("audit runs");
        assert!(
            report.is_clean(),
            "{ctx}: check found problems:\n{}",
            report.render()
        );
    });
}

/// One seeded schedule: the compactor on a tight interval races two
/// writers and two readers. Afterwards the compactor must have
/// migrated versions, the ledger balances, reads were (almost always)
/// lock-free, no version is lost, and the database audits clean.
fn run_reorg_schedule(seed: u64, durable: bool) {
    let mut db = if durable {
        Database::open_durable_on(
            Box::new(SharedMemDisk::new()),
            Box::new(SharedMemLog::new()),
            None,
        )
        .expect("durable open")
    } else {
        Database::in_memory()
    };
    db.set_cold_statements(false);
    create_keyed(&mut db);
    let engine = Engine::new(db);
    let daemon =
        engine.spawn_reorg_daemon(std::time::Duration::from_millis(1));

    let replaces = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let engine = engine.clone();
            let replaces = &replaces;
            scope.spawn(move || {
                let mut g = Prng::seed_from_u64(seed ^ (t << 24) ^ 0x4e04);
                let mut s = engine.session();
                s.execute("range of z is r").expect("range");
                for _ in 0..24 {
                    let key = g.random_range(1i64..=KEYS);
                    if t < 2 {
                        s.execute(&format!(
                            "replace z (x = z.x + 1) where z.id = {key}"
                        ))
                        .expect("replace");
                        replaces.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Keyed current read: exactly one live version,
                        // whatever the compactor is doing.
                        let out = s
                            .execute(&format!(
                                "retrieve (z.x) where z.id = {key}"
                            ))
                            .expect("read");
                        assert_eq!(
                            out.rows().len(),
                            1,
                            "seed {seed}: key {key} not exactly-once \
                             mid-reorg"
                        );
                    }
                }
            });
        }
    });
    // The writers committed replaces, so superseded versions exist and
    // the next daemon pass must migrate them — wait (bounded) for it
    // rather than racing the 1 ms interval.
    let deadline =
        std::time::Instant::now() + std::time::Duration::from_secs(10);
    while daemon.migrated() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let migrated = daemon.migrated();
    daemon.stop();
    assert!(
        migrated > 0,
        "seed {seed} (durable={durable}): compactor migrated nothing \
         within 10s of the workload finishing"
    );

    // Lock accounting: reads are served from the published snapshot.
    // A compaction pass republishing the view mid-read is allowed to
    // push that one read onto the shared-lock retry path (correctness
    // over latency), so the invariant is "rare", not "never": across
    // 48 reads per schedule, fallbacks must stay in single digits,
    // and most reads must be provably lock-free.
    let locks = engine.lock_stats();
    assert!(
        locks.shared <= 8,
        "seed {seed} (durable={durable}): {} of 48 reads fell back to \
         the commit lock — the compactor is starving the snapshot path",
        locks.shared
    );
    assert!(
        locks.snapshot_reads >= 40,
        "seed {seed} (durable={durable}): only {} snapshot-served \
         reads of 48",
        locks.snapshot_reads
    );
    engine.with_read(|db| {
        assert!(
            db.io_stats().is_consistent(),
            "seed {seed}: I/O ledger unbalanced after reorg stress"
        );
    });
    let committed =
        KEYS as usize + replaces.load(Ordering::Relaxed) as usize;
    engine.with_write(|db| {
        assert_eq!(
            all_versions(db),
            committed,
            "seed {seed} (durable={durable}): committed versions lost \
             or duplicated under concurrent reorganization"
        );
    });
    audit_clean(&engine, &format!("seed {seed} (durable={durable})"));
}

/// Acceptance: ten seeded schedules (a third through the WAL), every
/// one consistent, audit-clean, and actually compacted.
#[test]
fn seeded_reorg_schedules_stay_consistent_and_lock_free() {
    for seed in 0..10u64 {
        run_reorg_schedule(seed, seed % 3 == 0);
    }
}

/// Crash mid-reorganization: a fault-injected durable incarnation
/// alternates committed replaces with compaction passes until the
/// budget trips mid-flight. Recovery on the raw survivors must hold
/// exactly the committed versions (time travel included), audit clean,
/// and accept further reorganization.
#[test]
fn crash_mid_reorg_loses_no_committed_versions() {
    for case in 0..10u64 {
        let mut g = Prng::seed_from_u64(0x4e04_c4a5 + case * 104_729);
        let budget = g.random_range(15u64..=120);
        let torn = g.random_bool().then(|| g.random_range(0usize..512));

        // Incarnation 1, no faults: keyed relation with a real version
        // history, checkpointed so the crash run always finds it.
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let mut base_versions = KEYS as usize;
        {
            let mut db = Database::open_durable_on(
                Box::new(disk.clone()),
                Box::new(log.clone()),
                None,
            )
            .expect("baseline open");
            create_keyed(&mut db);
            db.execute("range of v is r").expect("range");
            for ver in 1..4i64 {
                for id in 1..=KEYS {
                    db.execute(&format!(
                        "replace v (x = {ver}) where v.id = {id}"
                    ))
                    .expect("baseline replace");
                    base_versions += 1;
                }
            }
            db.checkpoint().expect("baseline checkpoint");
        }

        // Incarnation 2: same storage behind a fault plan; replaces
        // and reorganization passes interleave until the crash.
        let plan = FaultPlan::new(Some(budget));
        let fdisk: Box<dyn DiskManager> = match torn {
            Some(k) => Box::new(FaultDisk::with_torn_writes(
                Box::new(disk.clone()),
                plan.clone(),
                k,
            )),
            None => Box::new(FaultDisk::new(
                Box::new(disk.clone()),
                plan.clone(),
            )),
        };
        let flog: Box<dyn LogStore> =
            Box::new(FaultLog::new(Box::new(log.clone()), plan.clone()));
        let committed = Mutex::new(0usize);
        if let Ok(mut db) = Database::open_durable_on(fdisk, flog, None) {
            if db.execute("range of v is r").is_ok() {
                for i in 0..48i64 {
                    let key = 1 + (i % KEYS);
                    match db.execute(&format!(
                        "replace v (x = {}) where v.id = {key}",
                        100 + i
                    )) {
                        Ok(_) => {
                            *committed.lock().expect("unpoisoned") += 1;
                        }
                        Err(_) => break,
                    }
                    if i % 3 == 0 && db.reorganize("r").is_err() {
                        break;
                    }
                }
            }
        }
        assert!(
            plan.crashed(),
            "case {case}: budget {budget} never tripped — the crash \
             must land mid-workload"
        );
        let committed =
            base_versions + *committed.lock().expect("unpoisoned");

        // Recovery on the raw survivors.
        let mut rdb = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("recovery must succeed on raw survivors");
        assert_eq!(
            all_versions(&mut rdb),
            committed,
            "case {case} (budget {budget}, torn {torn:?}): committed \
             versions lost or duplicated across a mid-reorg crash"
        );
        {
            let (pager, catalog, _) = rdb.internals();
            let report =
                check_database(pager, catalog).expect("audit runs");
            assert!(
                report.is_clean(),
                "case {case}: recovered database dirty:\n{}",
                report.render()
            );
        }
        // The recovered database keeps compacting like nothing
        // happened, and compaction still changes no answer.
        rdb.reorganize("r").expect("post-recovery reorganize");
        assert_eq!(
            all_versions(&mut rdb),
            committed,
            "case {case}: post-recovery reorganization changed the \
             version count"
        );
    }
}
