//! Planner correctness properties.
//!
//! The cost-based planner only chooses *orders* and *access paths*;
//! it must never change what a query returns. The seeded property
//! test here drives random schemas, workloads, and multi-variable
//! retrieves through both planner modes and requires byte-identical
//! rows. The plan-cache tests drive the engine's statement cache
//! through concurrent sessions and catalog changes mid-stream — a
//! cached plan may go stale, but serving stale *results* is a bug.
//! The accuracy test holds the `explain` estimates to the issue's 2×
//! acceptance bound on the paper workload's single-variable queries
//! (join estimates are ordinal — validated by the fig5 `--predict`
//! ranking gate instead; see DESIGN.md "Query planning").

use tdbms::{Database, Engine, PlannerMode, Value};
use tdbms_bench::{build_database, evolve_uniform, BenchConfig};
use tdbms_kernel::DatabaseClass;
use tdbms_prop::{check, Gen};

/// One generated scenario: setup statements, then query statements.
struct Scenario {
    setup: Vec<String>,
    queries: Vec<String>,
}

fn arb_scenario(g: &mut Gen) -> Scenario {
    let nrels = g.range(2usize..4);
    let mut setup = Vec::new();
    for r in 0..nrels {
        setup.push(format!(
            "create temporal interval r{r} (id = i4, val = i4)"
        ));
        let rows = g.range(16u32..48);
        for _ in 0..rows {
            setup.push(format!(
                "append to r{r} (id = {}, val = {})",
                g.range(0i32..12),
                g.range(-100i32..100)
            ));
        }
        // Random access method: heap stays as created.
        match g.range(0u8..3) {
            1 => setup.push(format!(
                "modify r{r} to hash on id where fillfactor = 100"
            )),
            2 => setup.push(format!(
                "modify r{r} to isam on id where fillfactor = 100"
            )),
            _ => {}
        }
        setup.push(format!("range of v{r} is r{r}"));
        // Updates grow version chains (what the planner's chain-length
        // statistic feeds on).
        let updates = g.range(0u32..12);
        for _ in 0..updates {
            setup.push(format!(
                "replace v{r} (val = {}) where v{r}.id = {}",
                g.range(-100i32..100),
                g.range(0i32..12)
            ));
        }
    }
    let mut queries = Vec::new();
    for _ in 0..g.range(3usize..7) {
        let a = g.range(0usize..nrels);
        let mut b = g.range(0usize..nrels);
        if b == a {
            b = (b + 1) % nrels;
        }
        let mut conj = vec![format!("v{a}.id = v{b}.id")];
        if g.bool() {
            conj.push(format!("v{a}.val > {}", g.range(-100i32..100)));
        }
        if g.bool() {
            conj.push(format!("v{b}.id = {}", g.range(0i32..12)));
        }
        queries.push(format!(
            "retrieve (v{a}.id, v{a}.val, v{b}.val) where {}",
            conj.join(" and ")
        ));
    }
    Scenario { setup, queries }
}

/// Replay a scenario under one planner mode, returning each query's
/// `(columns, rows, affected)`.
fn replay(
    s: &Scenario,
    mode: PlannerMode,
) -> Vec<(Vec<String>, Vec<Vec<Value>>, usize)> {
    let mut db = Database::in_memory();
    db.set_planner_mode(mode);
    for stmt in &s.setup {
        db.execute(stmt)
            .unwrap_or_else(|e| panic!("setup `{stmt}` failed: {e}"));
    }
    s.queries
        .iter()
        .map(|q| {
            let out = db
                .execute(q)
                .unwrap_or_else(|e| panic!("`{q}` failed: {e}"));
            (
                out.columns.iter().map(|(n, _)| n.clone()).collect(),
                out.rows().to_vec(),
                out.affected,
            )
        })
        .collect()
}

#[test]
fn planner_order_returns_byte_identical_rows() {
    check("planner_order_rows", 24, |g| {
        let s = arb_scenario(g);
        let cost = replay(&s, PlannerMode::Cost);
        let fixed = replay(&s, PlannerMode::Fixed);
        for (i, (c, f)) in cost.iter().zip(&fixed).enumerate() {
            assert_eq!(
                c, f,
                "query {i} `{}` differs between planner modes",
                s.queries[i]
            );
        }
    });
}

fn seeded_engine() -> Engine {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    for id in 0..64 {
        db.execute(&format!("append to t (id = {id}, x = {id})"))
            .unwrap();
    }
    Engine::new(db)
}

/// Concurrent sessions hammer two hot statement texts while a writer
/// commits (republishing the view) mid-stream. No read may error or
/// see a row count outside the [before, after] window, and the hot
/// texts must hit the cache >90 % of the time.
#[test]
fn plan_cache_stress_under_concurrent_writes() {
    let engine = seeded_engine();
    let readers = 4;
    let reps = 200u64;
    std::thread::scope(|s| {
        for _ in 0..readers {
            let engine = engine.clone();
            s.spawn(move || {
                let mut sess = engine.session();
                sess.execute("range of q is t").unwrap();
                for i in 0..reps {
                    let stmt = if i % 2 == 0 {
                        "retrieve (q.x) where q.id = 7"
                    } else {
                        "retrieve (q.id) where q.x > 1000"
                    };
                    let out = sess.execute(stmt).unwrap();
                    if i % 2 == 0 {
                        assert_eq!(out.affected, 1);
                    } else {
                        // Writers append x = 5000 rows concurrently;
                        // any count up to the final total is a valid
                        // snapshot.
                        assert!(out.affected <= 32);
                    }
                }
            });
        }
        let engine = engine.clone();
        s.spawn(move || {
            let mut w = engine.session();
            w.execute("range of w is t").unwrap();
            for i in 0..32 {
                w.execute(&format!(
                    "append to t (id = {}, x = 5000)",
                    100 + i
                ))
                .unwrap();
            }
        });
    });
    let (hits, misses) = engine.plan_cache_stats();
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        rate > 0.9,
        "hot statements should hit >90%: hits={hits} misses={misses}"
    );
    // The writer's rows are all visible once the dust settles.
    let mut sess = engine.session();
    sess.execute("range of q is t").unwrap();
    let out = sess.execute("retrieve (q.id) where q.x > 1000").unwrap();
    assert_eq!(out.affected, 32);
}

/// A catalog change between repeats of the same statement text must
/// invalidate the cached binding: the warmed query re-binds against
/// the recreated relation instead of serving the destroyed one.
#[test]
fn plan_cache_survives_destroy_and_recreate() {
    let engine = seeded_engine();
    let mut a = engine.session();
    a.execute("range of q is t").unwrap();
    let hot = "retrieve (q.x) where q.id = 7";
    for _ in 0..3 {
        assert_eq!(a.execute(hot).unwrap().affected, 1);
    }
    // Another session swaps the relation out from under the cache.
    let mut b = engine.session();
    b.execute("destroy t").unwrap();
    b.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    b.execute("append to t (id = 7, x = 1)").unwrap();
    b.execute("append to t (id = 7, x = 2)").unwrap();
    // Session A's range table still maps q -> t; the same text must
    // now see the new relation's two versions.
    let out = a.execute(hot).unwrap();
    assert_eq!(
        out.affected, 2,
        "cached plan served stale data after destroy/recreate"
    );
    // And a destroy without recreate is a clean error, not a stale hit.
    b.execute("destroy t").unwrap();
    assert!(a.execute(hot).is_err());
}

/// The issue's acceptance bound: on the paper workload, `explain`'s
/// estimated input pages stay within 2× of the measured I/O for the
/// single-variable benchmark queries, before and after update rounds.
#[test]
fn explain_estimates_within_2x_on_paper_workload() {
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut db = build_database(&cfg);
    let single_var = [
        "Q01", "Q02", "Q03", "Q04", "Q05", "Q06", "Q07", "Q08", "Q12",
    ];
    for round in 0..=2 {
        if round > 0 {
            evolve_uniform(&mut db, &cfg);
        }
        for id in single_var {
            let q =
                tdbms_bench::query_for(id, cfg.class).expect("applicable");
            let (est_in, _) = db
                .estimate_retrieve(&q.tquel)
                .unwrap_or_else(|e| panic!("{id} estimate: {e}"));
            let out = db
                .execute(&q.tquel)
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            let meas = out.stats.input_pages.max(1);
            let est = est_in.max(1);
            assert!(
                est <= 2 * meas && meas <= 2 * est,
                "{id} at uc {round}: estimated {est} vs measured \
                 {meas} input pages is outside 2x"
            );
        }
    }
    // The explain statement itself reports both numbers.
    let q01 = tdbms_bench::query_for("Q01", cfg.class).unwrap();
    let out = db.execute(&format!("explain {}", q01.tquel)).unwrap();
    let text: Vec<String> = out
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            other => panic!("explain row is not text: {other:?}"),
        })
        .collect();
    assert!(
        text.iter().any(|l| l.starts_with("estimated:")),
        "explain output: {text:?}"
    );
    assert!(
        text.iter().any(|l| l.starts_with("actual:")),
        "explain output: {text:?}"
    );
}
