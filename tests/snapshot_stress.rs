//! Lock-free snapshot-read stress suite.
//!
//! The engine serves every eligible temporal retrieve from a published
//! [`ReadView`] — a committed-watermark snapshot — without touching the
//! commit lock. This suite hammers that path with readers racing
//! writers and proves the three properties that make it correct:
//!
//! * **Zero lock acquisitions for reads**: the engine's own lock
//!   counters show no shared acquisitions at all; the only exclusive
//!   ones are the writers' commits.
//! * **Prefix-consistent snapshots**: each writer appends `k = 1, 2,
//!   3, …` as separate commits, so any snapshot must see a *prefix* of
//!   each writer's sequence — a gap would mean a read observed commit
//!   `k+1`'s effects without commit `k`'s (a torn watermark).
//! * **Monotone visibility**: a session's successive reads never see a
//!   writer's prefix shrink — watermarks only advance.
//!
//! Runs the same schedule twice: volatile, and durable with group
//! commit on (where the watermark must track *published* commits even
//! though their fsyncs are batched).

use std::collections::BTreeMap;
use std::time::Duration;
use tdbms::wal::SharedMemLog;
use tdbms::{CheckpointPolicy, Database, Engine, GroupCommitConfig};
use tdbms_kernel::Value;
use tdbms_storage::SharedMemDisk;

const WRITERS: i64 = 2;
const APPENDS: i64 = 48;
const READERS: usize = 4;
const READS: usize = 120;

/// One retrieve through the snapshot path; returns each writer's
/// observed set of `k`s as a sorted map `writer -> ks`.
fn observe(session: &mut tdbms::Session) -> BTreeMap<i64, Vec<i64>> {
    let out = session
        .execute("retrieve (q.writer, q.k)")
        .expect("snapshot retrieve");
    let mut seen: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    for row in out.rows() {
        let (w, k) = match (&row[0], &row[1]) {
            (Value::Int(w), Value::Int(k)) => (*w, *k),
            other => panic!("row decoded as {other:?}"),
        };
        seen.entry(w).or_default().push(k);
    }
    for ks in seen.values_mut() {
        ks.sort_unstable();
    }
    seen
}

/// `ks` must be exactly `1..=n` for some `n` — a prefix of the writer's
/// append order.
fn assert_prefix(ks: &[i64], ctx: &str) {
    for (i, k) in ks.iter().enumerate() {
        assert_eq!(
            *k,
            i as i64 + 1,
            "{ctx}: observed ks {ks:?} are not a prefix — the snapshot \
             saw a later commit without an earlier one"
        );
    }
}

fn run_stress(engine: &Engine) {
    std::thread::scope(|scope| {
        for w in 1..=WRITERS {
            let engine = engine.clone();
            scope.spawn(move || {
                let mut s = engine.session();
                s.execute("range of z is t").expect("range");
                for k in 1..=APPENDS {
                    s.execute(&format!(
                        "append to t (writer = {w}, k = {k})"
                    ))
                    .expect("append");
                }
            });
        }
        for r in 0..READERS {
            let engine = engine.clone();
            scope.spawn(move || {
                let mut s = engine.session();
                s.execute("range of q is t").expect("range");
                let mut floor: BTreeMap<i64, usize> = BTreeMap::new();
                for i in 0..READS {
                    let seen = observe(&mut s);
                    for (w, ks) in &seen {
                        let ctx = format!("reader {r} iteration {i}");
                        assert_prefix(ks, &ctx);
                        let f = floor.entry(*w).or_insert(0);
                        assert!(
                            ks.len() >= *f,
                            "{ctx}: writer {w}'s prefix shrank from \
                             {f} to {} — visibility went backwards",
                            ks.len()
                        );
                        *f = ks.len();
                    }
                }
            });
        }
    });

    // Quiescent: the last published watermark covers every commit.
    let mut s = engine.session();
    s.execute("range of q is t").expect("range");
    let seen = observe(&mut s);
    for w in 1..=WRITERS {
        assert_eq!(
            seen.get(&w).map(Vec::len),
            Some(APPENDS as usize),
            "writer {w}'s commits incomplete after join"
        );
    }
}

/// The proof counters: every retrieve above went through the snapshot
/// path (no shared locks), and only writer commits went exclusive.
fn assert_lock_proof(engine: &Engine, writes: u64) {
    let locks = engine.lock_stats();
    assert_eq!(
        locks.shared, 0,
        "a read fell back to the shared commit lock"
    );
    assert_eq!(
        locks.exclusive, writes,
        "exclusive acquisitions beyond the writers' commits"
    );
    let reads = (READERS * READS + 1) as u64;
    assert!(
        locks.snapshot_reads >= reads,
        "snapshot counter {} below the {reads} reads issued",
        locks.snapshot_reads
    );
    engine.with_read(|db| {
        assert!(
            db.io_stats().is_consistent(),
            "I/O ledger out of balance at quiescence"
        );
    });
}

#[test]
fn volatile_snapshot_reads_stay_prefix_consistent_and_lock_free() {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (writer = i4, k = i4)")
        .expect("create");
    db.set_cold_statements(false);
    let engine = Engine::new(db);
    run_stress(&engine);
    assert_lock_proof(&engine, (WRITERS * APPENDS) as u64);
}

#[test]
fn durable_group_commit_snapshot_reads_stay_prefix_consistent() {
    let mut db = Database::open_durable_on(
        Box::new(SharedMemDisk::new()),
        Box::new(SharedMemLog::new()),
        None,
    )
    .expect("durable open");
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(16));
    db.execute("create temporal interval t (writer = i4, k = i4)")
        .expect("create");
    db.set_cold_statements(false);
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
    })
    .expect("durable database");
    let engine = Engine::new(db);
    run_stress(&engine);
    assert_lock_proof(&engine, (WRITERS * APPENDS) as u64);
}
