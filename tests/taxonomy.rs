//! The Figure 1 taxonomy, demonstrated: the same update stream applied to
//! all four database classes, probing exactly the capabilities that
//! distinguish them (historical queries × rollback).
//!
//! The scenario follows the paper's running example style: a fact is
//! recorded, then *retroactively corrected* — the correction is the case
//! that separates all four classes at once.

use tdbms::{Database, DatabaseClass, Granularity, TimeVal, Value};

/// Apply the shared scenario to a database of the given class. Returns
/// the instant "between" the initial recording and the correction.
fn play(db: &mut Database, class: DatabaseClass) -> TimeVal {
    db.execute(&format!(
        "create {class} interval fact (id = i4, claim = c24)"
    ))
    .unwrap();
    db.execute("range of f is fact").unwrap();
    // Recorded belief: the launch is scheduled for June 1980.
    if class.has_valid_time() {
        db.execute(
            r#"append to fact (id = 1, claim = "june launch")
               valid from "1/1/80" to "forever""#,
        )
        .unwrap();
    } else {
        db.execute(r#"append to fact (id = 1, claim = "june launch")"#)
            .unwrap();
    }
    let between = TimeVal::from_secs(db.clock().now().as_secs() + 30);
    // Correction: it was actually always going to be September (a
    // retroactive change where valid time allows one).
    if class.has_valid_time() {
        db.execute(
            r#"replace f (claim = "september launch")
               valid from "1/1/80" to "forever"
               where f.id = 1"#,
        )
        .unwrap();
    } else {
        db.execute(
            r#"replace f (claim = "september launch") where f.id = 1"#,
        )
        .unwrap();
    }
    between
}

fn current_claim(db: &mut Database, class: DatabaseClass) -> String {
    let q = if class.has_valid_time() {
        r#"retrieve (f.claim) when f overlap "now""#
    } else {
        "retrieve (f.claim)"
    };
    let out = db.execute(q).unwrap();
    assert_eq!(out.rows().len(), 1, "{class}: one current claim");
    out.rows()[0][0].to_string()
}

#[test]
fn all_four_classes_agree_on_the_present() {
    for class in DatabaseClass::ALL {
        let mut db = Database::in_memory();
        play(&mut db, class);
        assert_eq!(
            current_claim(&mut db, class),
            "september launch",
            "{class}"
        );
    }
}

#[test]
fn static_queries_about_the_past_need_valid_time() {
    // Historical & temporal answer "what was (believed) true for March
    // 1980?" with the *corrected* fact; static and rollback cannot ask.
    for class in [DatabaseClass::Historical, DatabaseClass::Temporal] {
        let mut db = Database::in_memory();
        play(&mut db, class);
        let out = db
            .execute(r#"retrieve (f.claim) when f overlap "3/15/80""#)
            .unwrap();
        assert_eq!(out.rows().len(), 1, "{class}");
        assert_eq!(
            out.rows()[0][0],
            Value::Str("september launch".into()),
            "{class}: the correction rewrote history"
        );
    }
    for class in [DatabaseClass::Static, DatabaseClass::Rollback] {
        let mut db = Database::in_memory();
        play(&mut db, class);
        assert!(
            db.execute(r#"retrieve (f.claim) when f overlap "3/15/80""#)
                .is_err(),
            "{class}: when clause must be inapplicable"
        );
    }
}

#[test]
fn rollback_needs_transaction_time() {
    // Rollback & temporal reproduce what the database said before the
    // correction; static and historical cannot.
    for class in [DatabaseClass::Rollback, DatabaseClass::Temporal] {
        let mut db = Database::in_memory();
        let between = play(&mut db, class);
        let t = between.format(Granularity::Second);
        let q = if class.has_valid_time() {
            format!(
                r#"retrieve (f.claim) when f overlap "{t}" as of "{t}""#
            )
        } else {
            format!(r#"retrieve (f.claim) as of "{t}""#)
        };
        let out = db.execute(&q).unwrap();
        assert_eq!(out.rows().len(), 1, "{class}");
        assert_eq!(
            out.rows()[0][0],
            Value::Str("june launch".into()),
            "{class}: the rolled-back state still shows the error"
        );
    }
    for class in [DatabaseClass::Static, DatabaseClass::Historical] {
        let mut db = Database::in_memory();
        let between = play(&mut db, class);
        let t = between.format(Granularity::Second);
        assert!(
            db.execute(&format!(r#"retrieve (f.claim) as of "{t}""#))
                .is_err(),
            "{class}: as of must be inapplicable"
        );
    }
}

#[test]
fn only_temporal_distinguishes_belief_from_truth() {
    // The temporal database answers the combined question: "according to
    // what we knew before the correction, what held in March 1980?" —
    // tuples "valid at some moment seen as of some other moment".
    let mut db = Database::in_memory();
    let between = play(&mut db, DatabaseClass::Temporal);
    let t = between.format(Granularity::Second);

    // Belief then, about then: the june plan.
    let out = db
        .execute(&format!(
            r#"retrieve (f.claim) when f overlap "3/15/80" as of "{t}""#
        ))
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Str("june launch".into()));

    // Belief now, about then: the corrected september plan.
    let out = db
        .execute(r#"retrieve (f.claim) when f overlap "3/15/80""#)
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Str("september launch".into()));
}

#[test]
fn storage_growth_reflects_what_each_class_remembers() {
    let mut sizes = Vec::new();
    for class in DatabaseClass::ALL {
        let mut db = Database::in_memory();
        play(&mut db, class);
        sizes.push((class, db.relation_meta("fact").unwrap().tuple_count));
    }
    // static: 1 (overwritten); rollback/historical: 2 (old + new);
    // temporal: 3 (old + closed copy + new).
    assert_eq!(
        sizes,
        vec![
            (DatabaseClass::Static, 1),
            (DatabaseClass::Rollback, 2),
            (DatabaseClass::Historical, 2),
            (DatabaseClass::Temporal, 3),
        ]
    );
}
