//! Crash recovery under fault injection.
//!
//! The oracle for every test: kill the process (via [`FaultPlan`]) at an
//! arbitrary mutating-op boundary during statement `k`, reopen, and the
//! recovered database must observe exactly the state after statement
//! `k-1` or after statement `k` — nothing in between, nothing lost,
//! nothing uncommitted. Recovery must also be idempotent: reopening a
//! recovered database changes nothing.
//!
//! Two harnesses share the oracle:
//!
//! * a property test over random statement schedules, random crash
//!   points, and random torn-write lengths, on shared in-memory storage
//!   (the next "process" reopens the raw survivors);
//! * a deterministic crash matrix over a scripted workload for each
//!   access method (heap, hash, ISAM) on real files, driven by
//!   `scripts/ci.sh`.

use tdbms::wal::{FaultLog, FileLog, LogStore, SharedMemLog};
use tdbms::{Database, TimeVal};
use tdbms_kernel::{RowCodec, TemporalAttr};
use tdbms_prop::{check, Gen};
use tdbms_storage::{
    DiskManager, FaultDisk, FaultPlan, FileDisk, SharedMemDisk,
};

/// The observable state of the test relation `r`: the sorted `(id, seq)`
/// pairs of its *current* versions, or `None` when `r` does not exist.
/// Snapshots read raw pages through `internals()` — no statements, no
/// clock ticks — so taking one never perturbs the schedule under test.
type State = Option<Vec<(i32, i32)>>;

fn snapshot(db: &mut Database) -> State {
    if !db.relation_names().iter().any(|n| n == "r") {
        return None;
    }
    let schema = db.schema_of("r").unwrap();
    let codec = RowCodec::new(&schema);
    let implicit: Vec<TemporalAttr> = schema.implicit_attrs().to_vec();
    let (pager, catalog, _) = db.internals();
    let id = catalog.require("r").unwrap();
    let file = catalog.get(id).file.clone();
    let mut rows = Vec::new();
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, &file).unwrap() {
        let current = implicit.iter().enumerate().all(|(k, t)| {
            !matches!(
                t,
                TemporalAttr::ValidTo | TemporalAttr::TransactionStop
            ) || codec.get_time(&row, 2 + k) == TimeVal::FOREVER
        });
        if current {
            rows.push((codec.get_i4(&row, 0), codec.get_i4(&row, 1)));
        }
    }
    rows.sort_unstable();
    Some(rows)
}

const CREATE: &str = "create temporal interval r (id = i4, seq = i4)";
const RANGE: &str = "range of z is r";

/// A random schedule of mutating statements over `r`. `destroy` is
/// always followed by a re-create so later statements stay well-formed
/// (each remains its own transaction — a crash between them is still a
/// reachable state).
fn gen_schedule(g: &mut Gen, ops: usize) -> Vec<String> {
    let mut stmts = vec![CREATE.to_string(), RANGE.to_string()];
    for _ in 0..ops {
        match g.range(0..10u32) {
            0..=4 => stmts.push(format!(
                "append to r (id = {}, seq = 0)",
                g.range(1..20i64)
            )),
            5 => stmts.push(format!(
                "delete z where z.id = {}",
                g.range(1..20i64)
            )),
            6 => stmts.push(format!(
                "replace z (seq = z.seq + 1) where z.id = {}",
                g.range(1..20i64)
            )),
            7 => stmts.push(format!(
                "modify r to hash on id where fillfactor = {}",
                *g.pick(&[50u32, 100])
            )),
            8 => stmts.push(format!(
                "modify r to isam on id where fillfactor = {}",
                *g.pick(&[50u32, 100])
            )),
            _ => {
                stmts.push("destroy r".to_string());
                stmts.push(CREATE.to_string());
                stmts.push(RANGE.to_string());
            }
        }
    }
    stmts
}

/// Run `stmts` on a fresh durable database over the given survivors,
/// fault-wrapped under `plan`. Returns per-statement `(ops, state)`
/// boundaries from a dry run (`plan` budget `None`), or executes until
/// the injected crash otherwise.
fn run_mem(
    disk: &SharedMemDisk,
    log: &SharedMemLog,
    plan: &FaultPlan,
    torn_disk: Option<usize>,
    torn_log: Option<usize>,
    flip_log: Option<u64>,
    stmts: &[String],
) -> Option<(Vec<u64>, Vec<State>)> {
    let fdisk: Box<dyn DiskManager> = match torn_disk {
        Some(k) => Box::new(FaultDisk::with_torn_writes(
            Box::new(disk.clone()),
            plan.clone(),
            k,
        )),
        None => {
            Box::new(FaultDisk::new(Box::new(disk.clone()), plan.clone()))
        }
    };
    let flog: Box<dyn LogStore> = match (torn_log, flip_log) {
        (Some(k), _) => Box::new(FaultLog::with_torn_appends(
            Box::new(log.clone()),
            plan.clone(),
            k,
        )),
        (None, Some(bit)) => Box::new(FaultLog::with_bit_flips(
            Box::new(log.clone()),
            plan.clone(),
            bit,
        )),
        (None, None) => {
            Box::new(FaultLog::new(Box::new(log.clone()), plan.clone()))
        }
    };
    let Ok(mut db) = Database::open_durable_on(fdisk, flog, None) else {
        return None;
    };
    let mut boundaries = vec![plan.ops_charged()];
    let mut states = vec![snapshot(&mut db)];
    for s in stmts {
        if db.execute(s).is_err() {
            return None;
        }
        boundaries.push(plan.ops_charged());
        states.push(snapshot(&mut db));
    }
    Some((boundaries, states))
}

fn reopen_mem(disk: &SharedMemDisk, log: &SharedMemLog) -> Database {
    Database::open_durable_on(
        Box::new(disk.clone()),
        Box::new(log.clone()),
        None,
    )
    .expect("recovery must succeed on raw survivors")
}

#[test]
fn recovery_is_atomic_at_every_random_crash_point() {
    check("wal_recovery_atomicity", 24, |g| {
        let ops = g.range(3..9usize);
        let stmts = gen_schedule(g, ops);

        // Dry run: per-statement op boundaries and observable states.
        let (boundaries, states) = run_mem(
            &SharedMemDisk::new(),
            &SharedMemLog::new(),
            &FaultPlan::new(None),
            None,
            None,
            None,
            &stmts,
        )
        .expect("dry run never crashes");
        let (first, last) = (boundaries[0], *boundaries.last().unwrap());
        assert!(last > first, "a schedule always commits something");

        // Crash run: kill at a random mutating op after open, with
        // random torn-write behaviour on both channels.
        let crash_at = g.range(first + 1..=last);
        let torn_disk = g.bool().then(|| g.range(0..1024usize));
        let torn_log = g.bool().then(|| g.range(0..48usize));
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let plan = FaultPlan::new(Some(crash_at));
        let finished =
            run_mem(&disk, &log, &plan, torn_disk, torn_log, None, &stmts);
        assert!(finished.is_none(), "the crash run must not finish");
        assert!(plan.crashed());

        // The crash interrupted statement k: recovery must land on the
        // state just before or just after it.
        let k = boundaries.iter().position(|&b| b >= crash_at).unwrap();
        let mut rdb = reopen_mem(&disk, &log);
        let got = snapshot(&mut rdb);
        assert!(
            got == states[k - 1] || got == states[k],
            "crash at op {crash_at} (statement {k}: {:?}): recovered \
             {got:?}, expected {:?} or {:?}",
            stmts.get(k - 1),
            states[k - 1],
            states[k],
        );
        drop(rdb);

        // Recovering twice equals recovering once.
        let mut rdb2 = reopen_mem(&disk, &log);
        assert_eq!(snapshot(&mut rdb2), got, "recovery must be idempotent");
    });
}

/// Bit rot on the log tail: the append at the crash point lands on disk
/// in full but with one bit flipped. The record checksum must catch it,
/// recovery must truncate at the last *valid* record, and the recovered
/// state must still be a statement boundary — a flipped tail is just
/// another shape of "statement k never committed". Recovery must never
/// replay a corrupted record or fail outright.
#[test]
fn recovery_truncates_a_bit_flipped_log_tail() {
    check("wal_recovery_bit_flip", 24, |g| {
        let ops = g.range(3..9usize);
        let stmts = gen_schedule(g, ops);
        let (boundaries, states) = run_mem(
            &SharedMemDisk::new(),
            &SharedMemLog::new(),
            &FaultPlan::new(None),
            None,
            None,
            None,
            &stmts,
        )
        .expect("dry run never crashes");
        let (first, last) = (boundaries[0], *boundaries.last().unwrap());

        let crash_at = g.range(first + 1..=last);
        let flip_bit = g.range(0..4096u64);
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let plan = FaultPlan::new(Some(crash_at));
        let finished =
            run_mem(&disk, &log, &plan, None, None, Some(flip_bit), &stmts);
        assert!(finished.is_none(), "the crash run must not finish");
        assert!(plan.crashed());

        let k = boundaries.iter().position(|&b| b >= crash_at).unwrap();
        let mut rdb = reopen_mem(&disk, &log);
        let got = snapshot(&mut rdb);
        assert!(
            got == states[k - 1] || got == states[k],
            "flip of bit {flip_bit} at op {crash_at} (statement {k}: \
             {:?}): recovered {got:?}, expected {:?} or {:?}",
            stmts.get(k - 1),
            states[k - 1],
            states[k],
        );
        drop(rdb);
        let mut rdb2 = reopen_mem(&disk, &log);
        assert_eq!(snapshot(&mut rdb2), got, "recovery must be idempotent");
    });
}

/// The scripted workload of the deterministic crash matrix: build,
/// reorganize to `method`, then update / delete / grow.
fn script_for(method: &str) -> Vec<String> {
    let mut v = vec![CREATE.to_string(), RANGE.to_string()];
    for id in 1..=6 {
        v.push(format!("append to r (id = {id}, seq = 0)"));
    }
    v.push(match method {
        "heap" => "modify r to heap".to_string(),
        m => format!("modify r to {m} on id where fillfactor = 100"),
    });
    v.push("replace z (seq = z.seq + 1) where z.id = 3".to_string());
    v.push("delete z where z.id = 5".to_string());
    v.push("append to r (id = 9, seq = 9)".to_string());
    v
}

fn run_file(
    dir: &std::path::Path,
    plan: &FaultPlan,
    stmts: &[String],
) -> Option<(Vec<u64>, Vec<State>)> {
    let fdisk = FaultDisk::with_torn_writes(
        Box::new(FileDisk::open(dir).unwrap()),
        plan.clone(),
        512,
    );
    let flog = FaultLog::with_torn_appends(
        Box::new(FileLog::open(dir.join("wal.tdbms")).unwrap()),
        plan.clone(),
        16,
    );
    let Ok(mut db) = Database::open_durable_on(
        Box::new(fdisk),
        Box::new(flog),
        Some(dir.to_path_buf()),
    ) else {
        return None;
    };
    let mut boundaries = vec![plan.ops_charged()];
    let mut states = vec![snapshot(&mut db)];
    for s in stmts {
        if db.execute(s).is_err() {
            return None;
        }
        boundaries.push(plan.ops_charged());
        states.push(snapshot(&mut db));
    }
    Some((boundaries, states))
}

/// File-backed crash matrix: for each access method, kill the process at
/// a spread of mutating-op crash points over real page files and a real
/// log file, and verify zero committed-tuple loss on reopen.
#[test]
fn crash_matrix_over_real_files() {
    let root = tdbms_kernel::tmpdir::fresh_dir("crash-matrix");
    for method in ["heap", "hash", "isam"] {
        let stmts = script_for(method);
        let dry = root.join(format!("{method}-dry"));
        std::fs::create_dir_all(&dry).unwrap();
        let (boundaries, states) =
            run_file(&dry, &FaultPlan::new(None), &stmts)
                .expect("dry run never crashes");
        let (first, last) = (boundaries[0], *boundaries.last().unwrap());

        // Every op boundary would be O(hundreds) of file-backed runs;
        // a stride of 7 still lands inside every statement's commit
        // window while keeping the matrix fast.
        let mut points: Vec<u64> = (first + 1..=last).step_by(7).collect();
        points.push(last);
        for crash_at in points {
            let dir = root.join(format!("{method}-{crash_at}"));
            std::fs::create_dir_all(&dir).unwrap();
            let plan = FaultPlan::new(Some(crash_at));
            let finished = run_file(&dir, &plan, &stmts);
            assert!(finished.is_none() && plan.crashed());

            let k = boundaries.iter().position(|&b| b >= crash_at).unwrap();
            let mut rdb = Database::open_durable(&dir).unwrap();
            let got = snapshot(&mut rdb);
            assert!(
                got == states[k - 1] || got == states[k],
                "{method}: crash at op {crash_at} (statement {k}): \
                 recovered {got:?}, expected {:?} or {:?}",
                states[k - 1],
                states[k],
            );
            drop(rdb);
            let mut rdb2 = Database::open_durable(&dir).unwrap();
            assert_eq!(snapshot(&mut rdb2), got);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Disk-full matrix: instead of killing the process, open a seeded
/// ENOSPC window at a spread of op ordinals and keep the process
/// alive. The engine must degrade (typed [`tdbms::Error::Degraded`]
/// on the failing statement, reads still serving), re-arm itself once
/// the window passes, and accept writes again. A clean reopen of the
/// raw survivors must then show exactly the acknowledged statements'
/// effects — zero acked-tuple loss, nothing of the rolled-back ones —
/// and recovering twice must equal recovering once.
#[test]
fn disk_full_matrix_preserves_every_acked_statement() {
    use tdbms_kernel::Error;

    let stmts = script_for("hash");
    let (boundaries, _) = run_mem(
        &SharedMemDisk::new(),
        &SharedMemLog::new(),
        &FaultPlan::new(None),
        None,
        None,
        None,
        &stmts,
    )
    .expect("dry run never crashes");
    let (first, last) = (boundaries[0], *boundaries.last().unwrap());

    // Windows lie fully inside the schedule's op range: a window
    // hanging off the end could cover only fsyncs (not space ops) and
    // interrupt nothing. Width 12 always spans page or log writes.
    let points: Vec<u64> =
        (first + 1..=last.saturating_sub(12)).step_by(5).collect();
    assert!(points.len() >= 10, "matrix must cover the schedule");
    for at in points {
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let plan = FaultPlan::new(None);
        plan.set_enospc_windows([(at, at + 12)]);
        let mut db = Database::open_durable_on(
            Box::new(FaultDisk::new(Box::new(disk.clone()), plan.clone())),
            Box::new(FaultLog::new(Box::new(log.clone()), plan.clone())),
            None,
        )
        .expect("the window opens after recovery finished");

        let mut acked = snapshot(&mut db);
        let mut failures = 0;
        for s in &stmts {
            match db.execute(s) {
                Ok(_) => acked = snapshot(&mut db),
                Err(Error::Degraded { .. }) => {
                    failures += 1;
                    // Degraded is read-only, not dead: raw reads (and
                    // retrieves) keep serving the last committed state.
                    assert_eq!(snapshot(&mut db), acked);
                }
                Err(Error::Semantic(_) | Error::NoSuchRelation(_)) => {
                    // A rolled-back `create`/`range` leaves later
                    // statements unbound — still a typed, non-fatal
                    // error.
                    failures += 1;
                }
                Err(e) => {
                    panic!("window at op {at}: untyped failure leaked: {e}")
                }
            }
        }
        assert!(
            failures > 0,
            "window at op {at} must interrupt at least one statement"
        );

        // The window is finite: re-arm attempts charge ops too, so a
        // few retries always walk the counter past the window and the
        // engine accepts writes again.
        let mut resumed = false;
        for _ in 0..30 {
            if !db.relation_names().iter().any(|n| n == "r") {
                let _ = db.execute(CREATE);
                continue;
            }
            if db.execute("append to r (id = 77, seq = 7)").is_ok() {
                resumed = true;
                break;
            }
        }
        assert!(resumed, "window at op {at}: writes never resumed");
        assert!(!db.is_degraded(), "re-armed engine reports healthy");
        acked = snapshot(&mut db);
        drop(db);

        let mut rdb = reopen_mem(&disk, &log);
        assert_eq!(
            snapshot(&mut rdb),
            acked,
            "window at op {at}: recovered state differs from acked"
        );
        drop(rdb);
        let mut rdb2 = reopen_mem(&disk, &log);
        assert_eq!(
            snapshot(&mut rdb2),
            acked,
            "recovery must be idempotent"
        );
    }
}

/// A clean close and reopen (no crash) must round-trip the whole
/// database — catalog, clock position, and every organization.
#[test]
fn clean_reopen_round_trips_catalog_and_data() {
    let dir = tdbms_kernel::tmpdir::fresh_dir("wal-clean-reopen");
    let expected = {
        let mut db = Database::open_durable(&dir).unwrap();
        for s in script_for("isam") {
            db.execute(&s).unwrap();
        }
        snapshot(&mut db)
    };
    let mut db = Database::open_durable(&dir).unwrap();
    assert_eq!(snapshot(&mut db), expected);
    let meta = db.relation_meta("r").unwrap();
    assert_eq!(meta.method, tdbms::AccessMethod::Isam);
    // 6 appends + replace (2 new versions) + delete (1 correction
    // version) + 1 append = 10 stored versions.
    assert_eq!(meta.tuple_count, 10);
    std::fs::remove_dir_all(&dir).unwrap();
}
