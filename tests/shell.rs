//! End-to-end tests of the `tdbms` terminal monitor binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell_status(
    args: &[&str],
    input: &str,
) -> (String, String, std::process::ExitStatus) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tdbms"))
        .args(args)
        .env("TDBMS_BATCH", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tdbms");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status,
    )
}

fn run_shell(args: &[&str], input: &str) -> (String, String) {
    let (stdout, stderr, _) = run_shell_status(args, input);
    (stdout, stderr)
}

#[test]
fn shell_runs_a_session() {
    let (stdout, _) = run_shell(
        &[],
        r#"create temporal interval emp (name = c12, salary = i4);
append to emp (name = "di", salary = 100);
range of e is emp;
replace e (salary = 150) where e.name = "di";
retrieve (e.name, e.salary) when e overlap "now";
\d emp
\l
"#,
    );
    assert!(stdout.contains("di"), "stdout: {stdout}");
    assert!(stdout.contains("150"));
    assert!(stdout.contains("temporal interval relation"));
    assert!(stdout.contains("3 stored versions"));
    // \l lists the relation.
    assert!(stdout.lines().any(|l| l.trim() == "emp"));
}

#[test]
fn shell_reports_errors_without_dying() {
    let (stdout, _) =
        run_shell(&[], "retrieve (x.y);\ncreate static t (a = i4);\n\\l\n");
    assert!(stdout.contains("error:"), "stdout: {stdout}");
    // The session continued after the error.
    assert!(stdout.lines().any(|l| l.trim() == "t"));
}

#[test]
fn shell_multiline_statements_and_backslash_g() {
    let (stdout, _) = run_shell(
        &[],
        "create static t (a = i4);\nappend to t\n  (a = 7)\\g\nrange of v is t;\nretrieve (v.a);\n",
    );
    assert!(stdout.contains('7'), "stdout: {stdout}");
}

#[test]
fn shell_persists_to_a_directory() {
    let dir = tdbms_kernel::tmpdir::fresh_dir("shell-test");
    let dir_s = dir.to_str().unwrap();

    let (_, stderr) = run_shell(
        &[dir_s],
        "create rollback r (x = i4);\nappend to r (x = 42);\n",
    );
    assert!(stderr.contains("file-backed"), "stderr: {stderr}");

    let (stdout, _) =
        run_shell(&[dir_s], "range of v is r;\nretrieve (v.x);\n");
    assert!(stdout.contains("42"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shell_exits_zero_on_a_clean_script() {
    let (_, _, status) = run_shell_status(
        &[],
        "create static t (a = i4);\nappend to t (a = 1);\n",
    );
    assert!(status.success(), "clean script must exit 0: {status}");
}

#[test]
fn shell_exits_nonzero_when_a_scripted_statement_fails() {
    // The failing statement is reported, the session continues, and
    // the final exit status is nonzero so `set -e` scripts notice.
    let (stdout, _, status) = run_shell_status(
        &[],
        "retrieve (ghost.x);\ncreate static t (a = i4);\n",
    );
    assert!(stdout.contains("error:"), "stdout: {stdout}");
    assert_eq!(
        status.code(),
        Some(1),
        "a failed statement must produce exit code 1: {status}"
    );
}

#[test]
fn shell_backslash_q_propagates_earlier_errors() {
    let (_, _, status) =
        run_shell_status(&[], "retrieve (ghost.x);\n\\q\n");
    assert_eq!(status.code(), Some(1), "status: {status}");
}

#[test]
fn shell_handles_eof_mid_statement_without_hanging() {
    // No terminating `;` — stdin just ends. The buffered statement
    // must still run and the process must exit promptly (the harness
    // would time out on a hang).
    let (stdout, _, status) = run_shell_status(
        &[],
        "create static t (a = i4);\nappend to t (a = 9);\n\
         range of v is t;\nretrieve (v.a)",
    );
    assert!(stdout.contains('9'), "stdout: {stdout}");
    assert!(status.success(), "status: {status}");

    // EOF mid-statement with a syntax hole: still terminates, exit 1.
    let (stdout, _, status) =
        run_shell_status(&[], "create static broken (");
    assert!(stdout.contains("error:"), "stdout: {stdout}");
    assert_eq!(status.code(), Some(1), "status: {status}");
}

#[test]
fn shell_stats_prints_relation_statistics() {
    let (stdout, _, status) = run_shell_status(
        &[],
        "create temporal interval emp (name = c12, salary = i4);\n\
         append to emp (name = \"a\", salary = 1);\n\
         append to emp (name = \"b\", salary = 2);\n\
         \\stats emp\n\\stats\n",
    );
    assert!(status.success(), "status: {status}\nstdout: {stdout}");
    assert!(stdout.contains("2 stored versions"), "stdout: {stdout}");
    assert!(stdout.contains("distinct key(s)"), "stdout: {stdout}");
    assert!(stdout.contains("average chain length"), "stdout: {stdout}");
    // Bare \stats still reports the counters, plus the plan cache.
    assert!(stdout.contains("page reads"), "stdout: {stdout}");
    assert!(stdout.contains("plan cache:"), "stdout: {stdout}");
}

#[test]
fn shell_stats_on_unknown_relation_exits_nonzero() {
    let (stdout, _, status) = run_shell_status(&[], "\\stats ghost\n");
    assert!(stdout.contains("error:"), "stdout: {stdout}");
    assert_eq!(status.code(), Some(1), "status: {status}");
}

#[test]
fn shell_explain_prints_a_plan() {
    let (stdout, _, status) = run_shell_status(
        &[],
        "create temporal interval emp (name = c12, salary = i4);\n\
         append to emp (name = \"a\", salary = 1);\n\
         range of e is emp;\n\
         explain retrieve (e.salary) where e.salary > 0;\n",
    );
    assert!(status.success(), "status: {status}\nstdout: {stdout}");
    assert!(stdout.contains("query plan"), "stdout: {stdout}");
    assert!(stdout.contains("estimated:"), "stdout: {stdout}");
    assert!(stdout.contains("actual:"), "stdout: {stdout}");
}

#[test]
fn shell_include_recursion_is_capped() {
    // A file that includes itself must terminate with an error
    // instead of recursing until the stack dies.
    let dir = tdbms_kernel::tmpdir::fresh_dir("shell-i-loop");
    let script = dir.join("loop.tq");
    std::fs::write(&script, format!("\\i {}\n", script.display())).unwrap();
    let (stdout, _, status) =
        run_shell_status(&[], &format!("\\i {}\n", script.display()));
    assert!(stdout.contains("nesting exceeds"), "stdout: {stdout}");
    assert_eq!(status.code(), Some(1), "status: {status}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shell_runs_files_via_backslash_i() {
    let dir = tdbms_kernel::tmpdir::fresh_dir("shell-i");
    let script = dir.join("setup.tq");
    std::fs::write(
        &script,
        "create static s (x = i4);\nappend to s (x = 1);\nappend to s (x = 2);\n",
    )
    .unwrap();
    let (stdout, _) = run_shell(
        &[],
        &format!(
            "\\i {}\nrange of v is s;\nretrieve (total = sum(v.x));\n",
            script.display()
        ),
    );
    assert!(stdout.contains('3'), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}
