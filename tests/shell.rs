//! End-to-end tests of the `tdbms` terminal monitor binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(args: &[&str], input: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tdbms"))
        .args(args)
        .env("TDBMS_BATCH", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tdbms");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write input");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn shell_runs_a_session() {
    let (stdout, _) = run_shell(
        &[],
        r#"create temporal interval emp (name = c12, salary = i4);
append to emp (name = "di", salary = 100);
range of e is emp;
replace e (salary = 150) where e.name = "di";
retrieve (e.name, e.salary) when e overlap "now";
\d emp
\l
"#,
    );
    assert!(stdout.contains("di"), "stdout: {stdout}");
    assert!(stdout.contains("150"));
    assert!(stdout.contains("temporal interval relation"));
    assert!(stdout.contains("3 stored versions"));
    // \l lists the relation.
    assert!(stdout.lines().any(|l| l.trim() == "emp"));
}

#[test]
fn shell_reports_errors_without_dying() {
    let (stdout, _) =
        run_shell(&[], "retrieve (x.y);\ncreate static t (a = i4);\n\\l\n");
    assert!(stdout.contains("error:"), "stdout: {stdout}");
    // The session continued after the error.
    assert!(stdout.lines().any(|l| l.trim() == "t"));
}

#[test]
fn shell_multiline_statements_and_backslash_g() {
    let (stdout, _) = run_shell(
        &[],
        "create static t (a = i4);\nappend to t\n  (a = 7)\\g\nrange of v is t;\nretrieve (v.a);\n",
    );
    assert!(stdout.contains('7'), "stdout: {stdout}");
}

#[test]
fn shell_persists_to_a_directory() {
    let dir = tdbms_kernel::tmpdir::fresh_dir("shell-test");
    let dir_s = dir.to_str().unwrap();

    let (_, stderr) = run_shell(
        &[dir_s],
        "create rollback r (x = i4);\nappend to r (x = 42);\n",
    );
    assert!(stderr.contains("file-backed"), "stderr: {stderr}");

    let (stdout, _) =
        run_shell(&[dir_s], "range of v is r;\nretrieve (v.x);\n");
    assert!(stdout.contains("42"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shell_runs_files_via_backslash_i() {
    let dir = tdbms_kernel::tmpdir::fresh_dir("shell-i");
    let script = dir.join("setup.tq");
    std::fs::write(
        &script,
        "create static s (x = i4);\nappend to s (x = 1);\nappend to s (x = 2);\n",
    )
    .unwrap();
    let (stdout, _) = run_shell(
        &[],
        &format!(
            "\\i {}\nrange of v is s;\nretrieve (total = sum(v.x));\n",
            script.display()
        ),
    );
    assert!(stdout.contains('3'), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}
