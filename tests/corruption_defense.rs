//! End-to-end corruption defense: the acceptance tests for the
//! checksummed-page / scrubber / salvage / transient-retry stack.
//!
//! Three layers under test, each with its own oracle:
//!
//! * **Corruption repair** (property test): run a random committed
//!   workload with checksums on, flip one random bit of one random byte
//!   in a random on-disk page file, and `check --repair` must either
//!   restore the page byte-for-byte from the write-ahead log or
//!   quarantine it with a precise loss report. A subsequent check is
//!   clean, and every committed row outside the damaged page survives.
//! * **Transient-I/O retry**: with k ≤ budget consecutive transient read
//!   failures the benchmark queries complete with the *correct* answer
//!   and the retries are visible in `IoStats`; with k > budget the
//!   statement surfaces an error — never a wrong answer.
//! * **Golden invariance**: checksumming is out-of-band (a sidecar, not
//!   in-page), so the paper's Figure 5 numbers and the stored rows are
//!   byte-identical with scrubbing on and off.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tdbms::wal::SharedMemLog;
use tdbms::{CheckpointPolicy, Database, Value};
use tdbms_bench::queries::queries_for;
use tdbms_bench::workload::{all_rows, populate_database, BenchConfig};
use tdbms_check::{CheckedDb, Severity};
use tdbms_kernel::DatabaseClass;
use tdbms_prop::{check, Gen};
use tdbms_storage::{FaultDisk, FaultPlan, MemDisk};

// ---------------------------------------------------------------------
// Corruption repair property test
// ---------------------------------------------------------------------

const CREATE: &str = "create temporal interval r (id = i4, seq = i4)";

/// A random mutating schedule over `r` (no destroy: the relation under
/// corruption must exist at crash time).
fn gen_ops(g: &mut Gen, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| match g.range(0..10u32) {
            0..=5 => {
                format!("append to r (id = {}, seq = 0)", g.range(1..16i64))
            }
            6 => format!("delete z where z.id = {}", g.range(1..16i64)),
            7 => format!(
                "replace z (seq = z.seq + 1) where z.id = {}",
                g.range(1..16i64)
            ),
            8 => format!(
                "modify r to hash on id where fillfactor = {}",
                *g.pick(&[50u32, 100])
            ),
            _ => format!(
                "modify r to isam on id where fillfactor = {}",
                *g.pick(&[50u32, 100])
            ),
        })
        .collect()
}

/// Every stored row of `r`, as raw encoded bytes, sorted: the precise
/// committed content, independent of clocks and organizations.
fn stored_rows(db: &mut Database) -> Vec<Vec<u8>> {
    let (pager, catalog, _) = db.internals();
    let id = catalog.require("r").unwrap();
    let file = catalog.get(id).file.clone();
    let mut rows = Vec::new();
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, &file).unwrap() {
        rows.push(row);
    }
    rows.sort();
    rows
}

/// Multiset containment: every row of `small` appears in `big` at least
/// as many times.
fn is_submultiset(small: &[Vec<u8>], big: &[Vec<u8>]) -> bool {
    let mut counts: BTreeMap<&[u8], i64> = BTreeMap::new();
    for r in big {
        *counts.entry(r).or_default() += 1;
    }
    for r in small {
        let c = counts.entry(r).or_default();
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

fn page_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with('f') && n.ends_with(".pages")
            })
        })
        .collect();
    v.sort();
    v
}

#[test]
fn flip_a_bit_anywhere_and_repair_restores_or_reports() {
    let root = tdbms_kernel::tmpdir::fresh_dir("corruption");
    check("corruption_repair", 12, |g| {
        let dir = root.join(format!("case-{}", g.seed()));
        std::fs::create_dir_all(&dir).unwrap();

        // A committed workload with checksums on, under a checkpoint
        // policy that leaves page images in the log (the salvage source).
        let mut db = Database::open_durable(&dir).unwrap();
        db.enable_checksums().unwrap();
        db.set_checkpoint_policy(match g.range(0..3u8) {
            0 => CheckpointPolicy::Manual,
            1 => CheckpointPolicy::EveryN(2),
            _ => CheckpointPolicy::EveryN(5),
        });
        db.execute(CREATE).unwrap();
        db.execute("range of z is r").unwrap();
        let n1 = g.range(3..8usize);
        for s in gen_ops(g, n1) {
            db.execute(&s).unwrap();
        }
        // Persist the sidecar (and everything else) mid-history …
        db.checkpoint_durable().unwrap();
        // … then more committed work that lives only in the log.
        let n2 = g.range(2..7usize);
        for s in gen_ops(g, n2) {
            db.execute(&s).unwrap();
        }
        let expected = stored_rows(&mut db);
        drop(db); // crash: no final checkpoint, the log keeps its tail

        // Flip one random bit of one random byte of one page file.
        let files = page_files(&dir);
        let target = g.pick(&files).clone();
        let len = std::fs::metadata(&target).unwrap().len() as usize;
        assert!(len > 0, "page files are never empty");
        let mut bytes = std::fs::read(&target).unwrap();
        let at = g.range(0..len);
        bytes[at] ^= 1u8 << g.range(0..8u32);
        std::fs::write(&target, &bytes).unwrap();

        // Repair must succeed, and a subsequent check must be clean.
        let report =
            CheckedDb::open(dir.clone()).unwrap().repair().unwrap();
        let recheck =
            CheckedDb::open(dir.clone()).unwrap().check().unwrap();
        assert!(
            recheck.is_clean(),
            "check after repair must be clean.\nrepair:\n{}\nrecheck:\n{}",
            report.render(),
            recheck.render()
        );

        // Committed rows outside any quarantined page survive; when
        // nothing was reported lost, the database is exactly restored.
        let lost =
            report.findings.iter().any(|f| f.severity == Severity::Lost);
        let mut rdb = Database::open_durable(&dir).unwrap();
        let survivors = stored_rows(&mut rdb);
        if lost {
            assert!(
                is_submultiset(&survivors, &expected),
                "quarantine may only remove rows, never invent or alter \
                 them.\nrepair:\n{}",
                report.render()
            );
        } else {
            assert_eq!(
                survivors,
                expected,
                "with no loss reported the content must be exactly \
                 restored.\nrepair:\n{}",
                report.render()
            );
        }
        drop(rdb);
        std::fs::remove_dir_all(&dir).unwrap();
    });
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Transient-I/O retry
// ---------------------------------------------------------------------

/// A durable in-memory database over a fault-injecting disk with the
/// given transient-read schedule.
fn faulted_db(schedule: impl IntoIterator<Item = u64>) -> Database {
    let mut fault =
        FaultDisk::new(Box::new(MemDisk::new()), FaultPlan::new(None));
    fault.set_transient_reads(schedule);
    Database::open_durable_on(
        Box::new(fault),
        Box::new(SharedMemLog::new()),
        None,
    )
    .expect("open over fault disk")
}

fn sorted_debug_rows(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> =
        rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// k ≤ budget: pairs of consecutive failing read ops are sprinkled over
/// the whole run (a fetch only ever *enters* a failure run at its first
/// ordinal, so each pair costs exactly two retries and then succeeds).
/// All twelve benchmark queries must return exactly the answers of an
/// unfaulted database, with the retries visible in `IoStats`.
#[test]
fn transient_failures_within_budget_answer_all_queries_correctly() {
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut baseline = Database::in_memory();
    populate_database(&mut baseline, &cfg);

    let pairs = (1u64..2_000_000).step_by(199).flat_map(|n| [n, n + 1]);
    let mut db = faulted_db(pairs);
    db.set_read_retries(2);
    populate_database(&mut db, &cfg);

    for q in queries_for(cfg.class) {
        let want = baseline
            .execute(&q.tquel)
            .unwrap_or_else(|e| panic!("{} on baseline: {e}", q.id));
        let got = db.execute(&q.tquel).unwrap_or_else(|e| {
            panic!("{} must survive in-budget transient faults: {e}", q.id)
        });
        assert_eq!(
            sorted_debug_rows(got.rows()),
            sorted_debug_rows(want.rows()),
            "{}: a retried read must never change an answer",
            q.id
        );
    }
    assert!(
        db.io_stats().total_retries() > 0,
        "the schedule must actually have fired, and retries must be \
         visible in IoStats"
    );
}

/// k > budget: an isolated run of three consecutive failing read ops
/// defeats a retry budget of two. The statement that hits it surfaces an
/// error; once the fault clears, the same query returns the correct
/// answer — at no point a wrong one.
#[test]
fn transient_failures_beyond_budget_surface_an_error_never_a_wrong_answer()
{
    let runs = (200u64..=5_000)
        .step_by(100)
        .flat_map(|n| [n, n + 1, n + 2]);
    let mut db = faulted_db(runs);
    db.set_read_retries(2);
    db.execute("create static interval r (id = i4, seq = i4)")
        .unwrap();
    db.execute("range of z is r").unwrap();
    for id in 1..=60 {
        db.execute(&format!("append to r (id = {id}, seq = {id})"))
            .unwrap();
    }
    let expected: Vec<(i64, i64)> = (1..=60).map(|i| (i, i)).collect();
    let rows_of = |out: &tdbms::ExecOutput| -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(a), Value::Int(b)) => (*a, *b),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        v.sort_unstable();
        v
    };

    let mut saw_error = false;
    for _ in 0..400 {
        db.internals().0.invalidate_buffers().unwrap();
        match db.execute("retrieve (z.id, z.seq)") {
            Ok(out) => assert_eq!(
                rows_of(&out),
                expected,
                "an answer returned under faults must be correct"
            ),
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(
        saw_error,
        "a three-failure run must exhaust the budget of two and surface"
    );
    assert!(db.io_stats().total_retries() >= 2, "budget visibly spent");

    // The media has recovered (each scheduled op fails exactly once);
    // the query must come back with the full correct answer.
    let mut recovered = None;
    for _ in 0..400 {
        db.internals().0.invalidate_buffers().unwrap();
        if let Ok(out) = db.execute("retrieve (z.id, z.seq)") {
            recovered = Some(rows_of(&out));
            break;
        }
    }
    assert_eq!(
        recovered.as_deref(),
        Some(expected.as_slice()),
        "after the transient period the answer is complete and correct"
    );
}

// ---------------------------------------------------------------------
// Golden invariance: checksums are invisible to the paper's numbers
// ---------------------------------------------------------------------

/// The sidecar is out-of-band: with checksumming on, the Figure 5 page
/// counts and the stored rows of the seed database are byte-identical to
/// a plain build. (CI additionally smoke-runs the fig5 binary under
/// `TDBMS_CHECKSUMS=1` and diffs the full figure output.)
#[test]
fn fig5_goldens_are_byte_identical_with_checksums_on() {
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut plain = Database::in_memory();
    populate_database(&mut plain, &cfg);
    let mut scrubbed = Database::in_memory();
    scrubbed.enable_checksums().unwrap();
    populate_database(&mut scrubbed, &cfg);
    assert!(scrubbed.checksums_enabled());

    for rel in [cfg.rel_h(), cfg.rel_i()] {
        let p = plain.relation_meta(&rel).unwrap();
        let s = scrubbed.relation_meta(&rel).unwrap();
        assert_eq!(p.total_pages, s.total_pages, "{rel}: page count");
        assert_eq!(p.tuple_count, s.tuple_count, "{rel}: tuple count");
        assert_eq!(
            all_rows(&mut plain, &rel),
            all_rows(&mut scrubbed, &rel),
            "{rel}: stored rows must be byte-identical"
        );
    }
    // The seed goldens themselves (Figure 5, update count 0).
    let h = scrubbed.relation_meta(&cfg.rel_h()).unwrap();
    let i = scrubbed.relation_meta(&cfg.rel_i()).unwrap();
    assert_eq!(h.total_pages, 128);
    assert_eq!(i.total_pages, 129);
    assert_eq!(h.tuple_count, 1024);
}
