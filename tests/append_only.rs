//! The paper's write-once-media claim, checked as an invariant:
//!
//! "In addition, all modification operations for rollback and temporal
//! relations in this scheme are append only, so write-once optical disks
//! can be utilized."
//!
//! Strictly, one kind of in-place mutation remains — stamping a stop time
//! (`transaction_stop` / `valid_to`) into an existing version — which maps
//! onto WORM hardware by reserving those four bytes (Ahn 1986 discusses
//! the technique). This test wraps the disk manager in an auditor that
//! diffs every page rewrite and asserts that updates to versioned
//! relations never mutate anything *except* appended bytes, the page
//! header, and 4-byte time-attribute fields of existing rows.

use std::sync::{Arc, Mutex};
use tdbms::{Database, PAGE_SIZE};
use tdbms_storage::{DiskManager, FileId, MemDisk, Page, Pager};

/// Byte ranges of an existing page image that a rewrite changed.
#[derive(Debug, Clone)]
struct Mutation {
    file: FileId,
    page: u32,
    /// Offsets of changed bytes, coalesced into runs.
    runs: Vec<(usize, usize)>,
}

#[derive(Default)]
struct AuditLog {
    mutations: Vec<Mutation>,
}

/// A disk manager that remembers every page image and reports rewrites
/// that change already-written bytes.
struct AuditDisk {
    inner: MemDisk,
    log: Arc<Mutex<AuditLog>>,
}

impl DiskManager for AuditDisk {
    fn create_file(&mut self) -> tdbms::Result<FileId> {
        self.inner.create_file()
    }
    fn drop_file(&mut self, file: FileId) -> tdbms::Result<()> {
        self.inner.drop_file(file)
    }
    fn page_count(&self, file: FileId) -> tdbms::Result<u32> {
        self.inner.page_count(file)
    }
    fn read_page(
        &mut self,
        file: FileId,
        page_no: u32,
    ) -> tdbms::Result<Page> {
        self.inner.read_page(file, page_no)
    }
    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> tdbms::Result<()> {
        let before = self.inner.read_page(file, page_no)?;
        let old = before.as_bytes();
        let new = page.as_bytes();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if old[i] != new[i] {
                let start = i;
                while i < PAGE_SIZE && old[i] != new[i] {
                    i += 1;
                }
                runs.push((start, i));
            } else {
                i += 1;
            }
        }
        if !runs.is_empty() {
            self.log.lock().unwrap().mutations.push(Mutation {
                file,
                page: page_no,
                runs,
            });
        }
        self.inner.write_page(file, page_no, page)
    }
    fn append_page(
        &mut self,
        file: FileId,
        page: &Page,
    ) -> tdbms::Result<u32> {
        self.inner.append_page(file, page)
    }
    fn truncate(&mut self, file: FileId) -> tdbms::Result<()> {
        self.inner.truncate(file)
    }
    fn sync(&mut self, file: FileId) -> tdbms::Result<()> {
        self.inner.sync(file)
    }
    fn files(&self) -> Vec<FileId> {
        self.inner.files()
    }
}

/// Classify whether a mutated byte range is WORM-compatible for a
/// relation with `row_width`-byte rows and 4-byte time attributes at the
/// stored offsets `time_offsets` (within the row).
fn run_is_worm_ok(
    run: (usize, usize),
    old_count: usize,
    row_width: usize,
    time_offsets: &[usize],
) -> bool {
    const HEADER: usize = 12;
    let (start, end) = run;
    // Page header (overflow pointer + slot count) may change.
    if end <= HEADER {
        return true;
    }
    // Bytes beyond the previously used area are fresh appends.
    let used_end = HEADER + old_count * row_width;
    if start >= used_end {
        return true;
    }
    // Otherwise the run must fall wholly inside one existing row's 4-byte
    // time attribute.
    if start < HEADER {
        return false;
    }
    let slot = (start - HEADER) / row_width;
    let row_base = HEADER + slot * row_width;
    time_offsets
        .iter()
        .any(|&off| start >= row_base + off && end <= row_base + off + 4)
}

#[test]
fn temporal_updates_are_append_only_plus_time_stamps() {
    let log = Arc::new(Mutex::new(AuditLog::default()));
    let disk = AuditDisk {
        inner: MemDisk::new(),
        log: Arc::clone(&log),
    };
    let mut db = Database::with_pager(Pager::new(Box::new(disk)));

    db.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    db.execute("range of v is t").unwrap();
    for i in 1..=64 {
        db.execute(&format!("append to t (id = {i}, x = 0)"))
            .unwrap();
    }
    db.execute("modify t to hash on id where fillfactor = 100")
        .unwrap();
    // Discard mutations from the load/reorganization phase: WORM media
    // would be written once after organization, then appended to.
    let old_counts = snapshot_counts(&mut db);
    log.lock().unwrap().mutations.clear();

    for round in 1..=3 {
        db.execute(&format!("replace v (x = {round})")).unwrap();
    }
    db.execute("delete v where v.id = 7").unwrap();

    // The temporal schema: id(0..4) x(4..8) vf(8..12) vt(12..16)
    // ts(16..20) te(20..24); the stampable fields are valid_to (12) and
    // transaction_stop (20).
    let schema = db.schema_of("t").unwrap();
    let row_width = schema.row_width();
    assert_eq!(row_width, 24);
    let time_offsets = [12usize, 20];

    let log = log.lock().unwrap();
    assert!(!log.mutations.is_empty(), "updates must have hit the disk");
    for m in &log.mutations {
        let old_count =
            old_counts.get(&(m.file, m.page)).copied().unwrap_or(0);
        for run in &m.runs {
            assert!(
                run_is_worm_ok(*run, old_count, row_width, &time_offsets),
                "non-append mutation outside a time stamp: file {:?} page {} \
                 bytes {:?} (old slot count {})",
                m.file,
                m.page,
                run,
                old_count
            );
        }
    }
}

/// Slot counts per page at the WORM cutover point, so later appends to
/// partially filled pages are recognized as appends.
fn snapshot_counts(
    db: &mut Database,
) -> std::collections::HashMap<(FileId, u32), usize> {
    let (pager, catalog, _) = db.internals();
    let mut counts = std::collections::HashMap::new();
    let id = catalog.require("t").unwrap();
    let file = catalog.get(id).file.file_id();
    let n = pager.page_count(file).unwrap();
    for p in 0..n {
        let c = pager.read(file, p, |pg| pg.count()).unwrap();
        counts.insert((file, p), c);
    }
    counts
}

#[test]
fn static_updates_are_not_append_only() {
    // The contrast that motivates the taxonomy: a static relation rewrites
    // user data in place, so it could never live on write-once media.
    let log = Arc::new(Mutex::new(AuditLog::default()));
    let disk = AuditDisk {
        inner: MemDisk::new(),
        log: Arc::clone(&log),
    };
    let mut db = Database::with_pager(Pager::new(Box::new(disk)));
    db.execute("create static s (id = i4, x = i4)").unwrap();
    db.execute("range of v is s").unwrap();
    for i in 1..=16 {
        db.execute(&format!("append to s (id = {i}, x = 0)"))
            .unwrap();
    }
    log.lock().unwrap().mutations.clear();
    db.execute("replace v (x = 9) where v.id = 3").unwrap();
    let log = log.lock().unwrap();
    // Some rewrite touched existing non-time bytes (the x attribute at
    // row offset 4..8 of an already-written slot).
    let schema_width = 8usize;
    // Treat every slot as pre-existing (a large-but-safe old count), so
    // any in-row change registers as a violation.
    let violating = log.mutations.iter().any(|m| {
        m.runs
            .iter()
            .any(|r| !run_is_worm_ok(*r, 10_000, schema_width, &[]))
    });
    assert!(violating, "static replace should mutate user data in place");
}
