//! Deterministic concurrency stress suite for the session engine.
//!
//! Three layers, all seeded through `tdbms_kernel::Prng` so every run —
//! local, CI, or bisect — replays the same schedules:
//!
//! * **100 seeded schedules**: four sessions per engine run a mixed
//!   read / replace / append / delete / checkpoint workload; after every
//!   schedule the I/O ledger must balance and `tdbms-check` must audit
//!   the database clean. A quarter of the schedules run through the
//!   write-ahead log on shared in-memory storage.
//! * **Crash under concurrency**: a fault-injected matrix kills the
//!   "process" (via [`FaultPlan`]) while four threads are mid-workload,
//!   with random torn writes on both the page and log channels. Reopening
//!   the raw survivors must recover every statement that returned `Ok`
//!   to any session — zero committed tuples lost — invent nothing that
//!   was never attempted, audit clean, and be idempotent.
//! * **Accounting property**: the atomic [`IoStats`] counters, read
//!   concurrently, must agree exactly with a serial replay of the same
//!   seeded schedule — the lock-free accounting never drops or invents
//!   a page access.

use std::collections::BTreeSet;
use std::sync::Mutex;
use tdbms::wal::{FaultLog, LogStore, SharedMemLog};
use tdbms::{CheckpointPolicy, Database, Engine};
use tdbms_check::check_database;
use tdbms_kernel::{Prng, Value};
use tdbms_storage::{DiskManager, FaultDisk, FaultPlan, SharedMemDisk};

/// Seed rows shared by every schedule: ids `1..=BASE_IDS`, `seq = 0`.
const BASE_IDS: i64 = 24;

fn create_and_seed(db: &mut Database) {
    db.execute("create temporal interval t (id = i4, seq = i4)")
        .expect("create");
    for id in 1..=BASE_IDS {
        db.execute(&format!("append to t (id = {id}, seq = 0)"))
            .expect("seed append");
    }
}

/// The sorted current `id`s of relation `t`, read through a throwaway
/// session (every test relation here is append/delete on distinct ids,
/// so the id set is the whole observable state we assert on).
fn current_ids(engine: &Engine) -> BTreeSet<i64> {
    let mut s = engine.session();
    let out = s
        .execute("range of q is t\nretrieve (q.id)")
        .expect("snapshot retrieve");
    out.rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Int(n) => *n,
            other => panic!("id column decoded as {other:?}"),
        })
        .collect()
}

/// Audit the live database with `tdbms-check` and fail loudly on any
/// finding.
fn audit_clean(engine: &Engine, ctx: &str) {
    engine.with_write(|db| {
        let (pager, catalog, _) = db.internals();
        let report = check_database(pager, catalog).expect("audit runs");
        assert!(
            report.is_clean(),
            "{ctx}: check found problems:\n{}",
            report.render()
        );
    });
}

/// One seeded stress schedule: four sessions, sixteen statements each,
/// mixing shared-lock reads with exclusive-lock DML and checkpoints.
/// Appended ids are unique per (thread, op) and never deleted, so after
/// the dust settles every `Ok` append must still be visible.
fn run_stress_schedule(seed: u64, durable: bool) {
    let mut db = if durable {
        Database::open_durable_on(
            Box::new(SharedMemDisk::new()),
            Box::new(SharedMemLog::new()),
            None,
        )
        .expect("durable open on fresh storage")
    } else {
        Database::in_memory()
    };
    db.set_cold_statements(false);
    create_and_seed(&mut db);
    let engine = Engine::new(db);

    let appended = Mutex::new(BTreeSet::new());
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let engine = engine.clone();
            let appended = &appended;
            scope.spawn(move || {
                let mut g = Prng::seed_from_u64(seed ^ (t << 32) ^ 0x5eed);
                let mut s = engine.session();
                s.execute("range of z is t").expect("range");
                for op in 0..16u64 {
                    let key = g.random_range(1i64..=BASE_IDS);
                    match g.random_range(0u32..10) {
                        0..=4 => {
                            s.execute(&format!(
                                "retrieve (z.seq) where z.id = {key}"
                            ))
                            .expect("read");
                        }
                        5..=6 => {
                            s.execute(&format!(
                                "replace z (seq = z.seq + 1) \
                                 where z.id = {key}"
                            ))
                            .expect("replace");
                        }
                        7 => {
                            let id = 1000 + (t as i64) * 100 + op as i64;
                            s.execute(&format!(
                                "append to t (id = {id}, seq = 0)"
                            ))
                            .expect("append");
                            appended.lock().expect("unpoisoned").insert(id);
                        }
                        8 => {
                            s.execute(&format!(
                                "delete z where z.id = {key}"
                            ))
                            .expect("delete");
                        }
                        _ => {
                            engine
                                .with_write(|db| db.checkpoint())
                                .expect("checkpoint");
                        }
                    }
                }
            });
        }
    });

    // The atomic ledger must still balance after the contention.
    engine.with_read(|db| {
        assert!(
            db.io_stats().is_consistent(),
            "seed {seed}: hits + misses != accesses after stress"
        );
    });
    // Every append that returned Ok is still visible (appended ids are
    // disjoint from the 1..=BASE_IDS delete targets).
    let ids = current_ids(&engine);
    let appended = appended.into_inner().expect("unpoisoned");
    for id in &appended {
        assert!(
            ids.contains(id),
            "seed {seed}: committed append {id} vanished"
        );
    }
    audit_clean(&engine, &format!("seed {seed} (durable={durable})"));
}

/// Acceptance gate: 100 seeded multi-thread schedules, every resulting
/// database audited clean. Seeds divisible by four run through the WAL.
#[test]
fn hundred_seeded_schedules_audit_clean() {
    for seed in 0..100u64 {
        run_stress_schedule(seed, seed % 4 == 0);
    }
}

/// Crash-under-concurrency matrix: a fault-wrapped durable engine is
/// killed mid-workload while three writers and one reader are running;
/// recovery from the raw survivors must keep every committed append.
#[test]
fn crash_under_concurrency_loses_no_committed_tuples() {
    for case in 0..12u64 {
        let mut g = Prng::seed_from_u64(0xc0de + case * 7919);
        let budget = g.random_range(25u64..=110);
        let torn_disk =
            g.random_bool().then(|| g.random_range(0usize..1024));
        let torn_log = g.random_bool().then(|| g.random_range(0usize..48));

        // Incarnation 1 (no faults): build the baseline and checkpoint
        // it, so `t` always exists when the crash run opens.
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let baseline: BTreeSet<i64> = (1..=BASE_IDS).collect();
        {
            let mut db = Database::open_durable_on(
                Box::new(disk.clone()),
                Box::new(log.clone()),
                None,
            )
            .expect("baseline open");
            create_and_seed(&mut db);
            db.checkpoint().expect("baseline checkpoint");
        }

        // Incarnation 2: same storage behind fault injectors with an op
        // budget; three writer sessions append unique ids (recording the
        // ones that commit) and one reader polls, until the crash.
        let plan = FaultPlan::new(Some(budget));
        let fdisk: Box<dyn DiskManager> = match torn_disk {
            Some(k) => Box::new(FaultDisk::with_torn_writes(
                Box::new(disk.clone()),
                plan.clone(),
                k,
            )),
            None => Box::new(FaultDisk::new(
                Box::new(disk.clone()),
                plan.clone(),
            )),
        };
        let flog: Box<dyn LogStore> = match torn_log {
            Some(k) => Box::new(FaultLog::with_torn_appends(
                Box::new(log.clone()),
                plan.clone(),
                k,
            )),
            None => {
                Box::new(FaultLog::new(Box::new(log.clone()), plan.clone()))
            }
        };
        let committed = Mutex::new(BTreeSet::new());
        let mut attempted = baseline.clone();
        for t in 0..3i64 {
            for k in 0..16i64 {
                attempted.insert(1000 + t * 100 + k);
            }
        }
        if let Ok(mut db) = Database::open_durable_on(fdisk, flog, None) {
            // Frequent checkpoints so the crash point lands in every
            // part of the commit/checkpoint cycle across the matrix.
            db.set_checkpoint_policy(CheckpointPolicy::EveryN(3));
            let engine = Engine::new(db);
            std::thread::scope(|scope| {
                for t in 0..3i64 {
                    let engine = engine.clone();
                    let committed = &committed;
                    scope.spawn(move || {
                        let mut s = engine.session();
                        if s.execute("range of z is t").is_err() {
                            return;
                        }
                        for k in 0..16i64 {
                            let id = 1000 + t * 100 + k;
                            match s.execute(&format!(
                                "append to t (id = {id}, seq = 0)"
                            )) {
                                Ok(_) => {
                                    committed
                                        .lock()
                                        .expect("unpoisoned")
                                        .insert(id);
                                }
                                Err(_) => return,
                            }
                        }
                    });
                }
                let engine = engine.clone();
                scope.spawn(move || {
                    let mut s = engine.session();
                    if s.execute("range of z is t").is_err() {
                        return;
                    }
                    for _ in 0..32 {
                        if s.execute("retrieve (z.seq) where z.id = 3")
                            .is_err()
                        {
                            return;
                        }
                    }
                });
            });
        }
        assert!(
            plan.crashed(),
            "case {case}: budget {budget} never tripped — the matrix \
             must actually crash mid-workload"
        );
        let committed: BTreeSet<i64> = {
            let mut all = committed.into_inner().expect("unpoisoned");
            all.extend(baseline.iter().copied());
            all
        };

        // Recovery on the raw survivors.
        let rdb = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("recovery must succeed on raw survivors");
        let engine = Engine::new(rdb);
        let recovered = current_ids(&engine);
        for id in &committed {
            assert!(
                recovered.contains(id),
                "case {case} (budget {budget}, torn_disk {torn_disk:?}, \
                 torn_log {torn_log:?}): committed tuple {id} lost in \
                 recovery"
            );
        }
        for id in &recovered {
            assert!(
                attempted.contains(id),
                "case {case}: recovery invented tuple {id}"
            );
        }
        audit_clean(&engine, &format!("case {case} after recovery"));
        drop(engine);

        // Recovering twice equals recovering once.
        let rdb2 = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("second recovery");
        assert_eq!(
            current_ids(&Engine::new(rdb2)),
            recovered,
            "case {case}: recovery is not idempotent"
        );
    }
}

/// A database partitioned one relation per thread (`t0..t3`, two buffer
/// frames each) so every counter is a pure function of the schedule —
/// concurrency may interleave the work but must not change the ledger.
fn build_partitioned() -> Database {
    let mut db = Database::in_memory();
    db.set_cold_statements(false);
    for t in 0..4 {
        db.execute(&format!(
            "create temporal interval t{t} (id = i4, seq = i4)"
        ))
        .expect("create");
        db.set_buffer_frames(&format!("t{t}"), 2).expect("frames");
        for id in 1..=16 {
            db.execute(&format!("append to t{t} (id = {id}, seq = 0)"))
                .expect("seed");
        }
    }
    db
}

/// The per-thread read schedule for one seed: keyed single-variable
/// retrieves against that thread's own relation.
fn read_schedule(seed: u64, t: u64) -> Vec<String> {
    let mut g = Prng::seed_from_u64(seed ^ (t << 24) ^ 0x10575);
    (0..24)
        .map(|_| {
            format!(
                "retrieve (z{t}.seq) where z{t}.id = {}",
                g.random_range(1i64..=16)
            )
        })
        .collect()
}

/// Satellite property: concurrent readers observe consistent `IoStats`
/// counters. The global atomic deltas accumulated while four sessions
/// read in parallel must equal, exactly, the per-statement sums of a
/// serial replay of the same seeded schedule — per-relation buffer pools
/// make even the hit/miss split deterministic, so any difference means
/// the lock-free accounting under- or over-counted.
#[test]
fn concurrent_read_accounting_matches_serial_replay() {
    for seed in [3u64, 17, 40, 71, 96, 0xbeef] {
        // Concurrent run: global monotone counters, delta over the
        // whole read phase (the read path never resets them).
        let engine = Engine::new(build_partitioned());
        let before = engine.with_read(|db| {
            let st = db.io_stats();
            (
                st.total_reads(),
                st.total_writes(),
                st.total_hits(),
                st.total_accesses(),
            )
        });
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let engine = engine.clone();
                scope.spawn(move || {
                    let mut s = engine.session();
                    s.execute(&format!("range of z{t} is t{t}"))
                        .expect("range");
                    for stmt in read_schedule(seed, t) {
                        s.execute(&stmt).expect("read");
                    }
                });
            }
        });
        let after = engine.with_read(|db| {
            let st = db.io_stats();
            assert!(st.is_consistent(), "seed {seed}: ledger imbalance");
            (
                st.total_reads(),
                st.total_writes(),
                st.total_hits(),
                st.total_accesses(),
            )
        });
        let concurrent = (
            after.0 - before.0,
            after.1 - before.1,
            after.2 - before.2,
            after.3 - before.3,
        );

        // Serial replay of the identical schedule on a fresh database,
        // summing each statement's own measured stats.
        let mut db = build_partitioned();
        let (mut reads, mut writes, mut hits) = (0u64, 0u64, 0u64);
        for t in 0..4u64 {
            db.execute(&format!("range of z{t} is t{t}"))
                .expect("range");
            for stmt in read_schedule(seed, t) {
                let out = db.execute(&stmt).expect("read");
                reads += out.stats.input_pages;
                writes += out.stats.output_pages;
                hits += out.stats.buffer_hits;
            }
        }
        assert!(
            reads + hits > 0,
            "seed {seed}: the schedule must actually touch pages"
        );
        assert_eq!(
            concurrent,
            (reads, writes, hits, reads + hits),
            "seed {seed}: concurrent counter deltas diverge from the \
             serial replay (reads, writes, hits, accesses)"
        );
    }
}
