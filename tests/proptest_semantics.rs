//! Model-based property tests of the temporal semantics: a temporal
//! database must agree, at every probed instant, with a naive in-memory
//! model that replays the same operation sequence.

use std::collections::BTreeMap;
use tdbms::{Database, Granularity, TimeVal};
use tdbms_prop::{check, Gen};

/// One randomized operation against the test relation.
#[derive(Debug, Clone)]
enum Op {
    Append { id: i32, x: i32 },
    Replace { id: i32, x: i32 },
    Delete { id: i32 },
}

fn arb_op(g: &mut Gen) -> Op {
    match g.range(0u8..3) {
        0 => Op::Append {
            id: g.range(0i32..12),
            x: g.any_i32(),
        },
        1 => Op::Replace {
            id: g.range(0i32..12),
            x: g.any_i32(),
        },
        _ => Op::Delete {
            id: g.range(0i32..12),
        },
    }
}

/// The naive model: per id, the currently valid value (if any).
type Model = BTreeMap<i32, i32>;

fn apply_model(model: &mut Model, op: &Op) {
    match op {
        Op::Append { id, x } => {
            // Mirrors the DBMS: appending a second current version for the
            // same id simply records another valid tuple; to keep the
            // model a function we only append when absent (the driver
            // below enforces this).
            model.entry(*id).or_insert(*x);
        }
        Op::Replace { id, x } => {
            if let Some(v) = model.get_mut(id) {
                *v = *x;
            }
        }
        Op::Delete { id } => {
            model.remove(id);
        }
    }
}

fn current_state(db: &mut Database, suffix: &str) -> Model {
    let out = db
        .execute(&format!(
            r#"retrieve (t.id, t.x) when t overlap "now"{suffix}"#
        ))
        .unwrap();
    out.rows()
        .iter()
        .map(|r| {
            (r[0].as_int().unwrap() as i32, r[1].as_int().unwrap() as i32)
        })
        .collect()
}

/// The property body: replay `ops` against both the DBMS and the model;
/// also the body of the recorded regression below.
fn temporal_replay_case(ops: &[Op]) {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    db.execute("range of t is t").unwrap();
    let mut model = Model::new();
    let mut snapshots: Vec<(TimeVal, Model)> = Vec::new();
    let mut expected_versions: u64 = 0;

    for op in ops {
        match op {
            Op::Append { id, x } => {
                if model.contains_key(id) {
                    continue; // keep ids unique, as the model assumes
                }
                db.execute(&format!("append to t (id = {id}, x = {x})"))
                    .unwrap();
                expected_versions += 1;
            }
            Op::Replace { id, x } => {
                let n = db
                    .execute(&format!(
                        "replace t (x = {x}) where t.id = {id}"
                    ))
                    .unwrap()
                    .affected;
                assert_eq!(n == 1, model.contains_key(id));
                expected_versions += 2 * n as u64;
            }
            Op::Delete { id } => {
                let n = db
                    .execute(&format!("delete t where t.id = {id}"))
                    .unwrap()
                    .affected;
                assert_eq!(n == 1, model.contains_key(id));
                expected_versions += n as u64;
            }
        }
        apply_model(&mut model, op);
        // Probe strictly between statements (the clock steps 60 s per
        // statement): at the exact instant of an update both the
        // closing and the opening version hold under TQuel's
        // attribute-value (closed) interval comparisons, so the
        // half-instant probe is the unambiguous snapshot.
        let between = TimeVal::from_secs(db.clock().now().as_secs() + 30);
        snapshots.push((between, model.clone()));
    }

    // (1) current state.
    assert_eq!(current_state(&mut db, ""), model);

    // (3) stored version count.
    let meta = db.relation_meta("t").unwrap();
    assert_eq!(meta.tuple_count, expected_versions);

    // (2) rollback to every snapshot instant. "now" in the when clause
    // must also be rolled back: query valid-at the snapshot instant.
    for (at, snap) in &snapshots {
        let s = at.format(Granularity::Second);
        let out = db
            .execute(&format!(
                r#"retrieve (t.id, t.x) when t overlap "{s}" as of "{s}""#
            ))
            .unwrap();
        let got: Model = out
            .rows()
            .iter()
            .map(|r| {
                (
                    r[0].as_int().unwrap() as i32,
                    r[1].as_int().unwrap() as i32,
                )
            })
            .collect();
        assert_eq!(&got, snap, "as of {s}");
    }
}

/// After any operation sequence: (1) the current state equals the
/// model; (2) the state as-of each recorded instant equals the model
/// snapshot taken then; (3) version counts follow Section 4's
/// accounting (replace = 2 inserts, delete = 1, append = 1).
#[test]
fn temporal_database_replays_like_the_model() {
    check(
        "temporal_database_replays_like_the_model",
        32,
        |g: &mut Gen| {
            let ops = g.vec(1..40, arb_op);
            temporal_replay_case(&ops);
        },
    );
}

/// Recorded proptest counterexample (tests/proptest_semantics.proptest-
/// regressions): `ops = [Append { id: 10, x: 0 }, Replace { id: 10,
/// x: 0 }]` — a replace that writes the *same* value must still close
/// the old version and open a new one (version count 3, not 1), and the
/// as-of probes around the replace must each see exactly one version.
#[test]
fn regression_replace_with_identical_value_versions_correctly() {
    temporal_replay_case(&[
        Op::Append { id: 10, x: 0 },
        Op::Replace { id: 10, x: 0 },
    ]);
}

/// A rollback database and a temporal database given the same updates
/// agree on every rolled-back current state.
#[test]
fn rollback_and_temporal_agree_on_transaction_time() {
    check(
        "rollback_and_temporal_agree_on_transaction_time",
        32,
        |g: &mut Gen| {
            let ops = g.vec(1..25, arb_op);
            let mut rb = Database::in_memory();
            rb.execute("create rollback r (id = i4, x = i4)").unwrap();
            rb.execute("range of v is r").unwrap();
            let mut tp = Database::in_memory();
            tp.execute("create temporal interval r (id = i4, x = i4)")
                .unwrap();
            tp.execute("range of v is r").unwrap();

            let mut present: std::collections::BTreeSet<i32> =
                Default::default();
            let mut instants = Vec::new();
            for op in &ops {
                let stmt = match op {
                    Op::Append { id, x } => {
                        if present.contains(id) {
                            continue;
                        }
                        present.insert(*id);
                        format!("append to r (id = {id}, x = {x})")
                    }
                    Op::Replace { id, x } => {
                        format!("replace v (x = {x}) where v.id = {id}")
                    }
                    Op::Delete { id } => {
                        present.remove(id);
                        format!("delete v where v.id = {id}")
                    }
                };
                rb.execute(&stmt).unwrap();
                tp.execute(&stmt).unwrap();
                assert_eq!(rb.clock().now(), tp.clock().now());
                // Probe between statements (see the comment in the test
                // above about exact-boundary instants).
                instants.push(TimeVal::from_secs(
                    rb.clock().now().as_secs() + 30,
                ));
            }

            for at in &instants {
                let s = at.format(Granularity::Second);
                let probe_rb =
                    format!(r#"retrieve (v.id, v.x) as of "{s}""#);
                // On the temporal side the rolled-back *current* state also
                // needs the valid-time filter at the same instant.
                let probe_tp = format!(
                    r#"retrieve (v.id, v.x) when v overlap "{s}" as of "{s}""#
                );
                let read = |db: &mut Database,
                            q: &str|
                 -> Vec<(i64, i64)> {
                    let out = db.execute(q).unwrap();
                    let mut v: Vec<(i64, i64)> = out
                        .rows()
                        .iter()
                        .map(|r| {
                            (r[0].as_int().unwrap(), r[1].as_int().unwrap())
                        })
                        .collect();
                    v.sort();
                    v
                };
                assert_eq!(
                    read(&mut rb, &probe_rb),
                    read(&mut tp, &probe_tp),
                    "as of {s}"
                );
            }
        },
    );
}

/// The two-level store and the conventional organization hold exactly
/// the same versions after the same update stream.
#[test]
fn two_level_store_is_equivalent_to_conventional() {
    check(
        "two_level_store_is_equivalent_to_conventional",
        32,
        |g: &mut Gen| {
            use tdbms_storage::{AccessMethod, HashFn};
            use tdbms_twostore::{HistoryLayout, TwoLevelStore};

            let rounds = g.range(0u32..6);
            let n = g.range(4i64..24);

            let mut db = Database::in_memory();
            db.execute("create temporal interval t (id = i4, x = i4)")
                .unwrap();
            db.execute("range of t is t").unwrap();
            for id in 1..=n {
                db.execute(&format!("append to t (id = {id}, x = 0)"))
                    .unwrap();
            }
            for r in 1..=rounds {
                db.execute(&format!("replace t (x = {r})")).unwrap();
            }
            // Conventional versions of each id...
            let mut conventional: Vec<Vec<u8>> = Vec::new();
            {
                let (pager, catalog, _) = db.internals();
                let rel =
                    catalog.get(catalog.require("t").unwrap()).file.clone();
                let mut cur = rel.scan();
                while let Some((_, row)) = cur.next(pager, &rel).unwrap() {
                    conventional.push(row);
                }
            }
            // ...must equal the union of primary + history in a two-level
            // rebuild.
            let schema = db.schema_of("t").unwrap();
            let pager = tdbms_storage::Pager::in_memory();
            for layout in [HistoryLayout::Simple, HistoryLayout::Clustered]
            {
                let store = TwoLevelStore::build_from_rows(
                    &pager,
                    &schema,
                    &conventional,
                    0,
                    AccessMethod::Hash,
                    100,
                    HashFn::Mod,
                    layout,
                )
                .unwrap();
                let mut got: Vec<Vec<u8>> = Vec::new();
                let mut cur = store.primary().scan();
                while let Some((_, row)) =
                    cur.next(&pager, store.primary()).unwrap()
                {
                    got.push(row);
                }
                store
                    .history()
                    .for_all(&pager, |r| {
                        got.push(r.to_vec());
                        Ok(())
                    })
                    .unwrap();
                let mut want = conventional.clone();
                want.sort();
                got.sort();
                assert_eq!(got, want);
                assert_eq!(store.current_count(), n as u64);
                assert_eq!(
                    store.history_count(),
                    2 * rounds as u64 * n as u64
                );
            }
        },
    );
}
