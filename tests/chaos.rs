//! The graceful-degradation acceptance suite: "degrade, don't die".
//!
//! Resource exhaustion (a full disk, a failing fsync) must never
//! poison the engine or kill the server. The contract under test, at
//! every layer of the stack:
//!
//! * **Database** — a write that hits ENOSPC or a failed log sync is
//!   rolled back statement-atomically and the engine drops into
//!   *degraded* mode: a typed [`Error::Degraded`], snapshot reads
//!   keep serving, further writes are refused up front, and the
//!   first write attempted after the resource recovers re-arms the
//!   engine automatically.
//! * **Engine (group commit)** — a failed *group* fsync fails every
//!   ticket in the batch instead of poisoning the shared state. A
//!   ticket whose statement already applied gets
//!   [`Error::RetryUnsafe`] (its durability is unknown — the effects
//!   stand, so a verbatim retry would double-apply); writes refused
//!   before executing get the retryable [`Error::Degraded`].
//! * **Net** — a [`ReconnectClient`] retries idempotent requests
//!   across connection loss but surfaces a typed
//!   [`Error::RetryUnsafe`] for writes whose outcome is unknown; a
//!   live server rides out fault windows injected underneath it and
//!   leaves a directory `tdbms-check` audits clean.
//!
//! Fault windows here are driven *manually* (no wall-clock
//! randomness), so every test is fully deterministic. The seeded
//! wall-clock variant lives in `throughput --chaos SEED`.

use std::time::Duration;

use tdbms::wal::{FaultLog, FileLog, SharedMemLog};
use tdbms::{
    CheckpointPolicy, Database, Engine, Error, GroupCommitConfig, Value,
};
use tdbms_kernel::tmpdir::fresh_dir;
use tdbms_net::{
    Client, ReconnectClient, RetryConfig, Server, ServerConfig,
};
use tdbms_storage::{FaultDisk, FaultPlan, FileDisk, SharedMemDisk};

const CREATE: &str = "create temporal interval r (id = i4, seq = i4)";

/// A durable database on fault-wrapped shared in-memory storage,
/// plus the plan that injects faults and the storage handles a
/// reopen can replay from.
fn fault_db() -> (Database, FaultPlan, SharedMemDisk, SharedMemLog) {
    let disk = SharedMemDisk::new();
    let log = SharedMemLog::new();
    let plan = FaultPlan::new(None);
    let db = Database::open_durable_on(
        Box::new(FaultDisk::new(Box::new(disk.clone()), plan.clone())),
        Box::new(FaultLog::new(Box::new(log.clone()), plan.clone())),
        None,
    )
    .expect("durable open on fresh storage");
    (db, plan, disk, log)
}

fn append(db: &mut Database, id: i64) -> Result<(), Error> {
    db.execute(&format!("append to r (id = {id}, seq = 0)"))
        .map(|_| ())
}

/// The sorted current ids of `r`, read through the ordinary retrieve
/// path (which must keep working in degraded mode).
fn ids(db: &mut Database) -> Vec<i64> {
    db.execute("range of x is r").expect("range declaration");
    let out = db.execute("retrieve (x.id)").expect("retrieve serves");
    let mut got: Vec<i64> = out
        .rows()
        .iter()
        .filter_map(|row| match row.first() {
            Some(Value::Int(id)) => Some(*id),
            _ => None,
        })
        .collect();
    got.sort_unstable();
    got
}

#[test]
fn enospc_write_rolls_back_degrades_and_rearms() {
    let (mut db, plan, disk, log) = fault_db();
    db.execute(CREATE).expect("create");
    for id in 1..=5 {
        append(&mut db, id).expect("append before the fault");
    }

    plan.set_enospc(true);
    let err = append(&mut db, 6).expect_err("disk is full");
    assert!(
        matches!(err, Error::Degraded { .. }),
        "ENOSPC must surface as a typed Degraded error, got: {err}"
    );
    assert!(db.is_degraded());
    assert!(db.degraded_reason().is_some());

    // Snapshot reads keep serving, and the failed statement left no
    // trace.
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4, 5]);

    // Degraded is sticky while the resource is still exhausted.
    let err = append(&mut db, 7).expect_err("still full");
    assert!(matches!(err, Error::Degraded { .. }));

    // The first write after recovery re-arms automatically.
    plan.set_enospc(false);
    append(&mut db, 8).expect("write path re-armed");
    assert!(!db.is_degraded());
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4, 5, 8]);

    // Everything acked — and nothing the client saw fail — survives
    // a crash-reopen from the same storage.
    drop(db);
    let mut db =
        Database::open_durable_on(Box::new(disk), Box::new(log), None)
            .expect("reopen replays the log");
    assert_eq!(ids(&mut db), vec![1, 2, 3, 4, 5, 8]);
}

#[test]
fn fsync_failure_degrades_and_recovers() {
    let (mut db, plan, disk, log) = fault_db();
    db.execute(CREATE).expect("create");
    for id in 1..=3 {
        append(&mut db, id).expect("append before the fault");
    }

    plan.set_fsync_fail(true);
    let err = append(&mut db, 4).expect_err("log sync fails");
    assert!(
        matches!(err, Error::Degraded { .. }),
        "a failed fsync must surface as Degraded, got: {err}"
    );
    assert!(db.is_degraded());
    assert_eq!(ids(&mut db), vec![1, 2, 3], "reads keep serving");

    plan.set_fsync_fail(false);
    append(&mut db, 5).expect("write path re-armed");
    assert!(!db.is_degraded());

    // The re-arm checkpoint resolved the commit-uncertainty window:
    // the rolled-back statement (id 4) is gone for good, the acked
    // ones survive a reopen.
    drop(db);
    let mut db =
        Database::open_durable_on(Box::new(disk), Box::new(log), None)
            .expect("reopen replays the log");
    assert_eq!(ids(&mut db), vec![1, 2, 3, 5]);
}

#[test]
fn group_fsync_failure_is_retry_unsafe_not_poisoned() {
    let (db, plan, _disk, _log) = fault_db();
    let mut db = db;
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(1024));
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
    })
    .expect("database is durable");
    let engine = Engine::new(db);
    let mut session = engine.session();
    session.execute(CREATE).expect("create");
    session
        .execute("append to r (id = 1, seq = 0)")
        .expect("append before the fault");

    plan.set_fsync_fail(true);
    let err = session
        .execute("append to r (id = 2, seq = 0)")
        .expect_err("group fsync fails");
    // The statement applied before the batch sync failed, so its
    // outcome is *unknown*: the effects stand and a verbatim retry
    // would double-apply. That is RetryUnsafe (never retryable), not
    // the rolled-back-and-retryable Degraded contract.
    assert!(
        matches!(err, Error::RetryUnsafe(_)),
        "a failed group fsync after the statement applied must be \
         RetryUnsafe, not Poisoned or Degraded: {err}"
    );
    assert!(!err.is_retryable());

    // The engine is degraded, not poisoned: other sessions still
    // read, and *new* writes get the typed retryable refusal (they
    // are turned away before executing). Reads may legitimately see
    // id 2 — the promise is that every tuple acked with `Ok` is
    // there, not that errored ones are gone.
    let mut other = engine.session();
    other.execute("range of x is r").expect("range");
    let out = other.execute("retrieve (x.id)").expect("reads serve");
    assert!(!out.rows().is_empty(), "acked id 1 stays visible");
    let err = other
        .execute("append to r (id = 3, seq = 0)")
        .expect_err("degraded refuses writes");
    assert!(matches!(err, Error::Degraded { .. }));

    // Recovery re-arms the group queue (failed tickets were failed,
    // not dropped) and writes flow again.
    plan.set_fsync_fail(false);
    let mut ok = false;
    for _ in 0..10 {
        if other.execute("append to r (id = 4, seq = 0)").is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(ok, "writes must resume after the fsync fault lifts");
    let out = other.execute("retrieve (x.id)").expect("reads serve");
    let got: Vec<i64> = out
        .rows()
        .iter()
        .filter_map(|row| match row.first() {
            Some(Value::Int(id)) => Some(*id),
            _ => None,
        })
        .collect();
    assert!(got.contains(&1) && got.contains(&4), "acked ids: {got:?}");
}

/// Regression: in group-commit mode a *due checkpoint's* leading log
/// sync is the just-committed ticket's FIRST durability point — the
/// commit's own fsync was left to the batching leader and hasn't run
/// yet. A failure there must be classified pre-durability (roll the
/// statement back and degrade), never mapped to a post-durability
/// checkpoint failure that acknowledges a commit no fsync ever
/// covered (a crash while degraded would lose the acked tuple).
#[test]
fn due_checkpoint_sync_failure_is_not_a_false_ack() {
    let (mut db, plan, disk, log) = fault_db();
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(1));
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
    })
    .expect("database is durable");
    db.execute(CREATE).expect("create");
    append(&mut db, 1).expect("append before the fault");

    plan.set_fsync_fail(true);
    let err = append(&mut db, 2)
        .expect_err("an unsynced commit must not be acknowledged");
    assert!(
        matches!(err, Error::Degraded { .. }),
        "pre-durability sync failure rolls back and degrades: {err}"
    );
    assert!(db.is_degraded());
    assert_eq!(ids(&mut db), vec![1], "the failed append rolled back");

    // Re-arm, then crash-reopen: every acked append survives and the
    // rolled-back one is gone for good (the re-arm checkpoint
    // truncated its log records away).
    plan.set_fsync_fail(false);
    append(&mut db, 3).expect("write path re-armed");
    assert!(!db.is_degraded());
    drop(db);
    let mut db =
        Database::open_durable_on(Box::new(disk), Box::new(log), None)
            .expect("reopen replays the log");
    assert_eq!(ids(&mut db), vec![1, 3]);
}

/// A failed *settle* — the batch fsync that runs after the statement
/// applied and its undo was discarded — means the commit's durability
/// is unknown while its effects stand. The plain-database path must
/// surface that as the non-retryable [`Error::RetryUnsafe`] (a
/// verbatim retry would double-apply), and the re-arm checkpoint then
/// persists the uncertain commit durably.
#[test]
fn inline_settle_failure_is_retry_unsafe_and_effects_stand() {
    let (mut db, plan, disk, log) = fault_db();
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(1024));
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
    })
    .expect("database is durable");
    db.execute(CREATE).expect("create");
    append(&mut db, 1).expect("append before the fault");

    plan.set_fsync_fail(true);
    let err = append(&mut db, 2).expect_err("batch fsync fails");
    assert!(
        matches!(err, Error::RetryUnsafe(_)),
        "settle failure must be RetryUnsafe, got: {err}"
    );
    assert!(!err.is_retryable());
    assert!(db.is_degraded());

    // The effects stood; the re-arm checkpoint makes them durable.
    plan.set_fsync_fail(false);
    append(&mut db, 3).expect("write path re-armed");
    assert_eq!(ids(&mut db), vec![1, 2, 3]);
    drop(db);
    let mut db =
        Database::open_durable_on(Box::new(disk), Box::new(log), None)
            .expect("reopen replays the log");
    assert_eq!(ids(&mut db), vec![1, 2, 3]);
}

#[test]
fn reconnect_client_is_typed_about_lost_writes() {
    let engine = Engine::new(Database::in_memory());
    let server =
        Server::bind(engine, "127.0.0.1:0", ServerConfig::default())
            .expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let cfg = RetryConfig {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        seed: 99,
    };
    let mut rc = ReconnectClient::new(addr.clone(), cfg);
    rc.query(CREATE).expect("create over the wire");
    rc.query("append to r (id = 1, seq = 0)").expect("append");

    // A dropped connection between requests is invisible: the client
    // redials and the idempotent retrieve succeeds.
    rc.drop_connection();
    rc.query("range of c is r\nretrieve (c.id)")
        .expect("reconnect is transparent for reads");
    assert!(rc.reconnects() >= 2);

    // Kill the server with the connection open: an in-flight write's
    // outcome is unknown, so the client must refuse to guess.
    handle.shutdown();
    join.join().expect("server thread").expect("graceful drain");
    let err = rc
        .query("append to r (id = 2, seq = 0)")
        .expect_err("server is gone");
    assert!(
        matches!(err, Error::RetryUnsafe(_) | Error::ShuttingDown),
        "lost write must be RetryUnsafe (or a typed drain refusal), \
         got: {err}"
    );

    // The idempotent read retries the dial and, with nobody
    // listening, ends in a transport error — never a hang.
    let err = rc
        .query("range of c is r\nretrieve (c.id)")
        .expect_err("nobody is listening");
    assert!(
        matches!(err, Error::Io(_) | Error::Protocol(_)),
        "exhausted reconnects must surface the transport error, \
         got: {err}"
    );
}

#[test]
fn server_rides_out_fault_windows_and_audits_clean() {
    let dir = fresh_dir("chaos-accept");
    let plan = FaultPlan::new(None);
    let disk = FaultDisk::new(
        Box::new(FileDisk::open(&dir).expect("open page files")),
        plan.clone(),
    );
    let log = FaultLog::new(
        Box::new(FileLog::open(dir.join("wal.tdbms")).expect("open wal")),
        plan.clone(),
    );
    let mut db = Database::open_durable_on(
        Box::new(disk),
        Box::new(log),
        Some(dir.clone()),
    )
    .expect("durable open");
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(16));
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
    })
    .expect("database is durable");

    let server = Server::bind(
        Engine::new(db),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let join = std::thread::spawn(move || server.run());

    let mut rc = ReconnectClient::new(
        addr.clone(),
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            seed: 7,
        },
    );
    rc.query(CREATE).expect("create over the wire");
    let mut acked = Vec::new();
    for id in 1..=20 {
        rc.query(&format!("append to r (id = {id}, seq = 0)"))
            .expect("append before the first window");
        acked.push(id);
    }

    // Window 1: disk full. Writes fail typed; reads of acked tuples
    // keep answering; a mid-window connection drop is ridden out.
    plan.set_enospc(true);
    for id in 21..=25 {
        if id == 23 {
            rc.drop_connection();
        }
        match rc.query(&format!("append to r (id = {id}, seq = 0)")) {
            Ok(_) => acked.push(id),
            // Degraded: refused up front. RetryUnsafe: the statement
            // applied but its batch fsync failed — outcome unknown,
            // so it must not join the acked set.
            Err(Error::Degraded { .. } | Error::RetryUnsafe(_)) => {}
            Err(e) => panic!("untyped failure in the window: {e}"),
        }
        let out = rc
            .query("range of c is r\nretrieve (c.id) where c.id = 1")
            .expect("reads serve during the window");
        assert_eq!(out.rows.len(), 1, "acked tuple stays visible");
    }
    plan.set_enospc(false);

    // Window 2: failing fsync, same contract.
    plan.set_fsync_fail(true);
    match rc.query("append to r (id = 26, seq = 0)") {
        Ok(_) => acked.push(26),
        Err(Error::Degraded { .. } | Error::RetryUnsafe(_)) => {}
        Err(e) => panic!("untyped failure in the window: {e}"),
    }
    plan.set_fsync_fail(false);

    // Writes resume (the first attempts may catch the re-arm).
    let mut resumed = false;
    for attempt in 0..50 {
        match rc.query("append to r (id = 100, seq = 0)") {
            Ok(_) => {
                acked.push(100);
                resumed = true;
                break;
            }
            Err(Error::Degraded { .. }) => {
                std::thread::sleep(Duration::from_millis(5 + attempt))
            }
            Err(e) => panic!("untyped failure after the windows: {e}"),
        }
    }
    assert!(resumed, "writes must resume once the faults lift");
    for id in 101..=110 {
        rc.query(&format!("append to r (id = {id}, seq = 0)"))
            .expect("healthy writes after recovery");
        acked.push(id);
    }

    // Every acked append is still readable over the wire.
    let out = rc
        .query("range of c is r\nretrieve (c.id)")
        .expect("verification retrieve");
    let present: std::collections::HashSet<i64> = out
        .rows
        .iter()
        .filter_map(|row| match row.first() {
            Some(Value::Int(id)) => Some(*id),
            _ => None,
        })
        .collect();
    for id in &acked {
        assert!(present.contains(id), "acked id={id} lost");
    }

    // Graceful drain, no panics caught, and a clean audit.
    Client::connect(addr.as_str())
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("remote shutdown");
    let stats =
        join.join().expect("server thread").expect("graceful drain");
    assert_eq!(stats.panics_caught, 0);

    let mut audit =
        tdbms_check::CheckedDb::open(&dir).expect("reopen for audit");
    let report = audit.check().expect("audit run");
    assert!(report.is_clean(), "audit dirty:\n{}", report.render());
}
