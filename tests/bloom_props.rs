//! Seeded property suite for the overflow-chain Bloom filters.
//!
//! The filter's contract is asymmetric and both halves are load-bearing
//! for the paper reproduction: a false *negative* would skip a chain
//! walk that holds real versions — a wrong answer — while a high false
//! *positive* rate would silently erase the optimization the counters
//! claim. So: zero false negatives over arbitrary key populations, and
//! a measured false-positive rate comfortably under the ≈1 % the
//! 10-bits-per-key / 7-probe sizing is designed for.

use tdbms_prop::{check, Gen};
use tdbms_storage::Bloom;

/// Arbitrary byte-string keys (the filter sees raw key bytes: i4 ids,
/// c16 names, composite widths — length variety matters).
fn arbitrary_key(g: &mut Gen) -> Vec<u8> {
    g.vec(1..17, |g| g.range(0u64..256) as u8)
}

#[test]
fn added_keys_are_never_reported_absent() {
    check("bloom_no_false_negatives", 48, |g| {
        let n = g.range(1usize..1500);
        let seed = g.rng().next_u64();
        let undersized = g.bool();
        // An undersized filter (sized for a tenth of the population)
        // may approach an all-ones bit array, but even saturated it
        // must only err toward "maybe".
        let bloom =
            Bloom::sized_for(if undersized { n / 10 } else { n }, seed);
        let keys: Vec<Vec<u8>> = (0..n).map(|_| arbitrary_key(g)).collect();
        for k in &keys {
            bloom.add(k);
        }
        for k in &keys {
            assert!(
                bloom.maybe_contains(k),
                "false negative for key {k:?} (n={n}, seed={seed:#x}, \
                 undersized={undersized})"
            );
        }
    });
}

#[test]
fn false_positive_rate_stays_under_the_sizing_bound() {
    check("bloom_fp_rate", 16, |g| {
        let n = g.range(200usize..2000);
        let seed = g.rng().next_u64();
        let bloom = Bloom::sized_for(n, seed);
        // Added and probed populations are disjoint by construction:
        // adds are the even ids, probes the odd.
        for i in 0..n as i64 {
            bloom.add(&(i * 2).to_le_bytes());
        }
        let probes = 4000i64;
        let fp = (0..probes)
            .filter(|i| bloom.maybe_contains(&(i * 2 + 1).to_le_bytes()))
            .count();
        // Design point is <1 %; 2.5 % is many standard deviations of
        // slack over 4000 probes, so a failure means the hashing or
        // sizing broke, not bad luck.
        assert!(
            fp * 40 < probes as usize,
            "false-positive rate {fp}/{probes} exceeds 2.5% \
             (n={n}, seed={seed:#x})"
        );
    });
}

#[test]
fn filter_verdicts_are_deterministic_for_a_seed() {
    check("bloom_determinism", 24, |g| {
        let n = g.range(1usize..300);
        let seed = g.rng().next_u64();
        let keys: Vec<Vec<u8>> = (0..n).map(|_| arbitrary_key(g)).collect();
        let a = Bloom::sized_for(n, seed);
        let b = Bloom::sized_for(n, seed);
        for k in &keys {
            a.add(k);
            b.add(k);
        }
        for probe in 0..2000i64 {
            let k = probe.to_le_bytes();
            assert_eq!(
                a.maybe_contains(&k),
                b.maybe_contains(&k),
                "two identically seeded filters disagree on {probe}"
            );
        }
    });
}
