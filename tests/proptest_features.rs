//! Property tests for the extension features: aggregates against a naive
//! model, `copy` round-trips, and catalog persistence under random
//! schemas.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tdbms::{Database, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grouped aggregates agree with a naive recomputation for arbitrary
    /// data.
    #[test]
    fn aggregates_agree_with_naive_model(
        rows in prop::collection::vec((0i32..6, -1000i32..1000), 1..80)
    ) {
        let mut db = Database::in_memory();
        db.execute("create static t (grp = i4, x = i4)").unwrap();
        for (g, x) in &rows {
            db.execute(&format!("append to t (grp = {g}, x = {x})")).unwrap();
        }
        db.execute("range of v is t").unwrap();
        let out = db
            .execute(
                "retrieve (v.grp, n = count(v.x), s = sum(v.x), \
                 lo = min(v.x), hi = max(v.x), m = avg(v.x))",
            )
            .unwrap();

        let mut model: BTreeMap<i32, Vec<i64>> = BTreeMap::new();
        for (g, x) in &rows {
            model.entry(*g).or_default().push(*x as i64);
        }
        prop_assert_eq!(out.rows().len(), model.len());
        for row in out.rows() {
            let g = row[0].as_int().unwrap() as i32;
            let xs = model.get(&g).expect("group exists in model");
            prop_assert_eq!(row[1].as_int().unwrap(), xs.len() as i64);
            prop_assert_eq!(
                row[2].as_int().unwrap(),
                xs.iter().sum::<i64>()
            );
            prop_assert_eq!(
                row[3].as_int().unwrap(),
                *xs.iter().min().unwrap()
            );
            prop_assert_eq!(
                row[4].as_int().unwrap(),
                *xs.iter().max().unwrap()
            );
            let avg = xs.iter().sum::<i64>() as f64 / xs.len() as f64;
            let got = match &row[5] {
                Value::Float(f) => *f,
                other => panic!("avg should be float, got {other}"),
            };
            prop_assert!((got - avg).abs() < 1e-9);
        }
    }

    /// `copy into` followed by `copy from` reproduces the relation
    /// exactly, including version history, for arbitrary contents.
    #[test]
    fn copy_roundtrips_arbitrary_history(
        rows in prop::collection::vec(
            // Printable payloads without quote/backslash (TQuel string
            // escapes) and without edge whitespace (the blank-padded
            // c-domain trims it).
            (1i32..20, -100i32..100, "[a-z0-9,.;:']{0,10}"),
            1..40,
        ),
        updates in prop::collection::vec((1i32..20, -100i32..100), 0..15),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tdbms-prop-copy-{}-{:x}",
            std::process::id(),
            rows.len() * 1000 + updates.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.tq");
        let path_s = path.to_str().unwrap();

        let mut db = Database::in_memory();
        db.execute("create temporal interval t (id = i4, x = i4, note = c12)")
            .unwrap();
        db.execute("range of v is t").unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (id, x, note) in &rows {
            if !seen.insert(*id) {
                continue;
            }
            // Escape quotes for the TQuel literal.
            let note: String = note.replace('"', "'");
            db.execute(&format!(
                r#"append to t (id = {id}, x = {x}, note = "{}")"#,
                note.trim()
            ))
            .unwrap();
        }
        for (id, x) in &updates {
            db.execute(&format!("replace v (x = {x}) where v.id = {id}"))
                .unwrap();
        }
        db.execute(&format!(r#"copy t into "{path_s}""#)).unwrap();

        let mut db2 = Database::in_memory();
        db2.clock().advance_to(db.clock().now());
        db2.execute("create temporal interval t (id = i4, x = i4, note = c12)")
            .unwrap();
        db2.execute(&format!(r#"copy t from "{path_s}""#)).unwrap();
        db2.execute("range of v is t").unwrap();

        prop_assert_eq!(
            db.relation_meta("t").unwrap().tuple_count,
            db2.relation_meta("t").unwrap().tuple_count
        );
        // Every version (id, x, valid_from, valid_to, tx times) matches.
        let dump = |d: &mut Database| -> Vec<Vec<String>> {
            let out = d
                .execute(
                    "retrieve (v.id, v.x, v.note, v.valid_from, v.valid_to, \
                     v.transaction_start, v.transaction_stop) \
                     as of \"beginning\" through \"forever\"",
                )
                .unwrap();
            let mut rows: Vec<Vec<String>> = out
                .rows()
                .iter()
                .map(|r| r.iter().map(|v| v.to_string()).collect())
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(dump(&mut db), dump(&mut db2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A file-backed database reopened after arbitrary DDL/DML reports the
    /// same catalog state and answers the same current-state query.
    #[test]
    fn persistence_roundtrips_random_workloads(
        n_rels in 1usize..4,
        rows in prop::collection::vec((0i32..30, -50i32..50), 1..30),
        seed in 0u64..1000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tdbms-prop-persist-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let classes = ["static", "rollback", "historical", "temporal"];
        let mut expected: Vec<(String, u64)> = Vec::new();
        {
            let mut db = Database::open(&dir).unwrap();
            for r in 0..n_rels {
                let class = classes[(seed as usize + r) % classes.len()];
                let name = format!("r{r}");
                db.execute(&format!(
                    "create {class} interval {name} (id = i4, x = i4)"
                ))
                .unwrap();
                for (i, (id, x)) in rows.iter().enumerate() {
                    if i % n_rels == r {
                        db.execute(&format!(
                            "append to {name} (id = {id}, x = {x})"
                        ))
                        .unwrap();
                    }
                }
                if seed % 2 == 0 {
                    db.execute(&format!(
                        "modify {name} to hash on id where fillfactor = 50"
                    ))
                    .unwrap();
                }
                expected.push((
                    name.clone(),
                    db.relation_meta(&name).unwrap().tuple_count,
                ));
            }
        }
        {
            let db = Database::open(&dir).unwrap();
            for (name, count) in &expected {
                let meta = db.relation_meta(name).unwrap();
                prop_assert_eq!(meta.tuple_count, *count, "{}", name);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
