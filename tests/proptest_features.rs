//! Property tests for the extension features: aggregates against a naive
//! model, `copy` round-trips, and catalog persistence under random
//! schemas.

use std::collections::BTreeMap;
use tdbms::{Database, Value};
use tdbms_prop::{check, Gen};

/// Grouped aggregates agree with a naive recomputation for arbitrary
/// data.
#[test]
fn aggregates_agree_with_naive_model() {
    check("aggregates_agree_with_naive_model", 32, |g: &mut Gen| {
        let rows =
            g.vec(1..80, |g| (g.range(0i32..6), g.range(-1000i32..1000)));
        let mut db = Database::in_memory();
        db.execute("create static t (grp = i4, x = i4)").unwrap();
        for (grp, x) in &rows {
            db.execute(&format!("append to t (grp = {grp}, x = {x})"))
                .unwrap();
        }
        db.execute("range of v is t").unwrap();
        let out = db
            .execute(
                "retrieve (v.grp, n = count(v.x), s = sum(v.x), \
                 lo = min(v.x), hi = max(v.x), m = avg(v.x))",
            )
            .unwrap();

        let mut model: BTreeMap<i32, Vec<i64>> = BTreeMap::new();
        for (grp, x) in &rows {
            model.entry(*grp).or_default().push(*x as i64);
        }
        assert_eq!(out.rows().len(), model.len());
        for row in out.rows() {
            let grp = row[0].as_int().unwrap() as i32;
            let xs = model.get(&grp).expect("group exists in model");
            assert_eq!(row[1].as_int().unwrap(), xs.len() as i64);
            assert_eq!(row[2].as_int().unwrap(), xs.iter().sum::<i64>());
            assert_eq!(row[3].as_int().unwrap(), *xs.iter().min().unwrap());
            assert_eq!(row[4].as_int().unwrap(), *xs.iter().max().unwrap());
            let avg = xs.iter().sum::<i64>() as f64 / xs.len() as f64;
            let got = match &row[5] {
                Value::Float(f) => *f,
                other => panic!("avg should be float, got {other}"),
            };
            assert!((got - avg).abs() < 1e-9);
        }
    });
}

/// One generated `copy` round-trip case; also the body of the recorded
/// regression below. Payloads are printable without quote/backslash
/// (TQuel string escapes) and get trimmed (the blank-padded c-domain
/// trims edge whitespace).
fn copy_roundtrip_case(
    label: &str,
    rows: &[(i32, i32, String)],
    updates: &[(i32, i32)],
) {
    let dir =
        tdbms_kernel::tmpdir::fresh_dir(&format!("prop-copy-{label}"));
    let path = dir.join("data.tq");
    let path_s = path.to_str().unwrap();

    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, x = i4, note = c12)")
        .unwrap();
    db.execute("range of v is t").unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for (id, x, note) in rows {
        if !seen.insert(*id) {
            continue;
        }
        // quote_str escapes `"` and `\` the way the lexer expects.
        db.execute(&format!(
            "append to t (id = {id}, x = {x}, note = {})",
            tdbms::tquel::printer::quote_str(note.trim())
        ))
        .unwrap();
    }
    for (id, x) in updates {
        db.execute(&format!("replace v (x = {x}) where v.id = {id}"))
            .unwrap();
    }
    db.execute(&format!(r#"copy t into "{path_s}""#)).unwrap();

    let mut db2 = Database::in_memory();
    db2.clock().advance_to(db.clock().now());
    db2.execute("create temporal interval t (id = i4, x = i4, note = c12)")
        .unwrap();
    db2.execute(&format!(r#"copy t from "{path_s}""#)).unwrap();
    db2.execute("range of v is t").unwrap();

    assert_eq!(
        db.relation_meta("t").unwrap().tuple_count,
        db2.relation_meta("t").unwrap().tuple_count
    );
    // Every version (id, x, valid_from, valid_to, tx times) matches.
    let dump = |d: &mut Database| -> Vec<Vec<String>> {
        let out = d
            .execute(
                "retrieve (v.id, v.x, v.note, v.valid_from, v.valid_to, \
                 v.transaction_start, v.transaction_stop) \
                 as of \"beginning\" through \"forever\"",
            )
            .unwrap();
        let mut rows: Vec<Vec<String>> = out
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(dump(&mut db), dump(&mut db2));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `copy into` followed by `copy from` reproduces the relation
/// exactly, including version history, for arbitrary contents.
#[test]
fn copy_roundtrips_arbitrary_history() {
    check("copy_roundtrips_arbitrary_history", 32, |g: &mut Gen| {
        let rows = g.vec(1..40, |g| {
            (
                g.range(1i32..20),
                g.range(-100i32..100),
                g.string_from(
                    b"abcdefghijklmnopqrstuvwxyz0123456789,.;:'",
                    0..11,
                ),
            )
        });
        let updates =
            g.vec(0..15, |g| (g.range(1i32..20), g.range(-100i32..100)));
        let label = format!("{:x}", g.seed());
        copy_roundtrip_case(&label, &rows, &updates);
    });
}

/// Recorded proptest counterexample (tests/proptest_features.proptest-
/// regressions): `rows = [(1, 0, "\\")]`, `updates = []`. A note
/// consisting of a single backslash must survive the append → copy-out
/// → copy-in pipeline verbatim. (Root cause was TQuel quoting: the
/// lexer reads `\x` as an escape but nothing escaped `\` on the way
/// out, so the literal `"\"` was unterminated; `printer::quote_str` is
/// the fix.)
#[test]
fn regression_copy_roundtrip_backslash_note() {
    copy_roundtrip_case(
        "regression-backslash",
        &[(1, 0, "\\".into())],
        &[],
    );
}

/// A file-backed database reopened after arbitrary DDL/DML reports the
/// same catalog state and answers the same current-state query.
#[test]
fn persistence_roundtrips_random_workloads() {
    check(
        "persistence_roundtrips_random_workloads",
        32,
        |g: &mut Gen| {
            let n_rels = g.range(1usize..4);
            let rows =
                g.vec(1..30, |g| (g.range(0i32..30), g.range(-50i32..50)));
            let seed = g.range(0u64..1000);
            let dir = tdbms_kernel::tmpdir::fresh_dir(&format!(
                "prop-persist-{seed}"
            ));

            let classes = ["static", "rollback", "historical", "temporal"];
            let mut expected: Vec<(String, u64)> = Vec::new();
            {
                let mut db = Database::open(&dir).unwrap();
                for r in 0..n_rels {
                    let class =
                        classes[(seed as usize + r) % classes.len()];
                    let name = format!("r{r}");
                    db.execute(&format!(
                        "create {class} interval {name} (id = i4, x = i4)"
                    ))
                    .unwrap();
                    for (i, (id, x)) in rows.iter().enumerate() {
                        if i % n_rels == r {
                            db.execute(&format!(
                                "append to {name} (id = {id}, x = {x})"
                            ))
                            .unwrap();
                        }
                    }
                    if seed.is_multiple_of(2) {
                        db.execute(&format!(
                        "modify {name} to hash on id where fillfactor = 50"
                    ))
                        .unwrap();
                    }
                    expected.push((
                        name.clone(),
                        db.relation_meta(&name).unwrap().tuple_count,
                    ));
                }
            }
            {
                let db = Database::open(&dir).unwrap();
                for (name, count) in &expected {
                    let meta = db.relation_meta(name).unwrap();
                    assert_eq!(meta.tuple_count, *count, "{name}");
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        },
    );
}
