//! Fuzz property tests for the TQuel front end: on *any* input — raw
//! byte soup or a valid program mangled by truncation, splicing, and
//! byte swaps — the lexer and parser must return `Ok` or `Err`, never
//! panic, hang, or index out of bounds. Corrupt statement text is the
//! query-language face of the corruption-defense work: damaged inputs
//! must surface as errors, not crashes.
//!
//! Deterministic and seed-replayable like every property test here:
//! `TDBMS_PROP_SEED` pins the failing case, `TDBMS_PROP_CASES` scales
//! the budget.

use tdbms::tquel::{parse_program, token};
use tdbms_prop::{check, Gen};

/// A corpus of well-formed programs covering every statement kind; the
/// mutation arm starts from these so the fuzzer spends its budget near
/// the grammar instead of dying in the lexer.
const CORPUS: &[&str] = &[
    "create temporal interval emp (name = c20, salary = i4)",
    "create static event log (code = i1, note = c8)",
    "range of e is emp",
    "append to emp (name = \"merrie\", salary = 11000)",
    "delete e where e.salary > 20000",
    "replace e (salary = e.salary + 1000) where e.name = \"tom\"",
    "retrieve (e.name, e.salary) valid from start of e to end of e \
     where e.salary >= 10000 and e.name != \"none\"",
    "retrieve into rich (e.name) where e.salary > 99999",
    "modify emp to hash on name where fillfactor = 75",
    "modify emp to isam on salary where fillfactor = 100",
    "destroy emp",
    "index on emp is sal_ix (salary)",
    "range of m is emp retrieve (m.name) when m overlap \
     \"1986-01-01\" as of \"1986-06-01\" through \"1986-12-31\"",
];

/// Pure byte soup: mostly printable, salted with NULs, high bytes, and
/// multi-byte UTF-8 so both the lexer's byte handling and its char
/// boundaries get exercised.
fn arb_soup(g: &mut Gen) -> String {
    let n = g.range(0..200usize);
    let mut s = String::new();
    for _ in 0..n {
        match g.range(0u8..8) {
            0 => s.push('\0'),
            1 => s.push(g.range(0x80u32..0x2FFF).try_into().unwrap_or('¿')),
            2 => s.push(*g.pick(&['"', '\\', '\n', '\t', '.', '=', '('])),
            _ => s.push(g.range(0x20u8..0x7F) as char),
        }
    }
    s
}

/// A valid program, mangled: truncated at a random char boundary, with
/// random printable bytes spliced in, or with two regions swapped.
fn arb_mangled(g: &mut Gen) -> String {
    let mut s: String = (0..g.range(1..4usize))
        .map(|_| *g.pick(CORPUS))
        .collect::<Vec<_>>()
        .join("\n");
    for _ in 0..g.range(1..5usize) {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            break;
        }
        match g.range(0u8..3) {
            // Truncate.
            0 => {
                let at = g.range(0..chars.len());
                s = chars[..at].iter().collect();
            }
            // Splice garbage.
            1 => {
                let at = g.range(0..=chars.len());
                let garbage = arb_soup(g);
                let mut t: String = chars[..at].iter().collect();
                t.extend(garbage.chars().take(10));
                t.extend(&chars[at..]);
                s = t;
            }
            // Swap two halves around a pivot.
            _ => {
                let at = g.range(0..chars.len());
                let mut t: String = chars[at..].iter().collect();
                t.extend(&chars[..at]);
                s = t;
            }
        }
    }
    s
}

#[test]
fn lexer_and_parser_never_panic_on_arbitrary_input() {
    check("tquel_fuzz_soup", 400, |g| {
        let src = arb_soup(g);
        // Outcome unconstrained; the property is "returns".
        let _ = token::lex(&src);
        let _ = parse_program(&src);
    });
}

#[test]
fn parser_never_panics_on_mangled_programs() {
    check("tquel_fuzz_mangled", 400, |g| {
        let src = arb_mangled(g);
        let _ = parse_program(&src);
    });
}

#[test]
fn the_corpus_itself_parses() {
    for src in CORPUS {
        parse_program(src).unwrap_or_else(|e| {
            panic!("corpus program must parse: {src:?}: {e}")
        });
    }
}
