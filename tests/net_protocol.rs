//! The wire-protocol survival suite.
//!
//! The server's hard promise is that **no byte stream a client can
//! send may panic it**. This suite attacks that promise from both
//! ends:
//!
//! * **Hostile statements** — well-framed requests whose statement
//!   text historically panicked the embedded engine (deep expression
//!   nesting, `-(i64::MIN)`, `i64::MIN mod -1`) or should be refused
//!   by policy (`copy` on a network session). Each must come back as
//!   a typed error on a connection that keeps working.
//! * **Protocol garbage** — truncated frames, oversized length
//!   prefixes, random payload bytes, and mid-frame disconnects. Each
//!   must produce a typed `Protocol` error or a dropped connection.
//! * **Guardrails** — connection cap (typed `Busy`, never a hang),
//!   per-query timeout, and row limits.
//! * **Graceful shutdown** — a durable server under load drains,
//!   checkpoints, and leaves a database `tdbms-check` audits clean.
//!
//! After every storm the server must report `panics_caught == 0`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tdbms::{Database, Engine};
use tdbms_kernel::{Error, Prng, Value};
use tdbms_net::{Client, Server, ServerConfig, ServerStats};

/// A server running on an in-memory database in a background thread.
/// Keeps a clone of the engine so tests can assert on `LockStats`
/// from outside the server.
struct TestServer {
    addr: std::net::SocketAddr,
    engine: Engine,
    handle: tdbms_net::ServerHandle,
    join: Option<std::thread::JoinHandle<ServerStats>>,
}

impl TestServer {
    fn start(cfg: ServerConfig) -> TestServer {
        let engine = Engine::new(Database::in_memory());
        Self::start_on(engine, cfg)
    }

    fn start_on(engine: Engine, cfg: ServerConfig) -> TestServer {
        let server = Server::bind(engine.clone(), "127.0.0.1:0", cfg)
            .expect("bind ephemeral");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let join =
            std::thread::spawn(move || server.run().expect("server run"));
        TestServer {
            addr,
            engine,
            handle,
            join: Some(join),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect")
    }

    /// Shut down and return the final counters.
    fn stop(mut self) -> ServerStats {
        self.handle.shutdown();
        self.join
            .take()
            .expect("server thread")
            .join()
            .expect("server thread panicked")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn seed_relation(c: &mut Client) {
    c.query("create temporal interval t (id = i4, seq = i4)")
        .expect("create");
    for id in 1..=32 {
        c.query(&format!("append to t (id = {id}, seq = 0)"))
            .expect("seed append");
    }
}

// ---- basic round trips -------------------------------------------------

#[test]
fn query_round_trip_over_tcp() {
    let srv = TestServer::start(ServerConfig::default());
    let mut c = srv.client();
    c.ping().expect("ping");
    seed_relation(&mut c);
    let reply = c
        .query("range of q is t\nretrieve (q.id) where q.id = 7")
        .expect("retrieve");
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(reply.rows[0][0], Value::Int(7));
    assert_eq!(reply.columns[0].0, "id");
    let stats = srv.stop();
    assert_eq!(stats.panics_caught, 0);
    assert!(stats.queries >= 34);
}

#[test]
fn two_clients_see_each_others_commits() {
    let srv = TestServer::start(ServerConfig::default());
    let mut a = srv.client();
    let mut b = srv.client();
    seed_relation(&mut a);
    a.query("append to t (id = 777, seq = 9)").expect("append");
    let reply = b
        .query("range of q is t\nretrieve (q.seq) where q.id = 777")
        .expect("cross-session read");
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(reply.rows[0][0], Value::Int(9));
    assert_eq!(srv.stop().panics_caught, 0);
}

#[test]
fn stats_request_reports_lock_and_plan_cache_counters() {
    let srv = TestServer::start(ServerConfig::default());
    let mut c = srv.client();
    seed_relation(&mut c);
    c.query("range of q is t").expect("range");
    let hot = "retrieve (q.id) where q.id = 7";
    for _ in 0..20 {
        c.query(hot).expect("hot retrieve");
    }
    let stats = c.stats().expect("stats");
    // The 19 repeats of the hot statement are cache hits; setup
    // statements are all distinct texts, i.e. misses.
    assert!(
        stats.plan_hits >= 19,
        "expected >=19 plan-cache hits, got {}",
        stats.plan_hits
    );
    assert!(stats.plan_misses >= 1);
    assert!(
        stats.snapshot_reads >= 20,
        "hot retrieves should be snapshot reads, got {}",
        stats.snapshot_reads
    );
    // Wire counters must agree with the engine's own view.
    let locks = srv.engine.lock_stats();
    assert_eq!(stats.shared, locks.shared);
    assert_eq!(stats.exclusive, locks.exclusive);
    assert_eq!(srv.stop().panics_caught, 0);
}

// ---- hostile statements (the panic-path regression sweep) --------------

/// Every statement here either panicked some layer of the engine
/// before the sweep or exercises a refusal policy. All must come back
/// as typed errors, on a connection that still answers the next query.
#[test]
fn hostile_statements_get_typed_errors_not_a_dead_server() {
    let srv = TestServer::start(ServerConfig::default());
    let mut c = srv.client();
    seed_relation(&mut c);

    let deep_parens = format!(
        "range of q is t\nretrieve (q.id) where {}q.id = 1{}",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    let deep_nots = format!(
        "range of q is t\nretrieve (q.id) where {} q.id = 1",
        "not ".repeat(60_000)
    );
    let hostile: &[&str] = &[
        // Parser recursion: process-killing stack overflows pre-sweep.
        &deep_parens,
        &deep_nots,
        // Arithmetic edges: debug-overflow panics pre-sweep.
        "range of q is t\nretrieve (q.id) \
         where q.id = - -9223372036854775808",
        "range of q is t\nretrieve (q.id) \
         where q.id = -9223372036854775808 mod -1",
        // Ordinary typed errors that must stay typed over the wire.
        "range of q is t\nretrieve (q.id) where q.id = 1 / 0",
        "retrieve (ghost.id) from ghost in no_such_relation",
        "append to t (id = \"not a number\", seq = 0)",
        "complete nonsense ( [ } syntax",
        "",
    ];
    for stmt in hostile {
        let err = c
            .query(stmt)
            .expect_err("hostile statement must be an error");
        assert!(
            !matches!(err, Error::Protocol(_)),
            "hostile statement must fail at the query layer, \
             not the protocol layer: {err}"
        );
        // The connection survives and still serves real queries.
        let ok = c
            .query("range of q is t\nretrieve (q.id) where q.id = 3")
            .expect("connection must survive a hostile statement");
        assert_eq!(ok.rows.len(), 1);
    }

    // `copy` is denied by default: it reads/writes server-local files.
    let err = c
        .query("copy t to \"/tmp/exfil.dat\"")
        .expect_err("copy must be refused on a network session");
    assert!(
        matches!(err, Error::NotApplicable(_) | Error::Parse { .. }),
        "copy refusal must be typed, got: {err}"
    );

    let stats = srv.stop();
    assert_eq!(
        stats.panics_caught, 0,
        "a hostile statement reached a panic"
    );
}

// ---- protocol garbage --------------------------------------------------

/// Raw-socket storm: random garbage, truncated frames, huge length
/// prefixes, and mid-frame disconnects. The server must drop or
/// error every one without panicking, and keep serving good clients.
#[test]
fn protocol_fuzz_storm_never_panics_the_server() {
    let srv = TestServer::start(ServerConfig::default());
    {
        let mut c = srv.client();
        seed_relation(&mut c);
    }

    let mut prng = Prng::seed_from_u64(0xF00D_F00D_CAFE_0007);
    for round in 0..64u64 {
        let mut s = TcpStream::connect(srv.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        match round % 4 {
            0 => {
                // Pure garbage bytes, no valid framing.
                let n = 1 + (prng.next_u64() % 256) as usize;
                let junk: Vec<u8> =
                    (0..n).map(|_| prng.next_u64() as u8).collect();
                let _ = s.write_all(&junk);
            }
            1 => {
                // Oversized length prefix (up to u32::MAX).
                let evil =
                    (1u64 << 20) as u32 + 1 + prng.next_u64() as u32 % 1024;
                let _ = s.write_all(&evil.to_le_bytes());
                let _ = s.write_all(b"moo");
            }
            2 => {
                // A truncated prefix of a valid request.
                let full = tdbms_net::wire::encode_request(
                    &tdbms_net::Request::Query {
                        stmt: "retrieve (q.id)".into(),
                        timeout_ms: 0,
                        max_rows: 0,
                    },
                );
                let mut framed = (full.len() as u32).to_le_bytes().to_vec();
                framed.extend_from_slice(&full);
                let cut =
                    1 + (prng.next_u64() as usize) % (framed.len() - 1);
                let _ = s.write_all(&framed[..cut]);
            }
            _ => {
                // Mid-frame disconnect: claim a big frame, send a
                // little, slam the connection.
                let _ = s.write_all(&4096u32.to_le_bytes());
                let _ = s.write_all(&[0u8; 16]);
            }
        }
        // Whatever the server does (typed error frame or silent
        // drop), the read must terminate.
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        drop(s);
    }

    // A good client still gets service after the storm — including a
    // write, which needs the exclusive commit lock: if any storm
    // connection had leaked a Session's shared lock, this would hang.
    let mut c = srv.client();
    let reply = c
        .query("range of q is t\nretrieve (q.id) where q.id = 5")
        .expect("server must survive the storm");
    assert_eq!(reply.rows.len(), 1);
    let before = srv.engine.lock_stats();
    c.query("append to t (id = 999, seq = 1)")
        .expect("writes still work after the storm");
    let after = srv.engine.lock_stats();
    assert!(
        after.exclusive > before.exclusive,
        "the post-storm write never took the exclusive lock: \
         {before:?} -> {after:?}"
    );
    drop(c);

    let stats = srv.stop();
    assert_eq!(stats.panics_caught, 0, "the storm reached a panic");
    assert!(
        stats.protocol_errors > 0,
        "the storm should have registered protocol errors"
    );
}

// ---- guardrails --------------------------------------------------------

#[test]
fn connection_cap_returns_typed_busy_never_hangs() {
    let cfg = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let srv = TestServer::start(cfg);
    let mut first = srv.client();
    first.ping().expect("first connection admitted");

    // The second connection must be rejected with Busy promptly.
    let mut second = srv.client();
    let err = second
        .ping()
        .expect_err("second connection must be rejected");
    assert!(
        matches!(err, Error::Busy | Error::Protocol(_)),
        "expected Busy (or a dropped connection), got: {err}"
    );

    // Once the first disconnects, a new client is admitted.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut again = srv.client();
        if again.ping().is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = srv.stop();
    assert!(stats.busy_rejections >= 1);
    assert_eq!(stats.panics_caught, 0);
}

#[test]
fn per_query_timeout_fires_as_typed_error() {
    let srv = TestServer::start(ServerConfig::default());
    let mut c = srv.client();
    c.query("create temporal interval big (id = i4, seq = i4)")
        .expect("create");
    for id in 1..=48 {
        c.query(&format!("append to big (id = {id}, seq = 0)"))
            .expect("append");
    }
    // A 4-way cross product (48^4 ≈ 5.3M candidate rows) cannot
    // finish in 1ms; the guard must fire as a typed Timeout.
    let err = c
        .query_with(
            "range of a is big\nrange of b is big\n\
             range of c is big\nrange of d is big\n\
             retrieve (a.id) \
             where a.seq = b.seq and b.seq = c.seq and c.seq = d.seq",
            1,
            0,
        )
        .expect_err("1ms budget must time out");
    assert!(
        matches!(err, Error::Timeout { .. }),
        "expected Timeout, got: {err}"
    );
    // Connection and server still fine.
    let ok = c
        .query("range of q is big\nretrieve (q.id) where q.id = 1")
        .expect("connection survives a timeout");
    assert_eq!(ok.rows.len(), 1);
    assert_eq!(srv.stop().panics_caught, 0);
}

#[test]
fn row_limit_fires_as_typed_error() {
    let srv = TestServer::start(ServerConfig::default());
    let mut c = srv.client();
    seed_relation(&mut c);
    let err = c
        .query_with("range of q is t\nretrieve (q.id)", 0, 5)
        .expect_err("32 rows over a 5-row cap must fail");
    match err {
        Error::LimitExceeded { what, limit } => {
            assert_eq!(what, "rows");
            assert_eq!(limit, 5);
        }
        other => panic!("expected LimitExceeded, got: {other}"),
    }
    // At or under the cap succeeds.
    let ok = c
        .query_with("range of q is t\nretrieve (q.id) where q.id < 5", 0, 5)
        .expect("under-cap retrieve");
    assert_eq!(ok.rows.len(), 4);
    assert_eq!(srv.stop().panics_caught, 0);
}

// ---- graceful shutdown -------------------------------------------------

/// A durable server with clients mid-workload shuts down cleanly: the
/// wire `Shutdown` is acknowledged, workers drain, the exit checkpoint
/// lands, and `tdbms-check` audits the directory clean.
#[test]
fn graceful_shutdown_leaves_an_audit_clean_database() {
    let dir = tempdir();
    let db = Database::open_durable(&dir).expect("open durable");
    let engine = Engine::new(db);
    let mut srv = TestServer::start_on(engine, ServerConfig::default());

    let mut c = srv.client();
    seed_relation(&mut c);

    // Background writers mid-flight while shutdown arrives.
    let addr = srv.addr;
    let writers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                for i in 0..200 {
                    let id = 1000 + w * 1000 + i;
                    if c.query(&format!("append to t (id = {id}, seq = 1)"))
                        .is_err()
                    {
                        // ShuttingDown / dropped connection: expected
                        // once the drain begins.
                        break;
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));

    c.shutdown_server().expect("shutdown acknowledged");
    for w in writers {
        w.join().expect("writer thread");
    }
    let stats = srv
        .join
        .take()
        .expect("server thread")
        .join()
        .expect("server run");
    assert_eq!(stats.panics_caught, 0);

    // The checkpointed directory must audit clean.
    let report = tdbms_check::CheckedDb::open(&dir)
        .expect("reopen for audit")
        .check()
        .expect("audit runs");
    assert!(
        report.is_clean(),
        "post-shutdown audit found problems:\n{}",
        report.render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn tempdir() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    let unique = format!(
        "tdbms-net-test-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    );
    p.push(unique);
    std::fs::create_dir_all(&p).expect("create tempdir");
    p
}
