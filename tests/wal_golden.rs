//! Golden test: durability must not change the paper's numbers.
//!
//! The WAL lives *beside* the paper's storage engine — page images are
//! staged, logged, and materialized, but never re-organized. So the
//! Figure 5 space numbers (user-relation page counts at update count 0
//! and after 14 uniform update rounds) must be identical with the WAL on
//! and off, the stored rows must be byte-identical, and a paper-mode
//! database must show no trace of the log in its accounting.

use tdbms::wal::SharedMemLog;
use tdbms::Database;
use tdbms_bench::workload::{
    all_rows, build_database, evolve_uniform, populate_database,
    BenchConfig,
};
use tdbms_kernel::DatabaseClass;
use tdbms_storage::SharedMemDisk;

fn wal_db() -> Database {
    Database::open_durable_on(
        Box::new(SharedMemDisk::new()),
        Box::new(SharedMemLog::new()),
        None,
    )
    .expect("open durable in-memory database")
}

#[test]
fn fig5_space_is_identical_with_wal_on() {
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut paper = build_database(&cfg);
    let mut durable = wal_db();
    populate_database(&mut durable, &cfg);

    // Update count 0: the seed's golden numbers, in both modes.
    for (name, db) in [("paper", &paper), ("wal", &durable)] {
        let h = db.relation_meta(&cfg.rel_h()).unwrap();
        let i = db.relation_meta(&cfg.rel_i()).unwrap();
        assert_eq!(h.total_pages, 128, "{name}: hash pages at UC0");
        assert_eq!(i.total_pages, 129, "{name}: isam pages at UC0");
        assert_eq!(h.tuple_count, 1024, "{name}: tuples at UC0");
    }
    // The stored rows agree byte for byte (LSNs live in page headers,
    // never in tuples).
    for rel in [cfg.rel_h(), cfg.rel_i()] {
        assert_eq!(
            all_rows(&mut paper, &rel),
            all_rows(&mut durable, &rel),
            "{rel}: durable rows must be byte-identical to paper mode"
        );
    }

    // Update count 14: Figure 5's right edge. Space evolution under the
    // WAL must track paper mode exactly.
    for _ in 0..14 {
        evolve_uniform(&mut paper, &cfg);
        evolve_uniform(&mut durable, &cfg);
    }
    for rel in [cfg.rel_h(), cfg.rel_i()] {
        let p = paper.relation_meta(&rel).unwrap();
        let d = durable.relation_meta(&rel).unwrap();
        assert_eq!(p.total_pages, d.total_pages, "{rel}: pages at UC14");
        assert_eq!(
            p.scannable_pages, d.scannable_pages,
            "{rel}: scannable pages at UC14"
        );
        assert_eq!(p.tuple_count, d.tuple_count, "{rel}: tuples at UC14");
        assert_eq!(
            all_rows(&mut paper, &rel),
            all_rows(&mut durable, &rel),
            "{rel}: rows at UC14"
        );
    }
    // Hash relation golden at UC14: 128 initial + 256 pages per round.
    assert_eq!(
        paper.relation_meta(&cfg.rel_h()).unwrap().total_pages,
        128 + 14 * 256
    );
}

#[test]
fn wal_phase_appears_only_in_durable_mode() {
    let mut durable = wal_db();
    durable
        .execute("create temporal interval emp (name = c20, salary = i4)")
        .unwrap();
    let out = durable
        .execute("append to emp (name = \"merrie\", salary = 11000)")
        .unwrap();
    let wal_phase = out
        .stats
        .phases
        .iter()
        .find(|p| p.name == "wal")
        .expect("durable append must record a wal phase");
    assert!(wal_phase.writes > 0, "log traffic is accounted as writes");
    // The log's page-equivalents land on the pseudo file id, visible in
    // the raw per-file ledger too.
    assert!(durable.io_stats().of(tdbms::WAL_FILE).writes > 0);

    // Paper mode: same statements, no wal phase, no pseudo-file traffic.
    let mut paper = Database::in_memory();
    paper
        .execute("create temporal interval emp (name = c20, salary = i4)")
        .unwrap();
    let out = paper
        .execute("append to emp (name = \"merrie\", salary = 11000)")
        .unwrap();
    assert!(out.stats.phases.iter().all(|p| p.name != "wal"));
    assert_eq!(paper.io_stats().of(tdbms::WAL_FILE).writes, 0);
}

#[test]
fn query_accounting_on_user_relations_is_unchanged() {
    // The paper's metric — page accesses against the *user* relations —
    // must be the same in both modes for a pure query: reads come from
    // the same pages, and the WAL adds only its own phase.
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut paper = build_database(&cfg);
    let mut durable = wal_db();
    populate_database(&mut durable, &cfg);
    let q = "retrieve (h.seq) where h.id = 500";
    let a = paper.execute(q).unwrap();
    let b = durable.execute(q).unwrap();
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.stats.input_pages, b.stats.input_pages);
    assert_eq!(a.stats.output_pages, b.stats.output_pages);
}
