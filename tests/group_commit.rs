//! Group-commit durability suite.
//!
//! Group commit decouples a session's commit record (appended under the
//! exclusive lock) from its acknowledgement (returned only after a
//! batch fsync covers the record). That gap is exactly where the
//! protocol can go wrong, so this suite attacks it three ways:
//!
//! * **Crash matrix**: a fault-injected engine with group commit on is
//!   killed mid-workload under an op budget, with torn log appends in
//!   half the cases and batching knobs varied so the crash lands in
//!   every part of the register / batch-fsync / ack / checkpoint cycle.
//!   Recovery from the raw survivors must contain every tuple whose
//!   `append` was acked (**zero committed-tuple loss**), contain no
//!   tuple that was never attempted, audit clean, and be idempotent.
//!   Because acks are issued only after the covering fsync returns,
//!   any acked-but-lost tuple here is a **phantom ack** — the assert
//!   names it as such.
//! * **Inline settle path**: a plain `Database` (no engine) with group
//!   commit enabled settles its own ticket after each statement; a
//!   reopen without checkpoint must replay every acked statement.
//! * **Checkpoint interplay**: a dense `EveryN` checkpoint policy runs
//!   against batched commits (parked drops, early log sync) and the
//!   reopened database must still be exact.

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Duration;
use tdbms::wal::{FaultLog, LogStore, SharedMemLog};
use tdbms::{CheckpointPolicy, Database, Engine, GroupCommitConfig};
use tdbms_check::check_database;
use tdbms_kernel::{Prng, Value};
use tdbms_storage::{DiskManager, FaultDisk, FaultPlan, SharedMemDisk};

/// Seed rows present before every crash run: ids `1..=BASE_IDS`.
const BASE_IDS: i64 = 16;

fn create_and_seed(db: &mut Database) {
    db.execute("create temporal interval t (id = i4, seq = i4)")
        .expect("create");
    for id in 1..=BASE_IDS {
        db.execute(&format!("append to t (id = {id}, seq = 0)"))
            .expect("seed append");
    }
}

/// Sorted current ids of `t` through a throwaway session.
fn current_ids(engine: &Engine) -> BTreeSet<i64> {
    let mut s = engine.session();
    let out = s
        .execute("range of q is t\nretrieve (q.id)")
        .expect("retrieve after recovery");
    out.rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Int(n) => *n,
            other => panic!("id column decoded as {other:?}"),
        })
        .collect()
}

fn audit_clean(engine: &Engine, ctx: &str) {
    engine.with_write(|db| {
        let (pager, catalog, _) = db.internals();
        let report = check_database(pager, catalog).expect("audit runs");
        assert!(
            report.is_clean(),
            "{ctx}: check found problems:\n{}",
            report.render()
        );
    });
}

/// The crash matrix: kill a group-commit engine mid-batch and prove
/// recovery honours every ack it handed out.
#[test]
fn group_commit_crash_matrix_never_drops_an_acked_commit() {
    for case in 0..12u64 {
        let mut g = Prng::seed_from_u64(0x9c0f + case * 6151);
        let budget = g.random_range(20u64..=120);
        let torn_log = g.random_bool().then(|| g.random_range(0usize..48));
        // Vary the batching window so crashes land both inside long
        // lingers (big batch, slow leader) and on immediate syncs.
        let max_batch = 1 + (case % 5) as u32 * 2;
        let max_delay = Duration::from_millis(case % 3);

        // Incarnation 1 (no faults): baseline rows, checkpointed so
        // relation `t` always exists when the crash run opens.
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let baseline: BTreeSet<i64> = (1..=BASE_IDS).collect();
        {
            let mut db = Database::open_durable_on(
                Box::new(disk.clone()),
                Box::new(log.clone()),
                None,
            )
            .expect("baseline open");
            create_and_seed(&mut db);
            db.checkpoint().expect("baseline checkpoint");
        }

        // Incarnation 2: same storage behind fault injectors with an
        // op budget; four writer sessions append unique ids through
        // group commit, recording only the ids whose ack came back.
        let plan = FaultPlan::new(Some(budget));
        let fdisk: Box<dyn DiskManager> =
            Box::new(FaultDisk::new(Box::new(disk.clone()), plan.clone()));
        let flog: Box<dyn LogStore> = match torn_log {
            Some(k) => Box::new(FaultLog::with_torn_appends(
                Box::new(log.clone()),
                plan.clone(),
                k,
            )),
            None => {
                Box::new(FaultLog::new(Box::new(log.clone()), plan.clone()))
            }
        };
        let acked = Mutex::new(BTreeSet::new());
        let mut attempted = baseline.clone();
        for t in 0..4i64 {
            for k in 0..12i64 {
                attempted.insert(1000 + t * 100 + k);
            }
        }
        if let Ok(mut db) = Database::open_durable_on(fdisk, flog, None) {
            // Frequent checkpoints so batches, parked drops, and the
            // checkpoint's early log sync all interleave with faults.
            db.set_checkpoint_policy(CheckpointPolicy::EveryN(5));
            if db
                .enable_group_commit(GroupCommitConfig {
                    max_batch,
                    max_delay,
                })
                .is_err()
            {
                continue;
            }
            let engine = Engine::new(db);
            std::thread::scope(|scope| {
                for t in 0..4i64 {
                    let engine = engine.clone();
                    let acked = &acked;
                    scope.spawn(move || {
                        let mut s = engine.session();
                        if s.execute("range of z is t").is_err() {
                            return;
                        }
                        for k in 0..12i64 {
                            let id = 1000 + t * 100 + k;
                            match s.execute(&format!(
                                "append to t (id = {id}, seq = 0)"
                            )) {
                                Ok(_) => {
                                    acked
                                        .lock()
                                        .expect("unpoisoned")
                                        .insert(id);
                                }
                                Err(_) => return,
                            }
                        }
                    });
                }
            });
        }
        assert!(
            plan.crashed(),
            "case {case}: budget {budget} never tripped — the matrix \
             must actually crash mid-workload"
        );
        let acked: BTreeSet<i64> = {
            let mut all = acked.into_inner().expect("unpoisoned");
            all.extend(baseline.iter().copied());
            all
        };

        // Recovery on the raw survivors.
        let rdb = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("recovery must succeed on raw survivors");
        let engine = Engine::new(rdb);
        let recovered = current_ids(&engine);
        for id in &acked {
            assert!(
                recovered.contains(id),
                "case {case} (budget {budget}, batch {max_batch}, \
                 torn_log {torn_log:?}): tuple {id} was acked but lost \
                 in recovery — a phantom ack"
            );
        }
        for id in &recovered {
            assert!(
                attempted.contains(id),
                "case {case}: recovery invented tuple {id}"
            );
        }
        audit_clean(&engine, &format!("case {case} after recovery"));
        drop(engine);

        // Recovering twice equals recovering once.
        let rdb2 = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("second recovery");
        assert_eq!(
            current_ids(&Engine::new(rdb2)),
            recovered,
            "case {case}: recovery is not idempotent"
        );
    }
}

/// The inline (engine-less) settle path: every acked statement on a
/// plain `Database` with group commit enabled must survive a reopen
/// that replays the log — no checkpoint in between.
#[test]
fn inline_group_commit_acks_are_durable_without_checkpoint() {
    let disk = SharedMemDisk::new();
    let log = SharedMemLog::new();
    {
        let mut db = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("open");
        // Never due: everything must come back through log replay.
        db.set_checkpoint_policy(CheckpointPolicy::EveryN(10_000));
        create_and_seed(&mut db);
        db.enable_group_commit(GroupCommitConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        })
        .expect("durable database");
        for id in 100..132i64 {
            db.execute(&format!("append to t (id = {id}, seq = 0)"))
                .expect("acked append");
        }
        // A temporal delete: stamps a `ts_stop` version (the id stays
        // retrievable through history) — its page writes must replay
        // exactly like the appends'.
        db.execute("range of z is t\ndelete z where z.id = 100")
            .expect("acked delete");
        // Drop without checkpoint: the "crash".
    }
    let rdb = Database::open_durable_on(
        Box::new(disk.clone()),
        Box::new(log.clone()),
        None,
    )
    .expect("recovery");
    let engine = Engine::new(rdb);
    let mut expect: BTreeSet<i64> = (1..=BASE_IDS).collect();
    expect.extend(100..132);
    assert_eq!(
        current_ids(&engine),
        expect,
        "inline group commit lost an acked statement across reopen"
    );
    audit_clean(&engine, "inline settle path after recovery");
}

/// Dense checkpoints against batched commits: parked drops and the
/// checkpoint's early log sync must leave an exact database behind,
/// live and across a reopen.
#[test]
fn checkpoints_interleave_cleanly_with_group_commit_batches() {
    let disk = SharedMemDisk::new();
    let log = SharedMemLog::new();
    let mut db = Database::open_durable_on(
        Box::new(disk.clone()),
        Box::new(log.clone()),
        None,
    )
    .expect("open");
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(3));
    create_and_seed(&mut db);
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 6,
        max_delay: Duration::from_millis(2),
    })
    .expect("durable database");
    let engine = Engine::new(db);
    std::thread::scope(|scope| {
        for t in 0..4i64 {
            let engine = engine.clone();
            scope.spawn(move || {
                let mut s = engine.session();
                s.execute("range of z is t").expect("range");
                for k in 0..16i64 {
                    let id = 2000 + t * 100 + k;
                    s.execute(&format!("append to t (id = {id}, seq = 0)"))
                        .expect("append under checkpoint pressure");
                    if k % 5 == 4 {
                        // Temporal delete: stamps a ts_stop version
                        // (the id remains retrievable through
                        // history); exercises in-place page updates
                        // inside the batches.
                        s.execute(&format!(
                            "delete z where z.id = {}",
                            2000 + t * 100 + k - 4
                        ))
                        .expect("delete under checkpoint pressure");
                    }
                }
            });
        }
    });
    let mut expect: BTreeSet<i64> = (1..=BASE_IDS).collect();
    for t in 0..4i64 {
        for k in 0..16i64 {
            expect.insert(2000 + t * 100 + k);
        }
    }
    assert_eq!(current_ids(&engine), expect, "live state after batches");
    audit_clean(&engine, "live engine after batched workload");

    // Reopen from the raw survivors: checkpoint + replay must agree.
    match engine.try_into_database() {
        Ok(db) => drop(db),
        Err(_) => panic!("engine had outstanding handles"),
    }
    let rdb = Database::open_durable_on(
        Box::new(disk.clone()),
        Box::new(log.clone()),
        None,
    )
    .expect("reopen");
    let engine = Engine::new(rdb);
    assert_eq!(
        current_ids(&engine),
        expect,
        "reopen disagrees with the live database"
    );
    audit_clean(&engine, "reopen after batched workload");
}
