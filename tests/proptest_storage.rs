//! Property tests of the storage engine: every access method must agree
//! with a simple in-memory reference model, regardless of key
//! distribution, fill factor, or insertion order.

use std::collections::BTreeMap;
use tdbms::{AttrDef, Domain, Schema, Value};
use tdbms_prop::{check, Gen};
use tdbms_storage::{
    HashFile, HashFn, HeapFile, IsamFile, KeySpec, Pager, RelFile,
};

fn codec() -> tdbms::Schema {
    Schema::static_relation(vec![
        AttrDef::new("id", Domain::I4),
        AttrDef::new("payload", Domain::I4),
        AttrDef::new("pad", Domain::Char(40)),
    ])
    .unwrap()
}

const WIDTH: usize = 48;

fn encode(schema: &Schema, id: i32, payload: i32) -> Vec<u8> {
    let c = tdbms_kernel::RowCodec::new(schema);
    c.encode(&[
        Value::Int(id as i64),
        Value::Int(payload as i64),
        Value::Str("p".into()),
    ])
    .unwrap()
}

/// Reference model: key → multiset of payloads.
fn model_of(rows: &[(i32, i32)]) -> BTreeMap<i32, Vec<i32>> {
    let mut m: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
    for (k, v) in rows {
        m.entry(*k).or_default().push(*v);
    }
    for v in m.values_mut() {
        v.sort_unstable();
    }
    m
}

fn collect_scan(
    pager: &Pager,
    file: &RelFile,
    schema: &Schema,
) -> BTreeMap<i32, Vec<i32>> {
    let c = tdbms_kernel::RowCodec::new(schema);
    let mut m: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, file).unwrap() {
        m.entry(c.get_i4(&row, 0))
            .or_default()
            .push(c.get_i4(&row, 1));
    }
    for v in m.values_mut() {
        v.sort_unstable();
    }
    m
}

fn collect_lookup(
    pager: &Pager,
    file: &RelFile,
    schema: &Schema,
    key: i32,
) -> Vec<i32> {
    let c = tdbms_kernel::RowCodec::new(schema);
    let mut out = Vec::new();
    let kb = key.to_le_bytes();
    let mut cur = file.lookup_eq(pager, &kb).unwrap().expect("keyed file");
    while let Some((_, row)) = cur.next(pager, file).unwrap() {
        assert_eq!(c.get_i4(&row, 0), key, "lookup returned a foreign key");
        out.push(c.get_i4(&row, 1));
    }
    out.sort_unstable();
    out
}

/// Hash and ISAM agree with the model under arbitrary build + insert
/// sequences (duplicates, negatives, clustered keys).
#[test]
fn keyed_files_agree_with_model() {
    check("keyed_files_agree_with_model", 48, |g: &mut Gen| {
        let initial = g.vec(0..150, |g| (g.range(-40i32..40), g.any_i32()));
        let inserts = g.vec(0..80, |g| (g.range(-40i32..40), g.any_i32()));
        let fill = *g.pick(&[50u8, 75, 100]);
        let hashfn = *g.pick(&[HashFn::Mod, HashFn::Multiplicative]);

        let schema = codec();
        let pager = Pager::in_memory();
        let rows: Vec<Vec<u8>> = initial
            .iter()
            .map(|(k, v)| encode(&schema, *k, *v))
            .collect();
        let key = KeySpec {
            offset: 0,
            len: 4,
            kind: tdbms_storage::KeyKind::I4,
        };
        let files = vec![
            RelFile::Hash(
                HashFile::build(&pager, &rows, WIDTH, key, hashfn, fill)
                    .unwrap(),
            ),
            RelFile::Isam(
                IsamFile::build(&pager, &rows, WIDTH, key, fill).unwrap(),
            ),
        ];
        for file in files {
            let mut local = initial.clone();
            for (k, v) in &inserts {
                file.insert(&pager, &encode(&schema, *k, *v)).unwrap();
                local.push((*k, *v));
            }
            let want = model_of(&local);
            // Full scan sees exactly the model.
            assert_eq!(collect_scan(&pager, &file, &schema), want);
            // Every present key is found with all its versions; absent
            // probes find nothing.
            for probe in -42i32..42 {
                let got = collect_lookup(&pager, &file, &schema, probe);
                let expect = want.get(&probe).cloned().unwrap_or_default();
                assert_eq!(got, expect, "probe {probe}");
            }
        }
    });
}

/// A heap preserves insertion order exactly.
#[test]
fn heap_preserves_order() {
    check("heap_preserves_order", 48, |g: &mut Gen| {
        let rows = g.vec(0..120, |g| (g.any_i32(), g.any_i32()));
        let schema = codec();
        let pager = Pager::in_memory();
        let heap = HeapFile::create(&pager, WIDTH).unwrap();
        for (k, v) in &rows {
            heap.insert(&pager, &encode(&schema, *k, *v)).unwrap();
        }
        let c = tdbms_kernel::RowCodec::new(&schema);
        let mut got = Vec::new();
        let mut cur = heap.scan();
        while let Some((_, row)) = cur.next(&pager, &heap).unwrap() {
            got.push((c.get_i4(&row, 0), c.get_i4(&row, 1)));
        }
        assert_eq!(got, rows);
    });
}

/// Scan I/O cost is exactly the scannable page count, for any
/// organization and any contents.
#[test]
fn scan_cost_is_page_count() {
    check("scan_cost_is_page_count", 48, |g: &mut Gen| {
        let rows = g.vec(1..200, |g| (g.range(-20i32..20), g.any_i32()));
        let fill = *g.pick(&[50u8, 100]);
        let schema = codec();
        let pager = Pager::in_memory();
        let encoded: Vec<Vec<u8>> =
            rows.iter().map(|(k, v)| encode(&schema, *k, *v)).collect();
        let key = KeySpec {
            offset: 0,
            len: 4,
            kind: tdbms_storage::KeyKind::I4,
        };
        for file in [
            RelFile::Hash(
                HashFile::build(
                    &pager,
                    &encoded,
                    WIDTH,
                    key,
                    HashFn::Mod,
                    fill,
                )
                .unwrap(),
            ),
            RelFile::Isam(
                IsamFile::build(&pager, &encoded, WIDTH, key, fill)
                    .unwrap(),
            ),
        ] {
            pager.invalidate_buffers().unwrap();
            pager.reset_stats();
            let mut n = 0usize;
            let mut cur = file.scan();
            while cur.next(&pager, &file).unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, rows.len());
            assert_eq!(
                pager.stats().of(file.file_id()).reads as u32,
                file.scannable_pages(&pager).unwrap()
            );
        }
    });
}

/// TimeVal: format-then-parse is the identity at second granularity.
#[test]
fn time_format_parse_roundtrip() {
    check("time_format_parse_roundtrip", 256, |g: &mut Gen| {
        let secs = g.range(0u32..u32::MAX - 1);
        let t = tdbms::TimeVal::from_secs(secs);
        let s = t.format(tdbms::Granularity::Second);
        assert_eq!(tdbms::TimeVal::parse(&s).unwrap(), t);
    });
}

/// Civil conversion round-trips for every representable instant.
#[test]
fn civil_roundtrip() {
    check("civil_roundtrip", 256, |g: &mut Gen| {
        let secs = g.range(0u32..u32::MAX - 1);
        let t = tdbms::TimeVal::from_secs(secs);
        let c = t.to_civil();
        let back = tdbms::TimeVal::from_ymd_hms(
            c.year, c.month, c.day, c.hour, c.minute, c.second,
        )
        .unwrap();
        assert_eq!(back, t);
    });
}

/// Interval algebra laws: intersection is commutative and contained in
/// both operands; span contains both; overlap is symmetric; precede is
/// antisymmetric apart from meeting points.
#[test]
fn interval_algebra_laws() {
    check("interval_algebra_laws", 256, |g: &mut Gen| {
        use tdbms::{TInterval, TimeVal};
        let (a_lo, a_len) = (g.range(0u32..1000), g.range(0u32..1000));
        let (b_lo, b_len) = (g.range(0u32..1000), g.range(0u32..1000));
        let a = TInterval::new(
            TimeVal::from_secs(a_lo),
            TimeVal::from_secs(a_lo + a_len),
        );
        let b = TInterval::new(
            TimeVal::from_secs(b_lo),
            TimeVal::from_secs(b_lo + b_len),
        );
        assert_eq!(a.intersect(&b), b.intersect(&a));
        assert_eq!(a.span(&b), b.span(&a));
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        let i = a.intersect(&b);
        if !i.is_empty() {
            assert!(a.contains(i.lo) && a.contains(i.hi));
            assert!(b.contains(i.lo) && b.contains(i.hi));
        }
        let s = a.span(&b);
        assert!(s.lo <= a.lo && s.hi >= a.hi);
        assert!(s.lo <= b.lo && s.hi >= b.hi);
        // overlap(a, b) == !(a precede strictly before b) && vice versa,
        // with the meeting-point convention that both may hold at a shared
        // endpoint.
        if a.precedes(&b) && b.precedes(&a) {
            assert!(a.hi == b.lo && b.hi == a.lo);
        }
    });
}
