//! Property test: pretty-printing any TQuel syntax tree and re-parsing it
//! yields the same tree (print ∘ parse = id on the printer's image).

use tdbms::tquel::ast::*;
use tdbms::tquel::{parse_statement, token::Keyword};
use tdbms_prop::{check, Gen};

const IDENT_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";

fn arb_ident(g: &mut Gen) -> String {
    loop {
        let first = g.range(b'a'..=b'z') as char;
        let rest = g.string_from(IDENT_REST, 0..7);
        let s = format!("{first}{rest}");
        if Keyword::from_str(&s).is_none() {
            return s;
        }
    }
}

/// Any printable ASCII — including `"` and `\`, which the printer
/// escapes (`printer::quote_str`); the round-trip property covers the
/// escaping itself.
fn arb_string_lit(g: &mut Gen) -> String {
    let printable: Vec<u8> = (0x20u8..=0x7E).collect();
    g.string_from(&printable, 0..13)
}

const BIN_OPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
];

fn arb_expr(g: &mut Gen, depth: u32) -> Expr {
    // Literals are non-negative: `-1` prints identically to `Neg(Int(1))`,
    // and the parser (correctly) produces the latter. Negation is covered
    // by explicit `Neg` nodes.
    if depth == 0 || g.bool() {
        match g.range(0u8..4) {
            0 => Expr::Int(g.range(0i64..1_000_000)),
            1 => Expr::Float(g.range(0i64..1000) as f64 / 8.0),
            2 => Expr::Str(arb_string_lit(g)),
            _ => Expr::Attr {
                var: arb_ident(g),
                attr: arb_ident(g),
            },
        }
    } else {
        match g.range(0u8..3) {
            0 => Expr::Bin {
                op: *g.pick(&BIN_OPS),
                lhs: Box::new(arb_expr(g, depth - 1)),
                rhs: Box::new(arb_expr(g, depth - 1)),
            },
            1 => Expr::Neg(Box::new(arb_expr(g, depth - 1))),
            _ => Expr::Not(Box::new(arb_expr(g, depth - 1))),
        }
    }
}

fn arb_texpr(g: &mut Gen, depth: u32) -> TemporalExpr {
    if depth == 0 || g.bool() {
        if g.bool() {
            TemporalExpr::Var(arb_ident(g))
        } else {
            TemporalExpr::Lit(arb_string_lit(g))
        }
    } else {
        match g.range(0u8..4) {
            0 => TemporalExpr::Start(Box::new(arb_texpr(g, depth - 1))),
            1 => TemporalExpr::End(Box::new(arb_texpr(g, depth - 1))),
            2 => TemporalExpr::Overlap(
                Box::new(arb_texpr(g, depth - 1)),
                Box::new(arb_texpr(g, depth - 1)),
            ),
            _ => TemporalExpr::Extend(
                Box::new(arb_texpr(g, depth - 1)),
                Box::new(arb_texpr(g, depth - 1)),
            ),
        }
    }
}

fn arb_tpred(g: &mut Gen, depth: u32) -> TemporalPred {
    if depth == 0 || g.bool() {
        let a = arb_texpr(g, 2);
        let b = arb_texpr(g, 2);
        match g.range(0u8..3) {
            0 => TemporalPred::Precede(a, b),
            1 => TemporalPred::Overlap(a, b),
            _ => TemporalPred::Equal(a, b),
        }
    } else {
        match g.range(0u8..3) {
            0 => TemporalPred::And(
                Box::new(arb_tpred(g, depth - 1)),
                Box::new(arb_tpred(g, depth - 1)),
            ),
            1 => TemporalPred::Or(
                Box::new(arb_tpred(g, depth - 1)),
                Box::new(arb_tpred(g, depth - 1)),
            ),
            _ => TemporalPred::Not(Box::new(arb_tpred(g, depth - 1))),
        }
    }
}

fn arb_retrieve(g: &mut Gen) -> Statement {
    let targets = g.vec(1..4, |g| (g.option(arb_ident), arb_expr(g, 4)));
    // Explicit target names must be unique for the printed form to
    // re-bind identically; suffix them by position.
    let targets = targets
        .into_iter()
        .enumerate()
        .map(|(i, (name, expr))| Target {
            name: name.map(|n| format!("{n}_{i}")),
            expr,
        })
        .collect();
    Statement::Retrieve(Retrieve {
        into: None,
        targets,
        valid: g.option(|g| ValidClause::Interval {
            from: arb_texpr(g, 3),
            to: arb_texpr(g, 3),
        }),
        where_clause: g.option(|g| arb_expr(g, 4)),
        when_clause: g.option(|g| arb_tpred(g, 3)),
        as_of: g.option(|g| AsOf {
            at: TemporalExpr::Lit(arb_string_lit(g)),
            through: g.option(|g| TemporalExpr::Lit(arb_string_lit(g))),
        }),
        sort: g
            .vec(0..3, |g| (arb_ident(g), g.bool()))
            .into_iter()
            .map(|(column, descending)| SortKey { column, descending })
            .collect(),
    })
}

fn assert_roundtrips(stmt: &Statement) {
    let printed = stmt.to_string();
    let reparsed = match parse_statement(&printed) {
        Ok(s) => s,
        Err(e) => panic!("{e}\n{printed}"),
    };
    assert_eq!(stmt, &reparsed, "printed: {printed}");
}

#[test]
fn retrieve_statements_roundtrip() {
    check("retrieve_statements_roundtrip", 192, |g: &mut Gen| {
        assert_roundtrips(&arb_retrieve(g));
    });
}

#[test]
fn where_expressions_roundtrip() {
    check("where_expressions_roundtrip", 192, |g: &mut Gen| {
        assert_roundtrips(&where_stmt(arb_expr(g, 4)));
    });
}

#[test]
fn when_predicates_roundtrip() {
    check("when_predicates_roundtrip", 192, |g: &mut Gen| {
        assert_roundtrips(&when_stmt(arb_tpred(g, 3)));
    });
}

fn where_stmt(e: Expr) -> Statement {
    Statement::Retrieve(Retrieve {
        into: None,
        targets: vec![Target {
            name: None,
            expr: Expr::Attr {
                var: "v".into(),
                attr: "x".into(),
            },
        }],
        valid: None,
        where_clause: Some(e),
        when_clause: None,
        as_of: None,
        sort: Vec::new(),
    })
}

fn when_stmt(p: TemporalPred) -> Statement {
    Statement::Retrieve(Retrieve {
        into: None,
        targets: vec![Target {
            name: None,
            expr: Expr::Attr {
                var: "v".into(),
                attr: "x".into(),
            },
        }],
        valid: None,
        where_clause: None,
        when_clause: Some(p),
        as_of: None,
        sort: Vec::new(),
    })
}

/// Recorded proptest counterexample (tests/tquel_roundtrip.proptest-
/// regressions, first entry): a retrieve whose `valid` clause nests
/// `extend`/`begin of`/`end of` and whose `where` clause takes `mod` of
/// two comparison results. The shrunk case predates the non-negative-
/// literal convention and held `Int(-458770)` / `Int(-932785)`; those
/// print as `-458770`, which the parser (correctly) reads back as
/// `Neg(Int(458770))` — so the AST here uses the `Neg` form, printing
/// the exact same statement text as the original counterexample.
#[test]
fn regression_valid_clause_extend_nesting_and_mod_of_comparisons() {
    let stmt = Statement::Retrieve(Retrieve {
        into: None,
        targets: vec![Target {
            name: None,
            expr: Expr::Int(0),
        }],
        valid: Some(ValidClause::Interval {
            from: TemporalExpr::Var("a".into()),
            to: TemporalExpr::Extend(
                Box::new(TemporalExpr::Extend(
                    Box::new(TemporalExpr::Var("a".into())),
                    Box::new(TemporalExpr::Start(Box::new(
                        TemporalExpr::Var("s_1_".into()),
                    ))),
                )),
                Box::new(TemporalExpr::End(Box::new(TemporalExpr::Var(
                    "n_na".into(),
                )))),
            ),
        }),
        where_clause: Some(Expr::Bin {
            op: BinOp::Mod,
            lhs: Box::new(Expr::Bin {
                op: BinOp::Lt,
                lhs: Box::new(Expr::Neg(Box::new(Expr::Int(458_770)))),
                rhs: Box::new(Expr::Str("yKXE".into())),
            }),
            rhs: Box::new(Expr::Bin {
                op: BinOp::Div,
                lhs: Box::new(Expr::Neg(Box::new(Expr::Int(932_785)))),
                rhs: Box::new(Expr::Int(120_859)),
            }),
        }),
        when_clause: None,
        as_of: None,
        sort: Vec::new(),
    });
    assert_roundtrips(&stmt);
}

/// Recorded proptest counterexample (tests/tquel_roundtrip.proptest-
/// regressions, second entry): a deeply nested `when` predicate mixing
/// `precede`/`overlap`/`equal` under `not`/`and`/`or`, with string
/// literals containing spaces and punctuation.
#[test]
fn regression_when_predicate_nested_boolean_structure() {
    use TemporalExpr as TE;
    let p = TemporalPred::Not(Box::new(TemporalPred::And(
        Box::new(TemporalPred::Precede(
            TE::Var("a".into()),
            TE::Start(Box::new(TE::Start(Box::new(TE::Start(Box::new(
                TE::Var("bqk".into()),
            )))))),
        )),
        Box::new(TemporalPred::Or(
            Box::new(TemporalPred::Overlap(
                TE::Extend(
                    Box::new(TE::Var("xmm".into())),
                    Box::new(TE::Extend(
                        Box::new(TE::Start(Box::new(TE::Var("j2".into())))),
                        Box::new(TE::Overlap(
                            Box::new(TE::Var("d".into())),
                            Box::new(TE::Lit("s'[%".into())),
                        )),
                    )),
                ),
                TE::End(Box::new(TE::End(Box::new(TE::Start(Box::new(
                    TE::Lit("Tz$? TZ<)".into()),
                )))))),
            )),
            Box::new(TemporalPred::Equal(
                TE::Extend(
                    Box::new(TE::Lit("o".into())),
                    Box::new(TE::Start(Box::new(TE::Lit("7<H6%k".into())))),
                ),
                TE::Overlap(
                    Box::new(TE::Var("p_9_9_".into())),
                    Box::new(TE::Lit("y|.t=vN p*Hs".into())),
                ),
            )),
        )),
    )));
    assert_roundtrips(&when_stmt(p));
}
