//! Property test: pretty-printing any TQuel syntax tree and re-parsing it
//! yields the same tree (print ∘ parse = id on the printer's image).

use proptest::prelude::*;
use tdbms::tquel::ast::*;
use tdbms::tquel::{parse_statement, token::Keyword};

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
        .prop_filter("not a keyword", |s| Keyword::from_str(s).is_none())
}

fn arb_string_lit() -> impl Strategy<Value = String> {
    // Printable, no backslashes (the printer escapes quotes only).
    "[ -!#-\\[\\]-~]{0,12}".prop_map(|s| s)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: `-1` prints identically to `Neg(Int(1))`,
    // and the parser (correctly) produces the latter. Negation is covered
    // by explicit `Neg` nodes.
    let leaf = prop_oneof![
        (0i64..1_000_000).prop_map(Expr::Int),
        (0i64..1000).prop_map(|v| Expr::Float(v as f64 / 8.0)),
        arb_string_lit().prop_map(Expr::Str),
        (arb_ident(), arb_ident())
            .prop_map(|(var, attr)| Expr::Attr { var, attr }),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Bin {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_texpr() -> impl Strategy<Value = TemporalExpr> {
    let leaf = prop_oneof![
        arb_ident().prop_map(TemporalExpr::Var),
        arb_string_lit().prop_map(TemporalExpr::Lit),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| TemporalExpr::Start(Box::new(e))),
            inner.clone().prop_map(|e| TemporalExpr::End(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                TemporalExpr::Overlap(Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner).prop_map(|(a, b)| {
                TemporalExpr::Extend(Box::new(a), Box::new(b))
            }),
        ]
    })
}

fn arb_tpred() -> impl Strategy<Value = TemporalPred> {
    let leaf = prop_oneof![
        (arb_texpr(), arb_texpr())
            .prop_map(|(a, b)| TemporalPred::Precede(a, b)),
        (arb_texpr(), arb_texpr())
            .prop_map(|(a, b)| TemporalPred::Overlap(a, b)),
        (arb_texpr(), arb_texpr())
            .prop_map(|(a, b)| TemporalPred::Equal(a, b)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                TemporalPred::And(Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                TemporalPred::Or(Box::new(a), Box::new(b))
            }),
            inner.prop_map(|p| TemporalPred::Not(Box::new(p))),
        ]
    })
}

fn arb_retrieve() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec(
            (prop::option::of(arb_ident()), arb_expr()),
            1..4,
        ),
        prop::option::of((arb_texpr(), arb_texpr())),
        prop::option::of(arb_expr()),
        prop::option::of(arb_tpred()),
        prop::option::of((arb_string_lit(), prop::option::of(arb_string_lit()))),
        prop::collection::vec((arb_ident(), any::<bool>()), 0..3),
    )
        .prop_map(|(targets, valid, where_clause, when_clause, as_of, sort)| {
            // Explicit target names must be unique for the printed form to
            // re-bind identically; suffix them by position.
            let targets = targets
                .into_iter()
                .enumerate()
                .map(|(i, (name, expr))| Target {
                    name: name.map(|n| format!("{n}_{i}")),
                    expr,
                })
                .collect();
            Statement::Retrieve(Retrieve {
                into: None,
                targets,
                valid: valid.map(|(from, to)| ValidClause::Interval {
                    from,
                    to,
                }),
                where_clause,
                when_clause,
                as_of: as_of.map(|(at, through)| AsOf {
                    at: TemporalExpr::Lit(at),
                    through: through.map(TemporalExpr::Lit),
                }),
                sort: sort
                    .into_iter()
                    .map(|(column, descending)| SortKey {
                        column,
                        descending,
                    })
                    .collect(),
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn retrieve_statements_roundtrip(stmt in arb_retrieve()) {
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(stmt, reparsed, "printed: {}", printed);
    }

    #[test]
    fn where_expressions_roundtrip(e in arb_expr()) {
        let stmt = Statement::Retrieve(Retrieve {
            into: None,
            targets: vec![Target {
                name: None,
                expr: Expr::Attr { var: "v".into(), attr: "x".into() },
            }],
            valid: None,
            where_clause: Some(e),
            when_clause: None,
            as_of: None,
            sort: Vec::new(),
        });
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(stmt, reparsed, "printed: {}", printed);
    }

    #[test]
    fn when_predicates_roundtrip(p in arb_tpred()) {
        let stmt = Statement::Retrieve(Retrieve {
            into: None,
            targets: vec![Target {
                name: None,
                expr: Expr::Attr { var: "v".into(), attr: "x".into() },
            }],
            valid: None,
            where_clause: None,
            when_clause: Some(p),
            as_of: None,
            sort: Vec::new(),
        });
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(stmt, reparsed, "printed: {}", printed);
    }
}
