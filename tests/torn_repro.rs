//! Scratch repro: exhaustive crash sweep with torn data-page writes
//! whose prefix covers the page LSN (bytes 8..12) but truncates rows.

use tdbms::wal::{FaultLog, LogStore, SharedMemLog};
use tdbms::{Database, TimeVal};
use tdbms_kernel::{RowCodec, TemporalAttr};
use tdbms_storage::{DiskManager, FaultDisk, FaultPlan, SharedMemDisk};

type State = Option<Vec<(i32, i32)>>;

fn snapshot(db: &mut Database) -> State {
    if !db.relation_names().iter().any(|n| n == "r") {
        return None;
    }
    let schema = db.schema_of("r").unwrap();
    let codec = RowCodec::new(&schema);
    let implicit: Vec<TemporalAttr> = schema.implicit_attrs().to_vec();
    let (pager, catalog, _) = db.internals();
    let id = catalog.require("r").unwrap();
    let file = catalog.get(id).file.clone();
    let mut rows = Vec::new();
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, &file).unwrap() {
        let current = implicit.iter().enumerate().all(|(k, t)| {
            !matches!(
                t,
                TemporalAttr::ValidTo | TemporalAttr::TransactionStop
            ) || codec.get_time(&row, 2 + k) == TimeVal::FOREVER
        });
        if current {
            rows.push((codec.get_i4(&row, 0), codec.get_i4(&row, 1)));
        }
    }
    rows.sort_unstable();
    Some(rows)
}

fn run(
    disk: &SharedMemDisk,
    log: &SharedMemLog,
    plan: &FaultPlan,
    torn: usize,
    stmts: &[String],
) -> Option<(Vec<u64>, Vec<State>)> {
    let fdisk: Box<dyn DiskManager> =
        Box::new(FaultDisk::with_torn_writes(
            Box::new(disk.clone()),
            plan.clone(),
            torn,
        ));
    let flog: Box<dyn LogStore> =
        Box::new(FaultLog::new(Box::new(log.clone()), plan.clone()));
    let Ok(mut db) = Database::open_durable_on(fdisk, flog, None) else {
        return None;
    };
    let mut boundaries = vec![plan.ops_charged()];
    let mut states = vec![snapshot(&mut db)];
    for s in stmts {
        if db.execute(s).is_err() {
            return None;
        }
        boundaries.push(plan.ops_charged());
        states.push(snapshot(&mut db));
    }
    Some((boundaries, states))
}

#[test]
fn torn_checkpoint_write_sweep() {
    let stmts: Vec<String> = vec![
        "create temporal interval r (id = i4, seq = i4)".into(),
        "range of z is r".into(),
        "append to r (id = 1, seq = 0)".into(),
        "append to r (id = 2, seq = 0)".into(),
        "append to r (id = 3, seq = 0)".into(),
        "append to r (id = 4, seq = 0)".into(),
        "append to r (id = 5, seq = 0)".into(),
        "replace z (seq = z.seq + 1) where z.id = 3".into(),
    ];
    let torn = 64; // covers header+lsn (12 bytes), truncates row data
    let (boundaries, states) = run(
        &SharedMemDisk::new(),
        &SharedMemLog::new(),
        &FaultPlan::new(None),
        torn,
        &stmts,
    )
    .expect("dry run");
    let (first, last) = (boundaries[0], *boundaries.last().unwrap());
    let mut failures = Vec::new();
    for crash_at in first + 1..=last {
        let disk = SharedMemDisk::new();
        let log = SharedMemLog::new();
        let plan = FaultPlan::new(Some(crash_at));
        let finished = run(&disk, &log, &plan, torn, &stmts);
        assert!(finished.is_none());
        let k = boundaries.iter().position(|&b| b >= crash_at).unwrap();
        let mut rdb = Database::open_durable_on(
            Box::new(disk.clone()),
            Box::new(log.clone()),
            None,
        )
        .expect("recovery");
        let got = snapshot(&mut rdb);
        if got != states[k - 1] && got != states[k] {
            failures.push(format!(
                "crash at {crash_at} (stmt {k} = {:?}): got {got:?}, \
                 want {:?} or {:?}",
                stmts.get(k - 1),
                states[k - 1],
                states[k]
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
