//! Trend analysis over a historical database.
//!
//! "Conventional DBMS's cannot support historical queries about the past
//! status, much less trend analysis which is essential for applications
//! such as decision support systems" — the paper's opening motivation.
//! A historical relation records *valid time*: when each fact held in the
//! modeled world. This example loads a small personnel history and runs
//! the decision-support queries a static database cannot answer.
//!
//! ```sh
//! cargo run --example personnel_history
//! ```

use tdbms::Database;

fn main() {
    let mut db = Database::in_memory();
    db.execute(
        "create historical interval staff \
         (name = c12, dept = c12, salary = i4)",
    )
    .unwrap();
    db.execute("range of s is staff").unwrap();

    // Careers, loaded with explicit valid periods.
    let history: &[(&str, &str, i64, &str, &str)] = &[
        ("ibsen", "toys", 18000, "1/1/80", "6/1/81"),
        ("ibsen", "tools", 21000, "6/1/81", "forever"),
        ("padma", "toys", 17000, "3/1/80", "9/1/82"),
        ("padma", "toys", 19500, "9/1/82", "forever"),
        ("quine", "books", 16000, "1/1/80", "4/1/81"),
        ("quine", "toys", 16500, "4/1/81", "2/1/83"),
        ("quine", "tools", 20000, "2/1/83", "forever"),
    ];
    for (name, dept, salary, from, to) in history {
        db.execute(&format!(
            r#"append to staff (name = "{name}", dept = "{dept}", salary = {salary})
               valid from "{from}" to "{to}""#
        ))
        .unwrap();
    }

    // Who staffed the toy department on particular dates?
    for date in ["6/1/80", "6/1/82", "6/1/83"] {
        let out = db
            .execute(&format!(
                r#"retrieve (s.name, s.salary)
                   where s.dept = "toys" when s overlap "{date}""#
            ))
            .unwrap();
        let names: Vec<String> =
            out.rows().iter().map(|r| r[0].to_string()).collect();
        println!("toy department on {date}: {names:?}");
    }

    // Salary trend for one person: the valid clause labels each result
    // tuple with the period it describes.
    println!("\nquine's salary history:");
    let out = db
        .execute(r#"retrieve (s.salary, s.dept) where s.name = "quine""#)
        .unwrap();
    let vf = out.column_index("valid_from").unwrap();
    let vt = out.column_index("valid_to").unwrap();
    for row in out.rows() {
        println!(
            "  {:>6} in {:<6} from {} to {}",
            row[0].to_string(),
            row[1].to_string(),
            row[vf].as_time().unwrap().format(tdbms::Granularity::Day),
            row[vt].as_time().unwrap().format(tdbms::Granularity::Day),
        );
    }

    // A temporal join: who were colleagues in the same department at some
    // moment? (`when s overlap t` — "the two tuples must have coexisted".)
    db.execute("range of t is staff").unwrap();
    let out = db
        .execute(
            r#"retrieve (a = s.name, b = t.name, s.dept)
               where s.dept = t.dept and s.name < t.name
               when s overlap t"#,
        )
        .unwrap();
    println!("\ncolleague pairs (dept, overlapping tenure):");
    let vf = out.column_index("valid_from").unwrap();
    let vt = out.column_index("valid_to").unwrap();
    for row in out.rows() {
        println!(
            "  {} & {} in {} ({} .. {})",
            row[0],
            row[1],
            row[2],
            row[vf].as_time().unwrap().format(tdbms::Granularity::Day),
            row[vt].as_time().unwrap().format(tdbms::Granularity::Day),
        );
    }
    assert!(!out.rows().is_empty());

    // Headcount trend by year — the kind of aggregate a decision-support
    // system derives from snapshots at successive instants.
    println!("\ntoy-department headcount by year:");
    for year in 1980..=1983 {
        let out = db
            .execute(&format!(
                r#"retrieve (s.name) where s.dept = "toys"
                   when s overlap "7/1/{year}""#
            ))
            .unwrap();
        println!(
            "  {year}: {} {}",
            out.rows().len(),
            "▮".repeat(out.rows().len())
        );
    }
}
