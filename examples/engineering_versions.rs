//! Version management for engineering design data on a temporal database.
//!
//! The paper's introduction points at "version management and design
//! control in computer aided design" (Katz & Lehman 1984) as a driver for
//! temporal support. A temporal relation gives a design database both
//! axes for free: *valid time* says when a part revision was the released
//! design, *transaction time* says when the database learned it — so
//! "which drawing was current when unit 42 was built, according to what
//! we knew at the time?" is one query, not a journal reconstruction.
//!
//! ```sh
//! cargo run --example engineering_versions
//! ```

use tdbms::{Database, Granularity};

fn main() {
    let mut db = Database::in_memory();
    db.execute(
        "create temporal interval part \
         (part = c12, rev = c4, mass_g = i4)",
    )
    .unwrap();
    db.execute("range of p is part").unwrap();

    // Rev A released January 1980.
    db.execute(
        r#"append to part (part = "bracket", rev = "A", mass_g = 112)
           valid from "1/7/80" to "forever""#,
    )
    .unwrap();
    // Rev B supersedes it in June.
    db.execute(
        r#"replace p (rev = "B", mass_g = 97)
           valid from "6/2/80" to "forever"
           where p.part = "bracket""#,
    )
    .unwrap();
    let before_recall = db.clock().now();
    // In 1981, stress testing shows rev B was never airworthy: engineering
    // retroactively reinstates rev A from September 1980 (a *retroactive*
    // change — the database corrects what was true, keeping what it said).
    db.execute(
        r#"replace p (rev = "A2", mass_g = 114)
           valid from "9/1/80" to "forever"
           where p.part = "bracket""#,
    )
    .unwrap();

    // Which revision does today's engineering record say was released in
    // October 1980?
    let out = db
        .execute(r#"retrieve (p.rev) when p overlap "10/15/80""#)
        .unwrap();
    println!(
        "released revision for builds of Oct 1980 (current knowledge): {}",
        out.rows()[0][0]
    );
    assert_eq!(out.rows()[0][0].to_string(), "A2");

    // ...and what did the manufacturing floor believe at the time? (They
    // were still building rev B — exactly the discrepancy a recall
    // investigation needs to establish.)
    let t = before_recall.format(Granularity::Second);
    let out = db
        .execute(&format!(
            r#"retrieve (p.rev) when p overlap "10/15/80" as of "{t}""#
        ))
        .unwrap();
    println!(
        "released revision for Oct 1980, as recorded before the recall: {}",
        out.rows()[0][0]
    );
    assert_eq!(out.rows()[0][0].to_string(), "B");

    // The full design lineage, with validity periods.
    println!("\ndesign lineage of \"bracket\":");
    let out = db.execute("retrieve (p.rev, p.mass_g)").unwrap();
    let vf = out.column_index("valid_from").unwrap();
    let vt = out.column_index("valid_to").unwrap();
    let mut rows: Vec<_> = out.rows().to_vec();
    rows.sort_by_key(|r| r[vf].as_time());
    for row in &rows {
        println!(
            "  rev {:<3} {:>4} g   valid {} .. {}",
            row[0].to_string(),
            row[1].to_string(),
            row[vf].as_time().unwrap().format(Granularity::Day),
            row[vt].as_time().unwrap().format(Granularity::Day),
        );
    }

    // Materialize the current bill-of-record into its own relation for a
    // downstream tool.
    db.execute(
        r#"retrieve into released (p.part, p.rev, p.mass_g)
           when p overlap "now""#,
    )
    .unwrap();
    let meta = db.relation_meta("released").unwrap();
    println!(
        "\nmaterialized {:?}: {} tuple(s), class {}",
        meta.name, meta.tuple_count, meta.class
    );
}
