//! Quickstart: the four database classes in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tdbms::{Database, Granularity};

fn show(db: &mut Database, title: &str, q: &str) {
    println!("— {title}\n  tquel> {}", q.trim());
    let out = db.execute(q).expect("query");
    for line in out.to_table().lines() {
        println!("  {line}");
    }
    println!(
        "  ({} tuple(s), {} input page(s))\n",
        out.affected, out.stats.input_pages
    );
}

fn main() {
    let mut db = Database::in_memory();

    // --- 1. A temporal relation records valid time AND transaction time.
    db.execute(
        "create temporal interval skipper \
         (name = c16, rank = c16, salary = i4)",
    )
    .unwrap();
    db.execute("range of s is skipper").unwrap();

    db.execute(
        r#"append to skipper (name = "merrie", rank = "ensign", salary = 20000)
           valid from "1/1/80" to "forever""#,
    )
    .unwrap();

    // Promotion — recorded now, effective now.
    db.execute(
        r#"replace s (rank = "lieutenant", salary = 26000)
           where s.name = "merrie""#,
    )
    .unwrap();
    let promotion_recorded = db.clock().now();

    // Retroactive correction: the raise was actually effective June 1980.
    db.execute(
        r#"replace s (salary = 30000)
           valid from "6/1/80" to "forever"
           where s.name = "merrie""#,
    )
    .unwrap();

    show(
        &mut db,
        "current state (static query on a temporal relation)",
        r#"retrieve (s.name, s.rank, s.salary) when s overlap "now""#,
    );

    show(
        &mut db,
        "historical query: what held in March 1980?",
        r#"retrieve (s.rank, s.salary) when s overlap "3/15/80""#,
    );

    show(
        &mut db,
        "every version the database has ever stored (version scan)",
        "retrieve (s.rank, s.salary)",
    );

    let t = promotion_recorded.format(Granularity::Second);
    show(
        &mut db,
        "rollback: what did the database believe just after the promotion?",
        &format!(
            r#"retrieve (s.rank, s.salary) when s overlap "7/1/80" as of "{t}""#
        ),
    );

    // --- 2. The same data as a plain static relation forgets everything.
    db.execute("create static flat (name = c16, salary = i4)")
        .unwrap();
    db.execute(r#"append to flat (name = "merrie", salary = 20000)"#)
        .unwrap();
    db.execute("range of f is flat").unwrap();
    db.execute(r#"replace f (salary = 26000) where f.name = "merrie""#)
        .unwrap();
    show(
        &mut db,
        "a static relation keeps only the latest state",
        "retrieve (f.name, f.salary)",
    );

    // --- 3. Storage structures are first-class: reorganize and inspect.
    db.execute("modify skipper to hash on name where fillfactor = 100")
        .unwrap();
    let meta = db.relation_meta("skipper").unwrap();
    println!(
        "— relation {:?}: {} {} relation, {} on {:?}, {} stored versions in {} pages",
        meta.name,
        meta.class,
        meta.kind,
        meta.method,
        meta.key.as_deref().unwrap_or("-"),
        meta.tuple_count,
        meta.total_pages
    );
}
