//! Aggregates and secondary indexing over a growing temporal warehouse —
//! the paper's Section 6 proposals at work in the query processor.
//!
//! A temporal `stock` relation receives continuous updates; we watch the
//! cost of a non-key lookup degrade exactly as the paper predicts, then
//! create a secondary index (`index on stock is stock_sku (sku)`) and
//! watch the same query collapse to a few pages. Aggregates summarize the
//! history that accumulated along the way.
//!
//! ```sh
//! cargo run --release --example warehouse_analytics
//! ```

use tdbms::{Database, Value};

const BINS: i64 = 512;

fn main() {
    let mut db = Database::in_memory();
    db.execute(
        "create temporal interval stock \
         (bin = i4, sku = i4, qty = i4)",
    )
    .unwrap();
    db.execute("range of s is stock").unwrap();

    // One pallet per bin; SKUs repeat every 64 bins.
    for bin in 1..=BINS {
        db.execute(&format!(
            "append to stock (bin = {bin}, sku = {}, qty = 100)",
            bin % 64
        ))
        .unwrap();
    }
    db.execute("modify stock to hash on bin where fillfactor = 100")
        .unwrap();

    let probe = "retrieve (s.bin, s.qty) where s.sku = 17 \
                 when s overlap \"now\"";

    // Update rounds degrade the non-key lookup linearly (growth rate 2:
    // each replace writes two versions).
    println!("cost of the non-key SKU lookup as the warehouse churns:");
    println!("{:>6} {:>12} {:>12}", "round", "scan pages", "stock pages");
    for round in 0..=4 {
        if round > 0 {
            db.execute("replace s (qty = s.qty - 1)").unwrap();
        }
        let out = db.execute(probe).unwrap();
        assert_eq!(out.rows().len(), 8); // 512 bins / 64 SKUs
        println!(
            "{:>6} {:>12} {:>12}",
            round,
            out.stats.input_pages,
            db.relation_meta("stock").unwrap().total_pages
        );
    }

    // The Section 6 fix, as a statement. A (1-level) index still fetches
    // every stored version of the matching tuples before the currency
    // filter — the paper's Figure 10 makes the same observation, and its
    // 2-level store + current-only index is the full cure — but the win
    // over the sequential scan is already large and grows with the
    // relation.
    db.execute("index on stock is stock_sku (sku)").unwrap();
    let out = db.execute(probe).unwrap();
    println!(
        "\nwith `index on stock is stock_sku (sku)`: {} pages (scan was 135)\n",
        out.stats.input_pages,
    );
    assert!(out.stats.input_pages < 60);

    // Aggregates over the accumulated history: current totals per SKU
    // (for a few SKUs), then a churn summary.
    let out = db
        .execute(
            r#"retrieve (s.sku, total = sum(s.qty), bins = count(s.bin))
               where s.sku < 4 when s overlap "now""#,
        )
        .unwrap();
    println!("current stock by SKU (first four):");
    print!("{}", out.to_table());

    let out = db
        .execute(
            "retrieve (versions = count(s.qty), \
             qmin = min(s.qty), qmax = max(s.qty), qavg = avg(s.qty))",
        )
        .unwrap();
    let row = &out.rows()[0];
    println!(
        "\nqueryable history: {} transaction-current versions, qty range \
         {}..{} (mean {})",
        row[0],
        row[1],
        row[2],
        match &row[3] {
            Value::Float(f) => format!("{f:.1}"),
            other => other.to_string(),
        }
    );
    // The version scan sees 1 + rounds versions per bin (the superseded
    // originals are reachable only by rolling back)...
    assert_eq!(row[0].as_int().unwrap(), BINS * (1 + 4));
    // ...while storage holds the full 1 + 2·rounds versions per bin.
    assert_eq!(
        db.relation_meta("stock").unwrap().tuple_count,
        (BINS + 2 * 4 * BINS) as u64
    );
}
