//! Audit trail and error correction with a rollback database.
//!
//! The paper's introduction motivates temporal support with exactly this
//! scenario: "support for error correction or audit trail necessitates
//! costly maintenance of backups, checkpoints, journals or transaction
//! logs to preserve past states" — unless the DBMS records transaction
//! time itself. A rollback database does: every version carries the
//! period during which the database believed it, so an auditor can replay
//! any past state with an `as of` clause, and corrections never destroy
//! the record of the error.
//!
//! ```sh
//! cargo run --example audit_trail
//! ```

use tdbms::{Database, Granularity, TimeVal, Value};

fn main() {
    let mut db = Database::in_memory();
    db.execute(
        "create rollback accounts (acct = i4, owner = c16, balance = i4)",
    )
    .unwrap();
    db.execute("range of a is accounts").unwrap();

    // Opening entries.
    db.execute(
        r#"append to accounts (acct = 1, owner = "chen", balance = 1000)"#,
    )
    .unwrap();
    db.execute(
        r#"append to accounts (acct = 2, owner = "okafor", balance = 500)"#,
    )
    .unwrap();

    // A clerk posts a transfer... with a typo: 400 instead of 40.
    db.execute("replace a (balance = a.balance - 400) where a.acct = 1")
        .unwrap();
    db.execute("replace a (balance = a.balance + 400) where a.acct = 2")
        .unwrap();
    let after_typo = db.clock().now();

    // The error is discovered and corrected (a compensating update — the
    // erroneous state remains on the books, as an auditor requires).
    db.execute("replace a (balance = a.balance + 360) where a.acct = 1")
        .unwrap();
    db.execute("replace a (balance = a.balance - 360) where a.acct = 2")
        .unwrap();

    let balances = |db: &mut Database, suffix: &str| -> Vec<(i64, i64)> {
        let out = db
            .execute(&format!("retrieve (a.acct, a.balance){suffix}"))
            .unwrap();
        let mut v: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        v.sort();
        v
    };

    println!("current balances:        {:?}", balances(&mut db, ""));
    let t = after_typo.format(Granularity::Second);
    println!(
        "as of the typo ({t}): {:?}",
        balances(&mut db, &format!(r#" as of "{t}""#))
    );

    // Full audit trail of account 1: every version ever believed, with
    // the transaction period it was believed during.
    let out = db
        .execute(
            r#"retrieve (a.balance, a.transaction_start, a.transaction_stop)
               where a.acct = 1
               as of "beginning" through "now""#,
        )
        .unwrap();
    println!("\naudit trail of account 1:");
    for row in out.rows() {
        let b = &row[0];
        let from = row[1].as_time().unwrap().format(Granularity::Second);
        let to = match row[2] {
            Value::Time(t) if t == TimeVal::FOREVER => {
                "present".to_string()
            }
            Value::Time(t) => t.format(Granularity::Second),
            _ => unreachable!(),
        };
        println!("  balance {b:>5}  believed from {from} until {to}");
    }
    assert_eq!(out.rows().len(), 3); // opening, typo, correction

    // Conservation holds in every state the database ever exposed.
    for probe in ["", &format!(r#" as of "{t}""#)] {
        let total: i64 =
            balances(&mut db, probe).iter().map(|(_, b)| b).sum();
        assert_eq!(total, 1500, "money is conserved{probe}");
    }
    println!(
        "\nconservation checked in the current and rolled-back states ✓"
    );
}
