//! The tdbms terminal monitor: an interactive TQuel shell, in the spirit
//! of the Ingres terminal monitor the prototype's users typed at.
//!
//! ```sh
//! cargo run --bin tdbms                # in-memory session
//! cargo run --bin tdbms -- /path/dir   # file-backed (persists)
//! echo 'create static t (x = i4);' | cargo run --bin tdbms
//! ```
//!
//! Statements may span lines; they run when a line ends with `;` or `\g`
//! (Ingres-style "go"). Backslash commands:
//!
//! * `\l` — list relations
//! * `\d <rel>` — describe a relation
//! * `\stats` — page-access counters (reset by each mutating statement;
//!   read-only retrieves accumulate, since they run on the engine's
//!   shared-lock path) plus the engine's plan-cache hit/miss counters
//! * `\stats <rel>` — the planner's maintained statistics for one
//!   relation (versions, pages, directory levels, distinct keys,
//!   average version-chain length)
//! * `\now` — the transaction clock
//! * `\i <file>` — run statements from a file
//! * `\q` — quit
//!
//! Environment knobs for file-backed sessions: `TDBMS_DURABLE=1` opens
//! through the write-ahead log (`Database::open_durable`),
//! `TDBMS_CHECKSUMS=1` turns on sidecar page checksums, and
//! `TDBMS_CHECKPOINT=manual` / `every:<n>` overrides the checkpoint
//! policy (CI uses `manual` to leave a log tail for `check` to replay).

use std::io::{BufRead, Write};
use tdbms::{CheckpointPolicy, Database, Granularity, Session};

/// Nested `\i` includes deeper than this abort with an error instead
/// of recursing forever (a file that includes itself would otherwise
/// hang the shell).
const MAX_INCLUDE_DEPTH: u32 = 16;

struct Shell {
    session: Session,
    buffer: String,
    /// Statements (and failed includes) that errored; scripted runs
    /// exit nonzero when this is nonzero.
    errors: u64,
    include_depth: u32,
}

impl Shell {
    fn describe(&self, name: &str) -> String {
        self.session
            .engine()
            .with_read(|db| match db.relation_meta(name) {
                Err(e) => format!("{e}"),
                Ok(m) => {
                    let mut s = String::new();
                    s.push_str(&format!(
                        "{} — {} {} relation, {} organization",
                        m.name, m.class, m.kind, m.method
                    ));
                    if let Some(k) = &m.key {
                        s.push_str(&format!(
                            " on {k} (fillfactor {}%)",
                            m.fillfactor
                        ));
                    }
                    s.push_str(&format!(
                        "\n  {} stored versions, {} pages ({} scannable), \
                     row width {}",
                        m.tuple_count,
                        m.total_pages,
                        m.scannable_pages,
                        m.row_width
                    ));
                    if let Ok(schema) = db.schema_of(name) {
                        s.push_str("\n  attributes:");
                        for (attr, domain) in schema.iter_all() {
                            s.push_str(&format!(" {attr}={domain}"));
                        }
                    }
                    if !m.index_names.is_empty() {
                        s.push_str(&format!(
                            "\n  indexes: {}",
                            m.index_names.join(", ")
                        ));
                    }
                    s
                }
            })
    }

    fn run_statement(&mut self, text: &str) {
        match self.session.execute(text) {
            Ok(out) => {
                if !out.columns.is_empty() {
                    print!("{}", out.to_table());
                }
                println!(
                    "({} tuple(s), {} input / {} output pages)",
                    out.affected,
                    out.stats.input_pages,
                    out.stats.output_pages
                );
            }
            Err(e) => {
                self.errors += 1;
                println!("error: {e}");
            }
        }
    }

    /// The process exit code a finished (EOF or `\q`) session reports:
    /// nonzero when any scripted statement failed, so `set -e` shell
    /// scripts and CI notice.
    fn exit_code(&self) -> i32 {
        i32::from(self.errors > 0)
    }

    fn backslash(&mut self, line: &str) {
        let mut parts = line.splitn(2, ' ');
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match cmd {
            "\\q" => std::process::exit(self.exit_code()),
            "\\l" => {
                let names = self
                    .session
                    .engine()
                    .with_read(|db| db.relation_names());
                for r in names {
                    println!("{r}");
                }
            }
            "\\d" => println!("{}", self.describe(arg)),
            "\\stats" if arg.is_empty() => {
                let (reads, writes, degraded) =
                    self.session.engine().with_read(|db| {
                        let st = db.io_stats();
                        (
                            st.total_reads(),
                            st.total_writes(),
                            db.degraded_reason(),
                        )
                    });
                println!(
                    "last statement: {reads} page reads, {writes} page writes"
                );
                let (hits, misses) = self.session.plan_cache_stats();
                println!("plan cache: {hits} hits, {misses} misses");
                if let Some(reason) = degraded {
                    println!(
                        "DEGRADED (read-only): {reason} — writes \
                         re-arm automatically once the disk recovers"
                    );
                }
            }
            "\\stats" => {
                let stats = self
                    .session
                    .engine()
                    .with_read(|db| db.relation_stats(arg));
                match stats {
                    Err(e) => {
                        self.errors += 1;
                        println!("error: {e}");
                    }
                    Ok(st) => {
                        println!(
                            "{} — {} organization, row width {}",
                            st.name, st.method, st.row_width
                        );
                        println!(
                            "  {} stored versions, {} pages \
                             ({} scannable), {} directory level(s)",
                            st.tuple_count,
                            st.total_pages,
                            st.scannable_pages,
                            st.directory_levels
                        );
                        println!(
                            "  ~{} distinct key(s), average chain \
                             length {}",
                            st.distinct_estimate(),
                            st.chain_len()
                        );
                    }
                }
            }
            "\\now" => println!(
                "{}",
                self.session
                    .engine()
                    .with_read(|db| db.clock().now())
                    .format(Granularity::Second)
            ),
            "\\i" => {
                if self.include_depth >= MAX_INCLUDE_DEPTH {
                    self.errors += 1;
                    println!(
                        "error: \\i nesting exceeds {MAX_INCLUDE_DEPTH} \
                         (does {arg} include itself?)"
                    );
                    return;
                }
                match std::fs::read_to_string(arg) {
                    Ok(text) => {
                        self.include_depth += 1;
                        for l in text.lines() {
                            self.feed_line(l);
                        }
                        self.flush_buffer();
                        self.include_depth -= 1;
                    }
                    Err(e) => {
                        self.errors += 1;
                        println!("error reading {arg}: {e}");
                    }
                }
            }
            other => println!(
                "unknown command {other} (try \\l \\d \\stats \\now \\i \\q)"
            ),
        }
    }

    /// Process one input line: a backslash command (only at statement
    /// start) or more statement text.
    fn feed_line(&mut self, line: &str) {
        let trimmed = line.trim();
        if self.buffer.trim().is_empty() && trimmed.starts_with('\\') {
            self.backslash(trimmed);
            return;
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        if trimmed.ends_with(';') || trimmed.ends_with("\\g") {
            self.flush_buffer();
        }
    }

    /// Run whatever is buffered (used at terminators and at EOF).
    fn flush_buffer(&mut self) {
        let text = self
            .buffer
            .trim_end()
            .trim_end_matches("\\g")
            .trim_end_matches(';')
            .trim()
            .to_string();
        self.buffer.clear();
        if !text.is_empty() {
            self.run_statement(&text);
        }
    }
}

fn prompt() {
    print!("tquel> ");
    std::io::stdout().flush().ok();
}

fn env_is(name: &str, want: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == want)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let durable = env_is("TDBMS_DURABLE", "1");
    let db = match args.next() {
        Some(dir) => {
            let opened = if durable {
                Database::open_durable(&dir)
            } else {
                Database::open(&dir)
            };
            match opened {
                Ok(mut db) => {
                    eprintln!(
                        "opened file-backed database at {dir}{}",
                        if durable { " (durable)" } else { "" }
                    );
                    if env_is("TDBMS_CHECKSUMS", "1") {
                        if let Err(e) = db.enable_checksums() {
                            eprintln!("cannot enable checksums: {e}");
                            std::process::exit(1);
                        }
                    }
                    match std::env::var("TDBMS_CHECKPOINT").as_deref() {
                        Ok("manual") => db.set_checkpoint_policy(
                            CheckpointPolicy::Manual,
                        ),
                        Ok(v) if v.starts_with("every:") => {
                            match v["every:".len()..].parse() {
                                Ok(n) => db.set_checkpoint_policy(
                                    CheckpointPolicy::EveryN(n),
                                ),
                                Err(_) => {
                                    eprintln!(
                                        "bad TDBMS_CHECKPOINT value: {v}"
                                    );
                                    std::process::exit(1);
                                }
                            }
                        }
                        _ => {}
                    }
                    db
                }
                Err(e) => {
                    eprintln!("cannot open {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Database::in_memory(),
    };
    // The terminal monitor is one session on a (shareable) engine —
    // exactly what a multi-user front end would hold per connection.
    let mut shell = Shell {
        session: tdbms::Engine::new(db).session(),
        buffer: String::new(),
        errors: 0,
        include_depth: 0,
    };

    // Suppress the prompt for piped/batch use with TDBMS_BATCH=1 (a crude
    // TTY check that avoids extra dependencies; the prompt goes to stdout
    // and is harmless when piped anyway).
    let interactive = std::env::var("TDBMS_BATCH").is_err();
    if interactive {
        eprintln!(
            "tdbms terminal monitor — TQuel statements end with `;` or \
             `\\g`; \\q quits"
        );
        prompt();
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) => {
                shell.feed_line(&l);
                if interactive && shell.buffer.trim().is_empty() {
                    prompt();
                }
            }
            Err(_) => break,
        }
    }
    // EOF mid-statement: run whatever is buffered (an unterminated
    // statement is still a statement) and exit — never wait for more
    // input that cannot come.
    shell.flush_buffer();
    std::process::exit(shell.exit_code());
}
