//! The tdbms terminal monitor: an interactive TQuel shell, in the spirit
//! of the Ingres terminal monitor the prototype's users typed at.
//!
//! ```sh
//! cargo run --bin tdbms                # in-memory session
//! cargo run --bin tdbms -- /path/dir   # file-backed (persists)
//! echo 'create static t (x = i4);' | cargo run --bin tdbms
//! ```
//!
//! Statements may span lines; they run when a line ends with `;` or `\g`
//! (Ingres-style "go"). Backslash commands:
//!
//! * `\l` — list relations
//! * `\d <rel>` — describe a relation
//! * `\stats` — page-access counters of the last statement
//! * `\now` — the transaction clock
//! * `\i <file>` — run statements from a file
//! * `\q` — quit

use std::io::{BufRead, Write};
use tdbms::{Database, Granularity};

struct Shell {
    db: Database,
    buffer: String,
}

impl Shell {
    fn describe(&self, name: &str) -> String {
        let db = &self.db;
        match db.relation_meta(name) {
            Err(e) => format!("{e}"),
            Ok(m) => {
                let mut s = String::new();
                s.push_str(&format!(
                    "{} — {} {} relation, {} organization",
                    m.name, m.class, m.kind, m.method
                ));
                if let Some(k) = &m.key {
                    s.push_str(&format!(
                        " on {k} (fillfactor {}%)",
                        m.fillfactor
                    ));
                }
                s.push_str(&format!(
                    "\n  {} stored versions, {} pages ({} scannable), \
                     row width {}",
                    m.tuple_count,
                    m.total_pages,
                    m.scannable_pages,
                    m.row_width
                ));
                if let Ok(schema) = db.schema_of(name) {
                    s.push_str("\n  attributes:");
                    for (attr, domain) in schema.iter_all() {
                        s.push_str(&format!(" {attr}={domain}"));
                    }
                }
                if !m.index_names.is_empty() {
                    s.push_str(&format!(
                        "\n  indexes: {}",
                        m.index_names.join(", ")
                    ));
                }
                s
            }
        }
    }

    fn run_statement(&mut self, text: &str) {
        match self.db.execute(text) {
            Ok(out) => {
                if !out.columns.is_empty() {
                    print!("{}", out.to_table());
                }
                println!(
                    "({} tuple(s), {} input / {} output pages)",
                    out.affected,
                    out.stats.input_pages,
                    out.stats.output_pages
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    fn backslash(&mut self, line: &str) {
        let mut parts = line.splitn(2, ' ');
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match cmd {
            "\\q" => std::process::exit(0),
            "\\l" => {
                for r in self.db.relation_names() {
                    println!("{r}");
                }
            }
            "\\d" => println!("{}", self.describe(arg)),
            "\\stats" => {
                let st = self.db.io_stats();
                println!(
                    "last statement: {} page reads, {} page writes",
                    st.total_reads(),
                    st.total_writes()
                );
            }
            "\\now" => println!(
                "{}",
                self.db.clock().now().format(Granularity::Second)
            ),
            "\\i" => match std::fs::read_to_string(arg) {
                Ok(text) => {
                    for l in text.lines() {
                        self.feed_line(l);
                    }
                    self.flush_buffer();
                }
                Err(e) => println!("error reading {arg}: {e}"),
            },
            other => println!(
                "unknown command {other} (try \\l \\d \\stats \\now \\i \\q)"
            ),
        }
    }

    /// Process one input line: a backslash command (only at statement
    /// start) or more statement text.
    fn feed_line(&mut self, line: &str) {
        let trimmed = line.trim();
        if self.buffer.trim().is_empty() && trimmed.starts_with('\\') {
            self.backslash(trimmed);
            return;
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        if trimmed.ends_with(';') || trimmed.ends_with("\\g") {
            self.flush_buffer();
        }
    }

    /// Run whatever is buffered (used at terminators and at EOF).
    fn flush_buffer(&mut self) {
        let text = self
            .buffer
            .trim_end()
            .trim_end_matches("\\g")
            .trim_end_matches(';')
            .trim()
            .to_string();
        self.buffer.clear();
        if !text.is_empty() {
            self.run_statement(&text);
        }
    }
}

fn prompt() {
    print!("tquel> ");
    std::io::stdout().flush().ok();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let db = match args.next() {
        Some(dir) => match Database::open(&dir) {
            Ok(db) => {
                eprintln!("opened file-backed database at {dir}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Database::in_memory(),
    };
    let mut shell = Shell { db, buffer: String::new() };

    // Suppress the prompt for piped/batch use with TDBMS_BATCH=1 (a crude
    // TTY check that avoids extra dependencies; the prompt goes to stdout
    // and is harmless when piped anyway).
    let interactive = std::env::var("TDBMS_BATCH").is_err();
    if interactive {
        eprintln!(
            "tdbms terminal monitor — TQuel statements end with `;` or \
             `\\g`; \\q quits"
        );
        prompt();
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) => {
                shell.feed_line(&l);
                if interactive && shell.buffer.trim().is_empty() {
                    prompt();
                }
            }
            Err(_) => break,
        }
    }
    shell.flush_buffer();
}
