//! # tdbms — a temporal database management system
//!
//! A complete, from-scratch Rust implementation of the temporal DBMS
//! prototype evaluated in Ahn & Snodgrass, *Performance Evaluation of a
//! Temporal Database Management System* (SIGMOD 1986): an Ingres-style page
//! storage engine (heap / static hashing / ISAM with overflow chains), the
//! TQuel query language, four database classes (static, rollback,
//! historical, temporal), and the paper's proposed performance enhancements
//! (two-level store and secondary indexing).
//!
//! This crate is a facade that re-exports the public API of the workspace
//! crates. Most applications only need [`Database`] and TQuel text:
//!
//! ```
//! use tdbms::Database;
//!
//! let mut db = Database::in_memory();
//! db.execute("create temporal interval emp (name = c20, salary = i4)").unwrap();
//! db.execute("append to emp (name = \"merrie\", salary = 11000)").unwrap();
//! let out = db.execute("range of e is emp retrieve (e.name, e.salary)").unwrap();
//! assert_eq!(out.rows().len(), 1);
//! ```

pub use tdbms_core::{
    AccessMethod, AccessPath, CheckpointPolicy, Database, Engine,
    ExecOutput, GroupCommitConfig, LockStats, PlanStep, PlannerMode,
    QueryPlan, QueryStats, RelStats, RelationMeta, Session, TInterval,
    SCRUB_FILE, WAL_FILE,
};
pub use tdbms_kernel::{
    AttrDef, Clock, DatabaseClass, Domain, Error, Granularity, Result,
    Schema, TemporalAttr, TemporalKind, TimeVal, Value,
};
pub use tdbms_storage::{
    BufferConfig, ChecksumSet, EvictionPolicy, HashFn, IoStats, PhaseIo,
    PAGE_SIZE, SUMS_FILE,
};
pub use tdbms_tquel as tquel;
pub use tdbms_twostore as twostore;
pub use tdbms_wal as wal;
