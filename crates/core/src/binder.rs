//! Name resolution and semantic checking.
//!
//! The binder resolves tuple variables through the session's range table
//! (built by `range of v is R` statements), attributes through the catalog,
//! and time literals against the statement's transaction time. It enforces
//! the taxonomy's applicability rules — `when`/`valid` need valid time,
//! `as of` needs transaction time — and makes TQuel's defaults explicit:
//!
//! * default `as of "now"` for any query touching a rollback or temporal
//!   relation (you see the current database state unless you roll back);
//! * default `when`: the participating tuples' valid spans intersect
//!   ("coexisted at some moment") when two or more valid-time variables
//!   participate;
//! * default `valid`: the intersection of the participating valid spans.

use crate::bound::*;
use crate::interval::TInterval;
use std::collections::HashMap;
use tdbms_kernel::{
    Domain, Error, Result, TemporalAttr, TemporalKind, TimeVal, Value,
};
use tdbms_storage::Catalog;
use tdbms_tquel::ast;

/// Statement binder; short-lived, one per executed statement.
pub struct Binder<'a> {
    /// The catalog to resolve relations against.
    pub catalog: &'a Catalog,
    /// The session range table: variable → relation name.
    pub ranges: &'a HashMap<String, String>,
    /// The statement's transaction time (resolves `"now"`).
    pub now: TimeVal,
}

impl<'a> Binder<'a> {
    /// Resolve `var`, appending it to the statement's range-table slice on
    /// first use. Returns its index.
    pub fn resolve_var(
        &self,
        var: &str,
        vars: &mut Vec<VarBinding>,
    ) -> Result<usize> {
        if let Some(i) = vars.iter().position(|v| v.var == var) {
            return Ok(i);
        }
        let rel_name = self.ranges.get(var).ok_or_else(|| {
            Error::Semantic(format!(
                "tuple variable {var:?} has no range declaration"
            ))
        })?;
        let rel = self.catalog.require(rel_name)?;
        let stored = self.catalog.get(rel);
        vars.push(VarBinding {
            var: var.to_owned(),
            rel,
            class: stored.schema.class(),
            kind: stored.schema.kind(),
        });
        Ok(vars.len() - 1)
    }

    /// Bind a scalar expression.
    pub fn bind_expr(
        &self,
        e: &ast::Expr,
        vars: &mut Vec<VarBinding>,
    ) -> Result<BExpr> {
        Ok(match e {
            ast::Expr::Int(v) => BExpr::Const(Value::Int(*v)),
            ast::Expr::Float(v) => BExpr::Const(Value::Float(*v)),
            ast::Expr::Str(s) => BExpr::Const(Value::Str(s.clone())),
            ast::Expr::Attr { var, attr } => {
                let vi = self.resolve_var(var, vars)?;
                let stored = self.catalog.get(vars[vi].rel);
                let ai = stored.schema.index_of(attr).ok_or_else(|| {
                    Error::NoSuchAttribute(format!(
                        "{var}.{attr} (relation {})",
                        stored.name
                    ))
                })?;
                BExpr::Attr { var: vi, attr: ai }
            }
            ast::Expr::Bin { op, lhs, rhs } => BExpr::Bin {
                op: *op,
                lhs: Box::new(self.bind_expr(lhs, vars)?),
                rhs: Box::new(self.bind_expr(rhs, vars)?),
            },
            ast::Expr::Neg(x) => {
                BExpr::Neg(Box::new(self.bind_expr(x, vars)?))
            }
            ast::Expr::Not(x) => {
                BExpr::Not(Box::new(self.bind_expr(x, vars)?))
            }
            ast::Expr::Agg { func, .. } => {
                return Err(Error::Semantic(format!(
                    "{}(...) is only allowed as a retrieve target",
                    func.as_str()
                )))
            }
        })
    }

    /// Resolve a time literal (`"now"`, `"forever"`, or a date/time).
    pub fn resolve_time(&self, s: &str) -> Result<TimeVal> {
        match s.trim().to_ascii_lowercase().as_str() {
            "now" => Ok(self.now),
            _ => TimeVal::parse(s),
        }
    }

    /// Bind a temporal expression. Variables must carry valid time.
    pub fn bind_texpr(
        &self,
        e: &ast::TemporalExpr,
        vars: &mut Vec<VarBinding>,
    ) -> Result<BTExpr> {
        Ok(match e {
            ast::TemporalExpr::Var(v) => {
                let vi = self.resolve_var(v, vars)?;
                if !vars[vi].class.has_valid_time() {
                    return Err(Error::NotApplicable(format!(
                        "variable {v:?} ranges over a {} relation, which \
                         carries no valid time; `when`/`valid` clauses do \
                         not apply (use `as of` for rollback)",
                        vars[vi].class
                    )));
                }
                BTExpr::Span(vi)
            }
            ast::TemporalExpr::Lit(s) => {
                BTExpr::Const(TInterval::event(self.resolve_time(s)?))
            }
            ast::TemporalExpr::Start(x) => {
                BTExpr::Start(Box::new(self.bind_texpr(x, vars)?))
            }
            ast::TemporalExpr::End(x) => {
                BTExpr::End(Box::new(self.bind_texpr(x, vars)?))
            }
            ast::TemporalExpr::Overlap(a, b) => BTExpr::Overlap(
                Box::new(self.bind_texpr(a, vars)?),
                Box::new(self.bind_texpr(b, vars)?),
            ),
            ast::TemporalExpr::Extend(a, b) => BTExpr::Extend(
                Box::new(self.bind_texpr(a, vars)?),
                Box::new(self.bind_texpr(b, vars)?),
            ),
        })
    }

    /// Bind a temporal predicate.
    pub fn bind_tpred(
        &self,
        p: &ast::TemporalPred,
        vars: &mut Vec<VarBinding>,
    ) -> Result<BTPred> {
        Ok(match p {
            ast::TemporalPred::Precede(a, b) => BTPred::Precede(
                self.bind_texpr(a, vars)?,
                self.bind_texpr(b, vars)?,
            ),
            ast::TemporalPred::Overlap(a, b) => BTPred::Overlap(
                self.bind_texpr(a, vars)?,
                self.bind_texpr(b, vars)?,
            ),
            ast::TemporalPred::Equal(a, b) => BTPred::Equal(
                self.bind_texpr(a, vars)?,
                self.bind_texpr(b, vars)?,
            ),
            ast::TemporalPred::And(a, b) => BTPred::And(
                Box::new(self.bind_tpred(a, vars)?),
                Box::new(self.bind_tpred(b, vars)?),
            ),
            ast::TemporalPred::Or(a, b) => BTPred::Or(
                Box::new(self.bind_tpred(a, vars)?),
                Box::new(self.bind_tpred(b, vars)?),
            ),
            ast::TemporalPred::Not(x) => {
                BTPred::Not(Box::new(self.bind_tpred(x, vars)?))
            }
        })
    }

    /// Evaluate a variable-free temporal expression to a constant.
    pub fn const_texpr(&self, e: &BTExpr) -> Result<TInterval> {
        Ok(match e {
            BTExpr::Const(iv) => *iv,
            BTExpr::Span(_) => {
                return Err(Error::Semantic(
                    "tuple variables are not allowed in `as of`".into(),
                ))
            }
            BTExpr::Start(x) => self.const_texpr(x)?.start(),
            BTExpr::End(x) => self.const_texpr(x)?.end(),
            BTExpr::Overlap(a, b) => {
                self.const_texpr(a)?.intersect(&self.const_texpr(b)?)
            }
            BTExpr::Extend(a, b) => {
                self.const_texpr(a)?.span(&self.const_texpr(b)?)
            }
        })
    }

    /// Infer the result domain of a bound expression.
    pub fn infer_domain(
        &self,
        e: &BExpr,
        vars: &[VarBinding],
    ) -> Result<Domain> {
        Ok(match e {
            BExpr::Const(Value::Int(_)) => Domain::I4,
            BExpr::Const(Value::Float(_)) => Domain::F8,
            BExpr::Const(Value::Str(s)) => {
                Domain::Char(s.len().clamp(1, 1000) as u16)
            }
            BExpr::Const(Value::Time(_)) => Domain::Time,
            BExpr::Attr { var, attr } => self
                .catalog
                .get(vars[*var].rel)
                .schema
                .domain_of(*attr)
                .ok_or_else(|| {
                    Error::Internal("bound attr out of range".into())
                })?,
            BExpr::Bin { op, lhs, rhs } => {
                if op.is_comparison()
                    || matches!(op, ast::BinOp::And | ast::BinOp::Or)
                {
                    Domain::I1
                } else {
                    let l = self.infer_domain(lhs, vars)?;
                    let r = self.infer_domain(rhs, vars)?;
                    if l.is_float() || r.is_float() {
                        Domain::F8
                    } else {
                        Domain::I4
                    }
                }
            }
            BExpr::Neg(x) => self.infer_domain(x, vars)?,
            BExpr::Not(_) => Domain::I1,
        })
    }

    /// Bind a retrieve statement, applying TQuel's defaults.
    pub fn bind_retrieve(
        &self,
        r: &ast::Retrieve,
    ) -> Result<BoundRetrieve> {
        let mut vars: Vec<VarBinding> = Vec::new();

        // Targets. An aggregate target groups by the non-aggregate
        // targets (a pragmatic restriction of Quel's general aggregate
        // scoping: `retrieve (e.dept, total = sum(e.salary))` groups by
        // department).
        let mut targets: Vec<BoundTarget> = Vec::new();
        for (i, t) in r.targets.iter().enumerate() {
            let (agg, expr) = match &t.expr {
                ast::Expr::Agg { func, arg } => {
                    (Some(*func), self.bind_expr(arg, &mut vars)?)
                }
                other => (None, self.bind_expr(other, &mut vars)?),
            };
            // Default names may collide (the paper's own queries project
            // `h.id` and `i.id` side by side); explicitly given names must
            // be unique, and `retrieve into` requires uniqueness of all.
            let name = match (&t.name, &t.expr) {
                (Some(n), _) => {
                    if targets.iter().any(|bt| bt.name == *n) {
                        return Err(Error::Semantic(format!(
                            "duplicate result attribute {n:?}"
                        )));
                    }
                    n.clone()
                }
                (None, ast::Expr::Attr { attr, .. }) => attr.clone(),
                (None, ast::Expr::Agg { func, .. }) => {
                    func.as_str().to_string()
                }
                (None, _) => format!("col{}", i + 1),
            };
            let arg_domain = self.infer_domain(&expr, &vars)?;
            let domain = match agg {
                None => arg_domain,
                Some(ast::AggFunc::Count) => Domain::I4,
                Some(ast::AggFunc::Avg) => Domain::F8,
                Some(ast::AggFunc::Sum) => {
                    if arg_domain.is_float() {
                        Domain::F8
                    } else {
                        Domain::I4
                    }
                }
                Some(ast::AggFunc::Min | ast::AggFunc::Max) => arg_domain,
            };
            targets.push(BoundTarget {
                name,
                domain,
                expr,
                agg,
            });
        }
        let has_agg = targets.iter().any(|t| t.agg.is_some());
        if has_agg && r.valid.is_some() {
            return Err(Error::NotApplicable(
                "a `valid` clause cannot be combined with aggregates; \
                 aggregate over a snapshot chosen with `when`"
                    .into(),
            ));
        }

        // Where clause, split into conjuncts.
        let mut where_conjuncts = Vec::new();
        if let Some(w) = &r.where_clause {
            let bound = self.bind_expr(w, &mut vars)?;
            split_conjuncts(bound, &mut where_conjuncts);
        }

        // When clause.
        let mut when_conjuncts = Vec::new();
        if let Some(w) = &r.when_clause {
            let bound = self.bind_tpred(w, &mut vars)?;
            split_tconjuncts(bound, &mut when_conjuncts);
        }

        // Valid clause.
        let mut valid = match &r.valid {
            Some(ast::ValidClause::Interval { from, to }) => Some((
                self.bind_texpr(from, &mut vars)?,
                self.bind_texpr(to, &mut vars)?,
            )),
            Some(ast::ValidClause::At(e)) => {
                let ev = self.bind_texpr(e, &mut vars)?;
                Some((ev.clone(), ev))
            }
            None => None,
        };

        // As-of clause.
        let explicit_as_of = match &r.as_of {
            Some(a) => {
                let at = self.const_texpr(
                    &self.bind_texpr(&a.at, &mut Vec::new())?,
                )?;
                let through = match &a.through {
                    Some(t) => Some(self.const_texpr(
                        &self.bind_texpr(t, &mut Vec::new())?,
                    )?),
                    None => None,
                };
                Some(Visibility {
                    at: at.lo,
                    through: through.map(|t| t.hi).unwrap_or(at.hi),
                })
            }
            None => None,
        };

        // Applicability and defaults.
        let valid_vars: Vec<usize> = (0..vars.len())
            .filter(|i| vars[*i].class.has_valid_time())
            .collect();
        let has_tx = vars.iter().any(|v| v.class.has_transaction_time());

        if explicit_as_of.is_some() && !has_tx {
            return Err(Error::NotApplicable(
                "`as of` requires a rollback or temporal relation".into(),
            ));
        }
        let visibility = if has_tx {
            Some(explicit_as_of.unwrap_or(Visibility::at(self.now)))
        } else {
            None
        };

        if valid.is_some() && valid_vars.is_empty() {
            // A valid clause over constants only is permitted (it just
            // stamps the result), but only when the query produces
            // valid-time output — i.e. at least one historical/temporal
            // variable participates, or there are no variables at all.
            if !vars.is_empty() {
                return Err(Error::NotApplicable(
                    "`valid` requires a historical or temporal relation"
                        .into(),
                ));
            }
        }

        if !valid_vars.is_empty() {
            // Default when: the participating valid spans intersect.
            if r.when_clause.is_none() && valid_vars.len() >= 2 {
                when_conjuncts.push(BTPred::Coexist(valid_vars.clone()));
            }
            // Default valid: the intersection of the participating spans
            // (suppressed for aggregates: a group has no single span).
            if valid.is_none() && !has_agg {
                let mut fold = BTExpr::Span(valid_vars[0]);
                for v in &valid_vars[1..] {
                    fold = BTExpr::Overlap(
                        Box::new(fold),
                        Box::new(BTExpr::Span(*v)),
                    );
                }
                valid = Some((
                    BTExpr::Start(Box::new(fold.clone())),
                    BTExpr::End(Box::new(fold)),
                ));
            }
        }

        if let Some(into) = &r.into {
            if self.catalog.id_of(into).is_some() {
                return Err(Error::DuplicateRelation(into.clone()));
            }
            for (i, t) in targets.iter().enumerate() {
                if targets[..i].iter().any(|u| u.name == t.name) {
                    return Err(Error::Semantic(format!(
                        "retrieve into needs unique result names; {:?} \
                         appears twice (name the targets, e.g. `x = ...`)",
                        t.name
                    )));
                }
                if !valid_vars.is_empty()
                    && (t.name == "valid_from" || t.name == "valid_to")
                {
                    return Err(Error::Semantic(format!(
                        "retrieve into cannot name a target {:?}: that \
                         column is the materialized relation's implicit \
                         valid time",
                        t.name
                    )));
                }
            }
        }

        // Sort keys resolve against result column names (including the
        // implicit valid_from/valid_to when present).
        let mut sort: Vec<(usize, bool)> = Vec::new();
        for k in &r.sort {
            let idx = targets
                .iter()
                .position(|t| t.name == k.column)
                .or_else(|| {
                    // Implicit valid columns follow the targets.
                    let has_valid = !valid_vars.is_empty() && !has_agg;
                    match (has_valid, k.column.as_str()) {
                        (true, "valid_from") => Some(targets.len()),
                        (true, "valid_to") => Some(targets.len() + 1),
                        _ => None,
                    }
                })
                .ok_or_else(|| {
                    Error::Semantic(format!(
                        "sort column {:?} is not in the target list",
                        k.column
                    ))
                })?;
            sort.push((idx, k.descending));
        }

        Ok(BoundRetrieve {
            vars,
            targets,
            where_conjuncts,
            when_conjuncts,
            valid: if valid_vars.is_empty() { None } else { valid },
            visibility,
            into: r.into.clone(),
            sort,
        })
    }
}

/// Split a bound expression on top-level `and`s.
pub fn split_conjuncts(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::Bin {
            op: ast::BinOp::And,
            lhs,
            rhs,
        } => {
            split_conjuncts(*lhs, out);
            split_conjuncts(*rhs, out);
        }
        other => out.push(other),
    }
}

/// Split a bound temporal predicate on top-level `and`s.
pub fn split_tconjuncts(p: BTPred, out: &mut Vec<BTPred>) {
    match p {
        BTPred::And(a, b) => {
            split_tconjuncts(*a, out);
            split_tconjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// The implicit valid-time span of a stored row, per its schema.
pub fn row_span(
    schema: &tdbms_kernel::Schema,
    codec: &tdbms_kernel::RowCodec,
    row: &[u8],
) -> Option<TInterval> {
    match schema.kind() {
        TemporalKind::Interval => {
            let from = schema.temporal_index(TemporalAttr::ValidFrom)?;
            let to = schema.temporal_index(TemporalAttr::ValidTo)?;
            Some(TInterval::new(
                codec.get_time(row, from),
                codec.get_time(row, to),
            ))
        }
        TemporalKind::Event => {
            let at = schema.temporal_index(TemporalAttr::ValidAt)?;
            Some(TInterval::event(codec.get_time(row, at)))
        }
    }
}

/// The transaction period of a stored row, if its schema records one.
pub fn row_tx_period(
    schema: &tdbms_kernel::Schema,
    codec: &tdbms_kernel::RowCodec,
    row: &[u8],
) -> Option<(TimeVal, TimeVal)> {
    let start = schema.temporal_index(TemporalAttr::TransactionStart)?;
    let stop = schema.temporal_index(TemporalAttr::TransactionStop)?;
    Some((codec.get_time(row, start), codec.get_time(row, stop)))
}
