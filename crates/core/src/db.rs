//! The database handle: parse → bind → execute, with the paper's
//! page-access accounting per statement.

use crate::binder::Binder;
use crate::dml;
use crate::exec::{exec_retrieve_with, QueryStats};
use crate::guard::QueryGuard;
use crate::interval::TInterval;
use std::collections::HashMap;
use std::sync::Arc;
use tdbms_kernel::{
    Clock, DatabaseClass, Domain, Error, Result, Schema, TemporalKind,
    TimeVal, Value,
};
use tdbms_plan::{PlannerMode, RelStats, StatsCatalog};
use tdbms_storage::{
    AccessMethod, BufferConfig, Catalog, ChecksumSet, ClusteredHistory,
    DiskManager, EvictionPolicy, FileDisk, FileId, HashFn, IoStats,
    KeySpec, Pager, RelId, PAGE_SIZE,
};
use tdbms_tquel::ast::Statement;
use tdbms_wal::{
    replay, CheckpointPolicy, FileLog, GroupCommit, GroupCommitConfig,
    LogHandle, LogStore, Record, Wal,
};

/// Pseudo file id under which WAL log traffic is accounted in
/// [`IoStats`] (log appends are byte streams, charged as
/// page-equivalents so `QueryStats` phases show the durability cost
/// next to the paper's per-relation metric).
pub const WAL_FILE: FileId = FileId(u32::MAX);

/// Pseudo file id under which checksum-sidecar traffic is accounted in
/// [`IoStats`] (sidecar saves are byte streams, charged as
/// page-equivalents inside a named `"scrub"` phase — the same shape as
/// WAL accounting on [`WAL_FILE`]). Scrub traffic never lands on a user
/// relation, so the paper's figures are untouched.
pub const SCRUB_FILE: FileId = FileId(u32::MAX - 1);

/// The durability engine of a WAL-enabled database.
struct WalState {
    wal: Wal,
    policy: CheckpointPolicy,
    commits_since_checkpoint: u32,
    /// Checkpoint additionally when this many log bytes accumulate
    /// since the last checkpoint (None: commit-count policy alone).
    bytes_trigger: Option<u64>,
    /// `wal.bytes_appended()` as of the last completed checkpoint
    /// (the counter is monotone across truncations).
    bytes_at_checkpoint: u64,
    /// Group-commit mode, when enabled: commits register tickets and
    /// defer the log fsync to a batching leader.
    group: Option<GroupState>,
}

/// How far a failed commit got. Everything up to and including the
/// log fsync is *pre-durability*: the statement can be rolled back
/// (its content never reached the page files — staging mode). A
/// failure after that point (the due checkpoint) left a durably
/// committed statement behind: rolling it back would lose an
/// acknowledged write, so the caller keeps the effects and degrades.
struct CommitError {
    err: Error,
    durable: bool,
}

/// Group-commit bookkeeping of a durable database.
struct GroupState {
    gc: Arc<GroupCommit>,
    log: LogHandle,
    /// The last commit's ticket and its deferred file drops, awaiting
    /// acknowledgement (the drops execute only once the commit is
    /// durable — or at a checkpoint, which durably retires everything).
    pending: Option<(u64, Vec<FileId>)>,
    /// Engine mode: the caller acknowledges after releasing the commit
    /// lock, so the leader can batch other sessions' commits meanwhile.
    defer_ack: bool,
}

/// What one executed statement produced.
#[derive(Debug, Clone, Default)]
pub struct ExecOutput {
    /// Result columns (retrieve only).
    pub columns: Vec<(String, Domain)>,
    /// Result rows (retrieve only).
    pub(crate) rows: Vec<Vec<Value>>,
    /// Page-access costs of the statement.
    pub stats: QueryStats,
    /// Tuples affected (DML) or returned (retrieve).
    pub affected: usize,
}

impl ExecOutput {
    /// The result rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Take ownership of the result rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Index of the named result column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Render the result as an aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} tuples affected)", self.affected);
        }
        let mut widths: Vec<usize> =
            self.columns.iter().map(|(n, _)| n.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, (n, _)) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", n, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// A user-facing description of a stored relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationMeta {
    /// Relation name.
    pub name: String,
    /// Database class.
    pub class: DatabaseClass,
    /// Interval or event.
    pub kind: TemporalKind,
    /// Storage organization.
    pub method: AccessMethod,
    /// Fill factor the file was built with.
    pub fillfactor: u8,
    /// Key attribute name, if keyed.
    pub key: Option<String>,
    /// Total pages including any ISAM directory.
    pub total_pages: u32,
    /// Pages a sequential scan reads.
    pub scannable_pages: u32,
    /// ISAM directory levels (0 for heap/hash).
    pub directory_levels: u32,
    /// Stored row (version) count.
    pub tuple_count: u64,
    /// Fixed row width in bytes.
    pub row_width: usize,
    /// Names of secondary indexes on this relation.
    pub index_names: Vec<String>,
}

/// Cumulative counters of the online reorganizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Completed reorganization passes that migrated at least one
    /// version.
    pub runs: u64,
    /// Versions migrated from primary files into history sidecars.
    pub rows_migrated: u64,
}

/// A temporal database: catalog + storage + session state (range table,
/// transaction clock).
pub struct Database {
    pager: Arc<Pager>,
    catalog: Catalog,
    ranges: HashMap<String, String>,
    clock: Clock,
    hashfn: HashFn,
    cold_statements: bool,
    /// Directory of a file-backed database; the catalog is checkpointed
    /// there after every statement that changes it.
    persist_dir: Option<std::path::PathBuf>,
    /// Write-ahead log, when the database was opened in durable mode.
    wal: Option<WalState>,
    /// Set when a write-path resource failure (disk full, fsync error)
    /// put the engine in read-only degraded mode. Reads keep serving;
    /// writes are refused with [`Error::Degraded`] until a re-arm
    /// (automatic on the next write admission) succeeds.
    degraded: Option<String>,
    /// Maintained per-relation statistics, refreshed after every
    /// mutating statement (metadata only — never page I/O).
    stats: StatsCatalog,
    /// Cumulative online-reorganization counters.
    reorg: ReorgStats,
    /// Which planner drives retrieve execution (env-selected;
    /// `TDBMS_PLANNER=fixed` restores the historical heuristic).
    planner: PlannerMode,
}

impl Database {
    /// An in-memory database with the paper's configuration: one buffer
    /// frame per relation, mod hashing, logical clock.
    pub fn in_memory() -> Self {
        Database::with_pager(Pager::in_memory())
    }

    /// An in-memory database with an explicit buffer configuration
    /// (frames per relation, eviction policy). `BufferConfig::paper()` is
    /// what [`Database::in_memory`] uses.
    pub fn in_memory_with_buffers(config: BufferConfig) -> Self {
        Database::with_pager(Pager::in_memory_with_config(config))
    }

    /// A file-backed database rooted at `dir`. Both the page files and the
    /// catalog persist: reopening the directory restores every relation,
    /// organization, and index (session state — the range table and clock
    /// position — does not persist; re-declare ranges and, if the workload
    /// depends on it, advance the clock past the stored history).
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let pager = Pager::new(Box::new(FileDisk::open(&dir)?));
        let catalog =
            tdbms_storage::load_catalog(&dir, &pager)?.unwrap_or_default();
        let mut db = Database::with_pager(pager);
        db.catalog = catalog;
        // Resume the transaction clock past everything already recorded,
        // so new statements never travel back in transaction time.
        if let Ok(text) = std::fs::read_to_string(dir.join("clock.tdbms")) {
            if let Ok(secs) = text.trim().parse::<u32>() {
                db.clock.advance_to(TimeVal::from_secs(secs));
            }
        }
        db.persist_dir = Some(dir);
        db.refresh_stats()?;
        Ok(db)
    }

    /// A file-backed database with crash recovery: a write-ahead log
    /// (`wal.tdbms` beside the page files) makes every statement a
    /// durable transaction. On open, committed transactions found in the
    /// log are replayed onto the page files (redo-only recovery), so a
    /// process killed at any point reopens with every committed tuple
    /// intact and nothing uncommitted visible.
    pub fn open_durable(
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Self> {
        let dir = dir.into();
        let disk = FileDisk::open(&dir)?;
        let log = FileLog::open(dir.join("wal.tdbms"))?;
        Database::open_durable_on(Box::new(disk), Box::new(log), Some(dir))
    }

    /// [`Database::open_durable`] over explicit storage backends: the
    /// crash-recovery tests reopen shared in-memory survivors, and fault
    /// injection wraps both channels here. `persist_dir` is where the
    /// catalog checkpoints (None keeps the catalog durable in the log
    /// alone).
    pub fn open_durable_on(
        mut disk: Box<dyn DiskManager>,
        log: Box<dyn LogStore>,
        persist_dir: Option<std::path::PathBuf>,
    ) -> Result<Self> {
        let (wal, plan) = Wal::open(log)?;
        replay(&plan, disk.as_mut())?;
        for f in disk.files() {
            disk.sync(f)?;
        }
        let pager = Pager::new(disk);
        pager.set_staging(true);
        let mut db = Database::with_pager(pager);
        // The last committed catalog + clock in the log supersede the
        // files on disk (a crash can strand catalog.tdbms one checkpoint
        // behind the log).
        let mut clock_text = None;
        match &plan.catalog {
            Some((clock, catalog)) => {
                db.catalog =
                    tdbms_storage::decode_catalog(catalog, &db.pager)?;
                clock_text = Some(clock.clone());
            }
            None => {
                if let Some(dir) = &persist_dir {
                    if let Some(cat) =
                        tdbms_storage::load_catalog(dir, &db.pager)?
                    {
                        db.catalog = cat;
                    }
                    clock_text =
                        std::fs::read_to_string(dir.join("clock.tdbms"))
                            .ok();
                }
            }
        }
        if let Some(text) = clock_text {
            if let Ok(secs) = text.trim().parse::<u32>() {
                db.clock.advance_to(TimeVal::from_secs(secs));
            }
        }
        db.persist_dir = persist_dir;
        db.wal = Some(WalState {
            wal,
            policy: CheckpointPolicy::EveryCommit,
            commits_since_checkpoint: 0,
            bytes_trigger: None,
            bytes_at_checkpoint: 0,
            group: None,
        });
        // Post-recovery checkpoint: the replayed state is on disk and
        // synced, so persist the catalog and truncate the log — the next
        // crash recovers from here instead of replaying history again.
        db.checkpoint_durable()?;
        db.refresh_stats()?;
        Ok(db)
    }

    /// Write the catalog to disk now (done automatically after mutating
    /// statements on a file-backed database). In durable mode this is a
    /// full WAL checkpoint.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.wal.is_some() {
            return self.checkpoint_durable();
        }
        self.pager.flush_all()?;
        if let Some(dir) = &self.persist_dir {
            // The page files must be durable before the catalog (and its
            // tuple counts / file lengths) describes them.
            self.pager.sync_all()?;
            tdbms_storage::save_catalog(&self.catalog, dir)?;
            std::fs::write(
                dir.join("clock.tdbms"),
                self.clock.now().as_secs().to_string(),
            )?;
        }
        self.persist_checksums()?;
        Ok(())
    }

    /// Save the checksum sidecar beside the page files (no-op unless
    /// checksums are on and the database is file-backed), accounting the
    /// bytes as page-equivalents on [`SCRUB_FILE`] inside a `"scrub"`
    /// phase.
    fn persist_checksums(&mut self) -> Result<()> {
        let (Some(dir), Some(sums)) =
            (self.persist_dir.clone(), self.pager.checksums_snapshot())
        else {
            return Ok(());
        };
        let bytes = sums.encode().len() as u64;
        sums.save(&dir)?;
        self.pager.begin_phase("scrub");
        self.pager
            .stats()
            .add_writes(SCRUB_FILE, bytes.div_ceil(PAGE_SIZE as u64));
        self.pager.end_phase();
        Ok(())
    }

    /// Turn on sidecar page checksums: every disk read is verified
    /// against an FNV-1a 64 sum and every disk write refreshes it. A
    /// file-backed database loads an existing `sums.tdbms` from its
    /// directory; pages without a recorded sum are adopted on first
    /// read. The default (checksums off) is the paper configuration.
    pub fn enable_checksums(&mut self) -> Result<()> {
        if self.pager.checksums_enabled() {
            return Ok(());
        }
        let sums = match &self.persist_dir {
            Some(dir) => ChecksumSet::load(dir)?.unwrap_or_default(),
            None => ChecksumSet::default(),
        };
        self.pager.set_checksums(Some(sums));
        Ok(())
    }

    /// Whether sidecar checksums are on.
    pub fn checksums_enabled(&self) -> bool {
        self.pager.checksums_enabled()
    }

    /// Bound the transient-read retry budget (see
    /// [`tdbms_storage::Pager::set_read_retries`]).
    pub fn set_read_retries(&mut self, budget: u32) {
        self.pager.set_read_retries(budget);
    }

    /// WAL checkpoint: write the staged overlay through to the page
    /// files, fsync them, persist the catalog, and truncate the log to a
    /// fresh header (plus one committed catalog transaction, so a
    /// directory-less database can still recover its schema from the log
    /// alone).
    pub fn checkpoint_durable(&mut self) -> Result<()> {
        if self.wal.is_none() {
            return self.checkpoint();
        }
        // Finish any physical repairs a rolled-back statement had to
        // defer: the checkpoint snapshots file lengths, so the files
        // must have their true shapes first.
        if self.pager.has_deferred() {
            self.pager.retry_deferred()?;
        }
        if self.wal.as_ref().is_some_and(|ws| ws.group.is_some()) {
            // Group mode: the log may hold commits appended but not
            // yet fsynced by a batching leader. Sync first — the
            // deferred drops and the overlay materialization below
            // must never get ahead of the log's durable prefix, or a
            // crash before the truncation could recover a log that no
            // longer describes the files it replays onto.
            self.wal.as_mut().expect("durable mode").wal.sync()?;
        }
        // A checkpoint durably materializes everything the log
        // describes, so deferred drops parked on an unacknowledged
        // group-commit ticket can execute now — the catalog being
        // checkpointed no longer references those files.
        let parked: Vec<FileId> = self
            .wal
            .as_mut()
            .and_then(|ws| ws.group.as_mut())
            .and_then(|g| g.pending.as_mut())
            .map(|p| std::mem::take(&mut p.1))
            .unwrap_or_default();
        for file in parked {
            // A refused drop (disk error) only strands space; park it
            // for `retry_deferred` rather than failing the checkpoint.
            if self.pager.execute_drop(file).is_err() {
                self.pager.defer_drop(file);
            }
        }
        self.pager.flush_all()?;
        let touched = self.pager.materialize_overlay()?;
        for f in touched {
            self.pager.sync_file(f)?;
        }
        self.pager.clear_staged();
        if let Some(dir) = &self.persist_dir {
            tdbms_storage::save_catalog(&self.catalog, dir)?;
            std::fs::write(
                dir.join("clock.tdbms"),
                self.clock.now().as_secs().to_string(),
            )?;
        }
        let lengths = self.pager.file_lengths()?;
        let clock = self.clock.now().as_secs().to_string();
        let catalog = tdbms_storage::encode_catalog(&self.catalog);
        let ws = self.wal.as_mut().expect("durable mode");
        // One atomic reset: header + a committed catalog transaction, so
        // the truncated log alone can always recover the schema.
        ws.wal.truncate_with(
            &lengths,
            &[
                Record::Begin,
                Record::Catalog { clock, catalog },
                Record::Commit,
            ],
        )?;
        ws.commits_since_checkpoint = 0;
        ws.bytes_at_checkpoint = ws.wal.bytes_appended();
        if let Some(g) = &ws.group {
            // The truncation above was atomic and fsynced: every
            // outstanding ticket is durable without a log fsync.
            g.gc.mark_all_durable();
        }
        self.persist_checksums()?;
        Ok(())
    }

    /// Commit the current statement's staged changes to the write-ahead
    /// log: new file lengths, every dirtied page's after-image (stamped
    /// with its LSN), deferred drops, and the catalog + clock, fenced by
    /// `Begin`/`Commit` and fsynced. Only after the log is durable do
    /// deferred file drops execute physically.
    ///
    /// Failures before the log fsync return `durable: false` — the
    /// statement is safe to roll back (its records, if any landed,
    /// have no `Commit` and recovery discards them; see the abandoned-
    /// `Begin` rule in [`tdbms_wal::RecoveryPlan::parse`]). A failure
    /// *after* the fsync — the due checkpoint — returns `durable:
    /// true`: the statement is committed and must stand.
    fn commit_durable(&mut self) -> std::result::Result<(), CommitError> {
        fn pre(err: Error) -> CommitError {
            CommitError {
                err,
                durable: false,
            }
        }
        self.pager.flush_all().map_err(pre)?;
        self.pager.begin_phase("wal");
        let resized = self.pager.take_resized().map_err(pre)?;
        let staged = self.pager.staged_pages();
        let drops = self.pager.take_pending_drops();
        let clock = self.clock.now().as_secs().to_string();
        let catalog = tdbms_storage::encode_catalog(&self.catalog);

        let ws = self.wal.as_mut().expect("durable mode");
        let before = ws.wal.bytes_appended();
        ws.wal.append(&Record::Begin).map_err(pre)?;
        for (file, len) in resized {
            ws.wal.append(&Record::FileLen { file, len }).map_err(pre)?;
        }
        for (file, page_no) in staged {
            let lsn = ws.wal.peek_lsn();
            let image = self
                .pager
                .stamp_overlay_lsn(file, page_no, lsn)
                .map_err(pre)?;
            ws.wal
                .append(&Record::PageImage {
                    file,
                    page_no,
                    image,
                })
                .map_err(pre)?;
        }
        for file in &drops {
            ws.wal
                .append(&Record::DropFile { file: *file })
                .map_err(pre)?;
        }
        ws.wal
            .append(&Record::Catalog { clock, catalog })
            .map_err(pre)?;
        ws.wal.append(&Record::Commit).map_err(pre)?;
        ws.commits_since_checkpoint += 1;
        let due = ws.policy.due(ws.commits_since_checkpoint)
            || ws.bytes_trigger.is_some_and(|n| {
                ws.wal
                    .bytes_appended()
                    .saturating_sub(ws.bytes_at_checkpoint)
                    >= n
            });
        let mut drops = drops;
        let mut group_wait = None;
        if let Some(g) = ws.group.as_mut() {
            // Group commit: issue the ticket in the same critical
            // section as the appends (ticket order = log order) and
            // leave the fsync to the batching leader. The deferred
            // drops park on the ticket — they may only touch disk once
            // the commit is durable.
            let ticket = g.gc.register();
            g.pending = Some((ticket, std::mem::take(&mut drops)));
            if due {
                // A checkpoint is due, and its leading log sync would
                // otherwise be this commit's FIRST durability point —
                // a checkpoint failure mapped to `durable: true` would
                // then acknowledge a commit that was never fsynced.
                // Wait the ticket durable now, while a sync failure
                // can still be classified pre-durability.
                group_wait = Some((g.gc.clone(), g.log.clone(), ticket));
            }
        } else {
            ws.wal.sync().map_err(pre)?;
        }
        if let Some((gc, log, ticket)) = group_wait {
            if let Err(e) = gc.wait_durable(ticket, || log.sync()) {
                // Pre-durability: the statement rolls back, so its
                // parked ticket (and the deferred drops on it) must
                // not survive to a later settle or checkpoint.
                if let Some(g) =
                    self.wal.as_mut().and_then(|ws| ws.group.as_mut())
                {
                    g.pending = None;
                }
                return Err(pre(e));
            }
        }
        // The transaction is durable: deferred drops may now touch disk
        // (in group mode the drops moved onto the pending ticket and
        // this loop is empty). A refused drop only strands space —
        // park it for retry instead of failing a durable commit.
        for file in drops {
            if self.pager.execute_drop(file).is_err() {
                self.pager.defer_drop(file);
            }
        }
        self.pager.clear_staged();
        if due {
            self.checkpoint_durable()
                .map_err(|err| CommitError { err, durable: true })?;
        }
        let ws = self.wal.as_ref().expect("durable mode");
        let delta = ws.wal.bytes_appended() - before;
        self.pager
            .stats()
            .add_writes(WAL_FILE, delta.div_ceil(PAGE_SIZE as u64));
        self.pager.end_phase();
        Ok(())
    }

    /// Whether this database was opened in durable (WAL) mode.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Switch a durable database to **group commit**: each statement
    /// appends its records and registers a ticket, and the log fsync is
    /// deferred to a group-commit leader that batches many sessions'
    /// commits into one sync (see [`tdbms_wal::GroupCommit`]). Pair
    /// with a [`CheckpointPolicy`] other than `EveryCommit` — a
    /// checkpoint after every statement syncs everything anyway, which
    /// leaves nothing to batch.
    pub fn enable_group_commit(
        &mut self,
        cfg: GroupCommitConfig,
    ) -> Result<()> {
        let Some(ws) = self.wal.as_mut() else {
            return Err(Error::NotApplicable(
                "group commit requires a durable (WAL) database".into(),
            ));
        };
        let log = ws.wal.handle();
        ws.group = Some(GroupState {
            gc: Arc::new(GroupCommit::new(cfg)),
            log,
            pending: None,
            defer_ack: false,
        });
        Ok(())
    }

    /// The group-commit queue and log handle, when group commit is on.
    pub fn group_commit(&self) -> Option<(Arc<GroupCommit>, LogHandle)> {
        let g = self.wal.as_ref()?.group.as_ref()?;
        Some((g.gc.clone(), g.log.clone()))
    }

    /// Engine mode: leave each commit's ticket pending for the caller
    /// to acknowledge *after* releasing the commit lock — that overlap
    /// is what lets the leader batch other sessions' commits.
    pub(crate) fn set_defer_group_ack(&mut self, defer: bool) {
        if let Some(g) = self.wal.as_mut().and_then(|ws| ws.group.as_mut())
        {
            g.defer_ack = defer;
        }
    }

    /// Take the last commit's pending (ticket, deferred drops), if any.
    pub(crate) fn take_pending_commit(
        &mut self,
    ) -> Option<(u64, Vec<FileId>)> {
        self.wal.as_mut()?.group.as_mut()?.pending.take()
    }

    /// Inline acknowledgement for a plain (engine-less) database in
    /// group-commit mode: wait until the last commit's ticket is
    /// durable, then execute its deferred drops.
    fn settle_group_commit(&mut self) -> Result<()> {
        let Some(g) = self.wal.as_mut().and_then(|ws| ws.group.as_mut())
        else {
            return Ok(());
        };
        if g.defer_ack {
            return Ok(());
        }
        let Some((ticket, drops)) = g.pending.take() else {
            return Ok(());
        };
        let gc = g.gc.clone();
        let log = g.log.clone();
        if let Err(e) = gc.wait_durable(ticket, || log.sync()) {
            // The batch fsync failed: the commit's durability is
            // unknown. Re-park the drops — the checkpoint that re-arms
            // writes retires them durably (never drop a logged drop).
            self.repark_drops(ticket, drops);
            return Err(e);
        }
        for file in drops {
            if self.pager.execute_drop(file).is_err() {
                self.pager.defer_drop(file);
            }
        }
        Ok(())
    }

    /// Put a commit's deferred drops back on the pending ticket after a
    /// failed durability wait (engine mode calls this from outside the
    /// commit lock; see [`settle_group_commit`] for the inline path).
    pub(crate) fn repark_drops(&mut self, ticket: u64, drops: Vec<FileId>) {
        if let Some(g) = self.wal.as_mut().and_then(|ws| ws.group.as_mut())
        {
            match &mut g.pending {
                Some((_, parked)) => parked.extend(drops),
                None => g.pending = Some((ticket, drops)),
            }
        }
    }

    /// Change when WAL checkpoints happen (durable mode only; default
    /// [`CheckpointPolicy::EveryCommit`]).
    pub fn set_checkpoint_policy(&mut self, policy: CheckpointPolicy) {
        if let Some(ws) = self.wal.as_mut() {
            ws.policy = policy;
        }
    }

    /// Additionally checkpoint whenever this many log bytes accumulate
    /// since the last checkpoint, whichever of the two triggers fires
    /// first (durable mode only; `None` or 0 disables the byte
    /// trigger). Bounds both recovery replay time and log disk usage
    /// under a commit-count policy like `EveryN`.
    pub fn set_checkpoint_every_bytes(&mut self, bytes: Option<u64>) {
        if let Some(ws) = self.wal.as_mut() {
            ws.bytes_trigger = bytes.filter(|b| *b > 0);
        }
    }

    // --- Degraded mode ---------------------------------------------------
    //
    // A write-path resource failure (disk full, fsync error) must not
    // take reads down with it: the failed statement rolls back, the
    // engine turns away *new writes* with `Error::Degraded`, and every
    // read keeps serving the last committed state. The mode is sticky
    // but recoverable — the next write admission retries the deferred
    // repairs and a checkpoint, and if the disk has recovered the
    // engine re-arms itself.

    /// Whether the engine is in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
            || self.pager.has_deferred()
            || self.group_failure().is_some()
    }

    /// Why the engine is degraded, when it is.
    pub fn degraded_reason(&self) -> Option<String> {
        if let Some(r) = &self.degraded {
            return Some(r.clone());
        }
        if self.pager.has_deferred() {
            return Some(
                "deferred rollback repairs outstanding".to_string(),
            );
        }
        self.group_failure().map(|e| e.to_string())
    }

    /// The group-commit queue's standing fsync failure, if any.
    fn group_failure(&self) -> Option<Error> {
        self.wal.as_ref()?.group.as_ref()?.gc.failure()
    }

    /// Gate a mutating statement: healthy engines pass through; a
    /// degraded engine first attempts a re-arm and only admits the
    /// write if it succeeds.
    fn admit_write(&mut self) -> Result<()> {
        if self.is_degraded() {
            self.try_rearm()?;
        }
        Ok(())
    }

    /// Attempt to leave degraded mode: finish the deferred physical
    /// repairs, then take a full checkpoint — which materializes the
    /// overlay, fsyncs everything, truncates the log, and re-arms a
    /// failed group-commit queue. The truncation resolves any commit
    /// of unknown durability to its kept in-memory outcome: a
    /// statement rolled back pre-durability vanishes for good, while
    /// one whose effects stood (a failed *settle*, surfaced as
    /// [`Error::RetryUnsafe`]) is durably persisted. On success the
    /// engine is healthy; on failure it stays degraded and reads
    /// keep serving.
    pub fn try_rearm(&mut self) -> Result<()> {
        let reason = self
            .degraded_reason()
            .unwrap_or_else(|| "degraded".to_string());
        let rearm_err = |e: Error| Error::Degraded {
            reason: format!("{reason}; re-arm failed: {e}"),
        };
        self.pager.retry_deferred().map_err(rearm_err)?;
        self.checkpoint_durable().map_err(rearm_err)?;
        self.degraded = None;
        Ok(())
    }

    /// Record a write-path failure and return the typed degraded error
    /// the client sees.
    fn enter_degraded(&mut self, e: &Error) -> Error {
        let reason = match e {
            Error::Degraded { reason } => reason.clone(),
            other => other.to_string(),
        };
        self.degraded = Some(reason.clone());
        Error::Degraded { reason }
    }

    /// Unwind a failed mutating statement: close the WAL phase, roll
    /// the pager back to the statement boundary, restore the catalog
    /// snapshot, and decide whether the failure degrades the engine
    /// (resource exhaustion does; a semantic error that slipped past
    /// binding does not).
    fn fail_write_statement(
        &mut self,
        e: Error,
        snapshot: Catalog,
    ) -> Error {
        self.pager.end_phase();
        self.pager.rollback_statement();
        self.catalog = snapshot;
        let _ = self.refresh_stats();
        if matches!(e, Error::Io(_)) || self.pager.has_deferred() {
            self.enter_degraded(&e)
        } else {
            e
        }
    }

    /// Settle a durable commit after the statement applied cleanly:
    /// classify the three outcomes (fully settled; failed before
    /// durability → roll back; failed after → effects stand, engine
    /// degrades until a re-arm).
    fn commit_write_statement(&mut self, snapshot: Catalog) -> Result<()> {
        match self.commit_durable() {
            Ok(()) => {
                self.pager.discard_statement_undo();
                if let Err(e) = self.settle_group_commit() {
                    self.pager.end_phase();
                    // The batch fsync failed *after* the undo was
                    // discarded: the effects stand (the re-arm
                    // checkpoint persists them) but durability is
                    // unknown. Degrade the engine, yet refuse the
                    // blanket-retryable `Degraded` contract — a
                    // verbatim retry would double-apply the statement.
                    let _ = self.enter_degraded(&e);
                    return Err(Error::RetryUnsafe(format!(
                        "commit durability unknown: {e}"
                    )));
                }
                Ok(())
            }
            Err(ce) if ce.durable => {
                // The commit reached the log durably; only the due
                // checkpoint failed. Returning an error for a durable
                // statement would invite unsafe retries — keep the
                // effects, surface the failure through degraded mode.
                self.pager.discard_statement_undo();
                self.pager.end_phase();
                self.degraded = Some(ce.err.to_string());
                Ok(())
            }
            Err(ce) => Err(self.fail_write_statement(ce.err, snapshot)),
        }
    }

    /// Build from a custom pager.
    pub fn with_pager(pager: Pager) -> Self {
        Database {
            pager: Arc::new(pager),
            catalog: Catalog::new(),
            ranges: HashMap::new(),
            clock: Clock::default(),
            hashfn: HashFn::Mod,
            cold_statements: true,
            persist_dir: None,
            wal: None,
            degraded: None,
            stats: StatsCatalog::default(),
            reorg: ReorgStats::default(),
            planner: PlannerMode::from_env(),
        }
    }

    /// Refresh the maintained statistics from the catalog and pager
    /// metadata (no page I/O; distinct-key counters survive).
    fn refresh_stats(&mut self) -> Result<()> {
        self.stats.refresh(&self.pager, &self.catalog)
    }

    /// Override the planner selection (tests compare the cost-based
    /// order against the fixed heuristic in-process).
    pub fn set_planner_mode(&mut self, mode: PlannerMode) {
        self.planner = mode;
    }

    /// The active planner selection.
    pub fn planner_mode(&self) -> PlannerMode {
        self.planner
    }

    /// The maintained statistics of one relation. Counts and page
    /// geometry are read fresh from the catalog; the distinct-key
    /// estimate is the incrementally maintained counter.
    pub fn relation_stats(&self, name: &str) -> Result<RelStats> {
        let meta = self.relation_meta(name)?;
        let distinct =
            self.stats.get(name).map(|s| s.distinct_keys).unwrap_or(0);
        let history = self
            .catalog
            .iter()
            .find(|(_, r)| r.name == name)
            .and_then(|(_, r)| r.history.clone());
        let (history_rows, history_pages) = match &history {
            Some(h) => (h.rows(), u64::from(h.total_pages(&self.pager)?)),
            None => (0, 0),
        };
        Ok(RelStats {
            name: meta.name,
            method: meta.method,
            tuple_count: meta.tuple_count,
            total_pages: u64::from(meta.total_pages),
            scannable_pages: u64::from(meta.scannable_pages),
            directory_levels: u64::from(meta.directory_levels),
            distinct_keys: distinct,
            row_width: meta.row_width as u64,
            history_rows,
            history_pages,
        })
    }

    /// Planner-estimated `(input, output)` pages for a program of
    /// `range` declarations and one or more retrieves (the estimate of
    /// the last retrieve is returned). Entirely side-effect free: no
    /// clock tick, no buffer invalidation, no counter reset — safe to
    /// interleave with measured sweeps without disturbing them.
    pub fn estimate_retrieve(&self, src: &str) -> Result<(u64, u64)> {
        let stmts = tdbms_tquel::parse_program(src)?;
        let mut ranges = self.ranges.clone();
        let now = self.clock.now();
        let mut last = None;
        for stmt in &stmts {
            match stmt {
                Statement::Range { var, rel } => {
                    self.catalog.require(rel)?;
                    ranges.insert(var.clone(), rel.clone());
                }
                Statement::Retrieve(r) | Statement::Explain(r) => {
                    let binder = Binder {
                        catalog: &self.catalog,
                        ranges: &ranges,
                        now,
                    };
                    let bound = binder.bind_retrieve(r)?;
                    let plan = crate::plan::plan_bound(
                        &self.catalog,
                        &self.stats,
                        &bound,
                    );
                    last = Some((plan.est_input, plan.est_output));
                }
                _ => {
                    return Err(Error::Semantic(
                        "estimate supports range/retrieve only".into(),
                    ))
                }
            }
        }
        last.ok_or_else(|| {
            Error::Semantic("no retrieve to estimate".into())
        })
    }

    /// Replace the transaction clock.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// The transaction clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Select the hash function used by subsequent `modify ... to hash`
    /// (see DESIGN.md on the Ingres-hash substitution).
    pub fn set_hash_fn(&mut self, f: HashFn) {
        self.hashfn = f;
    }

    /// Whether each statement starts with cold buffers (default true,
    /// matching the paper's per-query accounting). Turn off to measure
    /// warm-buffer behaviour.
    pub fn set_cold_statements(&mut self, cold: bool) {
        self.cold_statements = cold;
    }

    /// Enable/disable the overflow-chain Bloom guards (default off:
    /// skipping a chain walk changes input-page counts and the paper
    /// figures pin those). Filters are installed when a hash/ISAM file
    /// is (re)built, so enable before `modify` — the scale workload
    /// does.
    pub fn set_bloom_guards(&mut self, on: bool) {
        self.pager.set_bloom_guards(on);
    }

    /// Give one relation more buffer frames (the paper's configuration is
    /// one frame per relation; the two-level store experiments use more).
    pub fn set_buffer_frames(
        &mut self,
        rel: &str,
        frames: usize,
    ) -> Result<()> {
        let id = self.catalog.require(rel)?;
        let file = self.catalog.get(id).file.file_id();
        self.pager.set_buffer_frames(file, frames)
    }

    /// Change the default frames-per-file cap for every file without an
    /// explicit override — including files created later (temporaries,
    /// `into` relations) and files buffered lazily after a reopen.
    pub fn set_default_buffer_frames(&mut self, frames: usize) {
        self.pager.set_default_buffer_frames(frames);
    }

    /// Change the buffer eviction policy (paper default: LRU).
    pub fn set_eviction_policy(&mut self, policy: EvictionPolicy) {
        self.pager.set_eviction_policy(policy);
    }

    /// Cumulative page-access counters since the last statement started.
    pub fn io_stats(&self) -> &IoStats {
        self.pager.stats()
    }

    /// Names of user relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.catalog.user_relation_names()
    }

    /// Describe a relation.
    pub fn relation_meta(&self, name: &str) -> Result<RelationMeta> {
        let id = self.catalog.require(name)?;
        let rel = self.catalog.get(id);
        Ok(RelationMeta {
            name: rel.name.clone(),
            class: rel.schema.class(),
            kind: rel.schema.kind(),
            method: rel.file.method(),
            fillfactor: rel.fillfactor,
            key: rel
                .key_attr
                .and_then(|k| rel.schema.name_of(k).map(str::to_owned)),
            total_pages: rel.file.total_pages(&self.pager)?,
            scannable_pages: rel.file.scannable_pages(&self.pager)?,
            directory_levels: rel.file.directory_levels(),
            tuple_count: rel.tuple_count,
            row_width: rel.schema.row_width(),
            index_names: rel
                .indexes
                .iter()
                .map(|ix| ix.name.clone())
                .collect(),
        })
    }

    /// The schema of a relation.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        let id = self.catalog.require(name)?;
        Ok(self.catalog.get(id).schema.clone())
    }

    /// Direct low-level access for the benchmark harness and the
    /// two-level-store crate.
    #[doc(hidden)]
    pub fn internals(&mut self) -> (&Pager, &mut Catalog, &Clock) {
        (&self.pager, &mut self.catalog, &self.clock)
    }

    /// Shared view of the pager (the concurrent engine's read path).
    pub(crate) fn pager(&self) -> &Pager {
        &self.pager
    }

    /// A shared handle to the pager: the engine's lock-free snapshot
    /// reads go through this while writers hold the commit lock (every
    /// pager entry point synchronizes on its interior lock).
    pub(crate) fn pager_handle(&self) -> Arc<Pager> {
        self.pager.clone()
    }

    /// Shared view of the catalog (the concurrent engine's read path).
    pub(crate) fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Whether statements start with cold buffers.
    pub(crate) fn cold_statements(&self) -> bool {
        self.cold_statements
    }

    /// The session range table, for the engine's range swap-in.
    pub(crate) fn ranges_mut(&mut self) -> &mut HashMap<String, String> {
        &mut self.ranges
    }

    /// Bulk-load fully specified rows (explicit attributes *and* time
    /// attributes) into a relation, bypassing the parser. This is how the
    /// benchmark loads its 1024-tuple relations with randomized
    /// `transaction_start` / `valid_from` values, like the paper's
    /// modified `copy`.
    pub fn bulk_load_rows(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
    ) -> Result<usize> {
        let durable = self.wal.is_some();
        if durable {
            self.admit_write()?;
        }
        let snapshot = durable.then(|| {
            self.pager.begin_statement_undo();
            self.catalog.clone()
        });
        if let Err(e) = self.load_rows_raw(rel, rows) {
            return Err(match snapshot {
                Some(snap) => self.fail_write_statement(e, snap),
                None => e,
            });
        }
        if let Some(snap) = snapshot {
            self.commit_write_statement(snap)?;
        }
        self.refresh_stats()?;
        self.stats.note_inserted(rel, rows.len() as u64);
        Ok(rows.len())
    }

    /// The raw load loop of [`Database::bulk_load_rows`], separated so
    /// a mid-load failure unwinds through the same rollback path as a
    /// failed statement.
    fn load_rows_raw(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
    ) -> Result<()> {
        let id = self.catalog.require(rel)?;
        let codec = self.catalog.get(id).codec.clone();
        for vals in rows {
            let row = codec.encode(vals)?;
            self.catalog.get_mut(id).insert_row(&self.pager, &row)?;
        }
        self.pager.flush_all()
    }

    /// Online reorganization of one relation: migrate every
    /// transaction-stopped ("cold") version out of the primary file into
    /// the relation's clustered history sidecar, then rebuild the primary
    /// around the surviving current versions. Returns the number of
    /// versions migrated (0 when the relation is ineligible or already
    /// compact).
    ///
    /// Eligible relations have transaction time (rollback/temporal
    /// class), a primary key to cluster history by, and no secondary
    /// indexes (index entries address the primary file, and migrating
    /// their targets away would strand them). The migration appends only
    /// to *fresh* history pages and swaps the primary via
    /// build-aside-and-drop, so a concurrent snapshot reader holding the
    /// pre-reorganization catalog still sees a consistent (old) view; in
    /// durable mode the whole pass is one WAL transaction that either
    /// commits or rolls back to the statement boundary.
    pub fn reorganize(&mut self, rel: &str) -> Result<u64> {
        let durable = self.wal.is_some();
        if durable {
            self.admit_write()?;
        }
        let snapshot = durable.then(|| {
            self.pager.begin_statement_undo();
            self.catalog.clone()
        });
        let migrated = match self.reorganize_raw(rel) {
            Ok(n) => n,
            Err(e) => {
                return Err(match snapshot {
                    Some(snap) => self.fail_write_statement(e, snap),
                    None => e,
                })
            }
        };
        if let Some(snap) = snapshot {
            self.commit_write_statement(snap)?;
        } else if migrated > 0 && self.persist_dir.is_some() {
            self.checkpoint()?;
        }
        self.refresh_stats()?;
        if migrated > 0 {
            self.reorg.runs += 1;
            self.reorg.rows_migrated += migrated;
        }
        Ok(migrated)
    }

    /// Run [`Database::reorganize`] over every user relation; returns the
    /// total versions migrated.
    pub fn reorganize_all(&mut self) -> Result<u64> {
        let mut total = 0;
        for name in self.catalog.user_relation_names() {
            total += self.reorganize(&name)?;
        }
        Ok(total)
    }

    /// The cumulative online-reorganization counters.
    pub fn reorg_stats(&self) -> ReorgStats {
        self.reorg
    }

    /// The raw migration of [`Database::reorganize`], separated so a
    /// mid-pass failure unwinds through the statement rollback path.
    fn reorganize_raw(&mut self, rel: &str) -> Result<u64> {
        let id = self.catalog.require(rel)?;
        let (schema, codec, key_attr, file) = {
            let r = self.catalog.get(id);
            if !r.schema.class().has_transaction_time()
                || r.key_attr.is_none()
                || !r.indexes.is_empty()
                || r.temporary
            {
                return Ok(0);
            }
            (
                r.schema.clone(),
                r.codec.clone(),
                r.key_attr.expect("checked above"),
                r.file.clone(),
            )
        };
        // Partition the primary: cold = transaction-stopped versions.
        let mut keep: Vec<Vec<u8>> = Vec::new();
        let mut cold: Vec<(Vec<u8>, TimeVal)> = Vec::new();
        let mut cur = file.scan();
        while let Some((_, row)) = cur.next(&self.pager, &file)? {
            match crate::binder::row_tx_period(&schema, &codec, &row) {
                Some((_, stop)) if stop != TimeVal::FOREVER => {
                    cold.push((row, stop))
                }
                _ => keep.push(row),
            }
        }
        if cold.is_empty() {
            return Ok(0);
        }
        // Cold versions become a new *generation* of the history sidecar:
        // pre-existing sidecar pages are never appended to, so a snapshot
        // catalog holding the old Arc references only immutable pages.
        let key = KeySpec::for_attr(&codec, key_attr);
        let next = match &self.catalog.get(id).history {
            Some(h) => h.with_migrated(&self.pager, &cold)?,
            None => ClusteredHistory::create(
                &self.pager,
                schema.row_width(),
                key,
            )?
            .with_migrated(&self.pager, &cold)?,
        };
        {
            let r = self.catalog.get_mut(id);
            r.history = Some(Arc::new(next));
            r.rebuild_with_rows(&self.pager, &keep)?;
        }
        self.pager.flush_all()?;
        Ok(cold.len() as u64)
    }

    /// Execute a TQuel program; returns the output of the **last**
    /// statement.
    pub fn execute(&mut self, src: &str) -> Result<ExecOutput> {
        let mut last = ExecOutput::default();
        for out in self.execute_all(src)? {
            last = out;
        }
        Ok(last)
    }

    /// Execute a TQuel program; returns every statement's output.
    pub fn execute_all(&mut self, src: &str) -> Result<Vec<ExecOutput>> {
        let stmts = tdbms_tquel::parse_program(src)?;
        if stmts.is_empty() {
            return Err(Error::Semantic("empty program".into()));
        }
        stmts.iter().map(|s| self.execute_statement(s)).collect()
    }

    /// Execute one parsed statement.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
    ) -> Result<ExecOutput> {
        self.execute_statement_guarded(stmt, &QueryGuard::none())
    }

    /// Execute one parsed statement under the caller's per-query limits.
    ///
    /// Reads poll the guard at row granularity. Writes are checked once
    /// here, at admission: a mutating statement that has begun applying
    /// versions must finish (interrupting it would leave a half-applied
    /// statement), so timeout/cancel refuse it before it starts instead.
    pub fn execute_statement_guarded(
        &mut self,
        stmt: &Statement,
        guard: &QueryGuard,
    ) -> Result<ExecOutput> {
        guard.check_now()?;
        let mutating = !matches!(
            stmt,
            Statement::Range { .. }
                | Statement::Retrieve(tdbms_tquel::ast::Retrieve {
                    into: None,
                    ..
                })
                | Statement::Explain(_)
        );
        let durable = self.wal.is_some();
        if mutating && durable {
            self.admit_write()?;
        }
        let now = self.clock.tick();
        if self.cold_statements {
            self.pager.invalidate_buffers()?;
        }
        self.pager.reset_stats();

        // Durable mode: arm statement undo, so a write that dies
        // mid-flight (disk full) rolls back to this boundary instead
        // of poisoning the engine.
        let snapshot = (mutating && durable).then(|| {
            self.pager.begin_statement_undo();
            self.catalog.clone()
        });

        let mut out = ExecOutput::default();
        if let Err(e) = self.apply_statement(stmt, guard, now, &mut out) {
            return Err(match snapshot {
                Some(snap) => self.fail_write_statement(e, snap),
                None => e,
            });
        }

        // In durable mode every mutating statement commits through the
        // WAL before its stats are snapshotted, so the "wal" phase shows
        // up in the statement's own ledger.
        if let Some(snap) = snapshot {
            self.commit_write_statement(snap)?;
        }
        // Close any phase the executor left open, then snapshot the v2
        // ledger into the statement's stats. `hits + misses ==
        // accesses` cannot be asserted here: snapshot readers run off
        // the commit lock and may be mid-access on another thread. The
        // concurrency suites assert it at quiescence instead.
        self.pager.end_phase();
        out.stats = QueryStats {
            input_pages: self.pager.stats().total_reads(),
            output_pages: self.pager.stats().total_writes(),
            buffer_hits: self.pager.stats().total_hits(),
            evictions: self.pager.stats().total_evictions(),
            phases: self.pager.stats().phases().to_vec(),
        };
        if self.wal.is_none() && self.persist_dir.is_some() && mutating {
            self.checkpoint()?;
        }
        if mutating {
            // Metadata-only statistics refresh; appends and loads add
            // new keys, replaces/deletes only lengthen version chains.
            self.refresh_stats()?;
            match stmt {
                Statement::Append(a) => {
                    self.stats.note_inserted(&a.rel, out.affected as u64)
                }
                Statement::Copy(c) if c.from => {
                    self.stats.note_inserted(&c.rel, out.affected as u64)
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Apply one bound statement's effects (no durability, no stats
    /// snapshot — [`Database::execute_statement_guarded`] wraps this
    /// with admission, undo, and commit handling).
    fn apply_statement(
        &mut self,
        stmt: &Statement,
        guard: &QueryGuard,
        now: TimeVal,
        out: &mut ExecOutput,
    ) -> Result<()> {
        match stmt {
            Statement::Range { var, rel } => {
                self.catalog.require(rel)?;
                self.ranges.insert(var.clone(), rel.clone());
            }
            Statement::Create(c) => {
                dml::exec_create(&self.pager, &mut self.catalog, c)?;
            }
            Statement::Destroy(rel) => {
                dml::exec_destroy(&self.pager, &mut self.catalog, rel)?;
                // Drop range entries over the destroyed relation.
                self.ranges.retain(|_, r| r != rel);
            }
            Statement::Modify(m) => {
                dml::exec_modify(
                    &self.pager,
                    &mut self.catalog,
                    m,
                    self.hashfn,
                )?;
            }
            Statement::Index(i) => {
                dml::exec_index(&self.pager, &mut self.catalog, i)?;
            }
            Statement::Copy(c) => {
                let id = self.catalog.require(&c.rel)?;
                out.affected = if c.from {
                    crate::copy::copy_from(
                        &self.pager,
                        &mut self.catalog,
                        id,
                        &c.file,
                        now,
                    )?
                } else {
                    crate::copy::copy_into(
                        &self.pager,
                        &self.catalog,
                        id,
                        &c.file,
                    )?
                };
            }
            Statement::Append(a) => {
                out.affected = dml::exec_append(
                    &self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    a,
                )?;
            }
            Statement::Delete(d) => {
                out.affected = dml::exec_delete(
                    &self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    d,
                )?;
            }
            Statement::Replace(r) => {
                out.affected = dml::exec_replace(
                    &self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    r,
                )?;
            }
            Statement::Retrieve(r) => {
                let bound = {
                    let binder = Binder {
                        catalog: &self.catalog,
                        ranges: &self.ranges,
                        now,
                    };
                    binder.bind_retrieve(r)?
                };
                let plan = if self.planner == PlannerMode::Cost
                    && bound.vars.len() >= 2
                {
                    Some(crate::plan::plan_bound(
                        &self.catalog,
                        &self.stats,
                        &bound,
                    ))
                } else {
                    None
                };
                let result = exec_retrieve_with(
                    &self.pager,
                    &mut self.catalog,
                    &bound,
                    guard,
                    plan.as_ref(),
                )?;
                out.affected = result.rows.len();
                if let Some(into) = &bound.into {
                    self.materialize_into(
                        into,
                        &result.columns,
                        &result.rows,
                        bound.valid.is_some(),
                        now,
                    )?;
                } else {
                    out.columns = result.columns;
                    out.rows = result.rows;
                }
            }
            Statement::Explain(r) => {
                let bound = {
                    let binder = Binder {
                        catalog: &self.catalog,
                        ranges: &self.ranges,
                        now,
                    };
                    binder.bind_retrieve(r)?
                };
                let plan = crate::plan::plan_bound(
                    &self.catalog,
                    &self.stats,
                    &bound,
                );
                let result = exec_retrieve_with(
                    &self.pager,
                    &mut self.catalog,
                    &bound,
                    guard,
                    Some(&plan),
                )?;
                let actual_in = self.pager.stats().total_reads();
                let actual_out = self.pager.stats().total_writes();
                out.affected = result.rows.len();
                out.columns =
                    vec![("query plan".to_string(), Domain::Char(72))];
                out.rows =
                    explain_lines(&bound, &plan, actual_in, actual_out)
                        .into_iter()
                        .map(|l| vec![Value::Str(l)])
                        .collect();
            }
        }
        Ok(())
    }

    /// Create and fill the target relation of a `retrieve into`. The
    /// result is historical when the query produced valid-time output,
    /// static otherwise.
    fn materialize_into(
        &mut self,
        name: &str,
        columns: &[(String, Domain)],
        rows: &[Vec<Value>],
        has_valid: bool,
        now: TimeVal,
    ) -> Result<()> {
        let explicit_cols = if has_valid {
            &columns[..columns.len() - 2]
        } else {
            columns
        };
        let attrs: Vec<tdbms_kernel::AttrDef> = explicit_cols
            .iter()
            .map(|(n, d)| tdbms_kernel::AttrDef::new(n.clone(), *d))
            .collect();
        let class = if has_valid {
            DatabaseClass::Historical
        } else {
            DatabaseClass::Static
        };
        let schema = Schema::new(attrs, class, TemporalKind::Interval)?;
        let id = self.catalog.create_relation(&self.pager, name, schema)?;
        let (codec, schema) = {
            let rel = self.catalog.get(id);
            (rel.codec.clone(), rel.schema.clone())
        };
        for row in rows {
            let (explicit, valid) = if has_valid {
                let n = row.len();
                let lo = row[n - 2].as_time().ok_or_else(|| {
                    Error::Internal("valid_from column not a time".into())
                })?;
                let hi = row[n - 1].as_time().ok_or_else(|| {
                    Error::Internal("valid_to column not a time".into())
                })?;
                (&row[..n - 2], TInterval::new(lo, hi))
            } else {
                (&row[..], TInterval::new(now, TimeVal::FOREVER))
            };
            let stored = dml::build_stored_row(
                &schema, &codec, explicit, valid, now,
            )?;
            self.catalog.get_mut(id).insert_row(&self.pager, &stored)?;
        }
        self.pager.flush_all()?;
        Ok(())
    }

    /// Total pages of a relation (convenience for the harness).
    pub fn total_pages(&self, rel: &str) -> Result<u32> {
        Ok(self.relation_meta(rel)?.total_pages)
    }
}

/// Render an `explain` report: one text line per planned access, the
/// substitution order, and estimated vs actual page I/O.
fn explain_lines(
    bound: &crate::bound::BoundRetrieve,
    plan: &tdbms_plan::QueryPlan,
    actual_in: u64,
    actual_out: u64,
) -> Vec<String> {
    let var_name = |v: usize| bound.vars[v].var.clone();
    let mut lines = Vec::new();
    lines.push(format!("retrieve over {} variable(s)", bound.vars.len()));
    for s in &plan.steps {
        if s.detach {
            lines.push(format!(
                "detach {} ({}): {}, est {} read / {} write pages, \
                 ~{} rows",
                var_name(s.var),
                s.relation,
                s.path,
                s.est_read,
                s.est_write,
                s.est_rows
            ));
        } else {
            lines.push(format!(
                "access {} ({}): {}, est {} pages per probe, ~{} rows",
                var_name(s.var),
                s.relation,
                s.path,
                s.est_read,
                s.est_rows
            ));
        }
    }
    if bound.vars.len() >= 2 {
        let order: Vec<String> =
            plan.join_order.iter().map(|&v| var_name(v)).collect();
        lines.push(format!("substitution order: {}", order.join(", ")));
    }
    lines.push(format!(
        "estimated: {} input / {} output pages",
        plan.est_input, plan.est_output
    ));
    lines.push(format!(
        "actual: {actual_in} input / {actual_out} output pages"
    ));
    lines
}

/// Re-exported identifier type for advanced integrations.
pub type RelationId = RelId;
