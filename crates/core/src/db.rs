//! The database handle: parse → bind → execute, with the paper's
//! page-access accounting per statement.

use crate::binder::Binder;
use crate::dml;
use crate::exec::{exec_retrieve, QueryStats};
use crate::interval::TInterval;
use std::collections::HashMap;
use tdbms_kernel::{
    Clock, DatabaseClass, Domain, Error, Result, Schema, TemporalKind,
    TimeVal, Value,
};
use tdbms_storage::{
    AccessMethod, BufferConfig, Catalog, EvictionPolicy, FileDisk, HashFn,
    IoStats, Pager, RelId,
};
use tdbms_tquel::ast::Statement;

/// What one executed statement produced.
#[derive(Debug, Clone, Default)]
pub struct ExecOutput {
    /// Result columns (retrieve only).
    pub columns: Vec<(String, Domain)>,
    /// Result rows (retrieve only).
    rows: Vec<Vec<Value>>,
    /// Page-access costs of the statement.
    pub stats: QueryStats,
    /// Tuples affected (DML) or returned (retrieve).
    pub affected: usize,
}

impl ExecOutput {
    /// The result rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Take ownership of the result rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Index of the named result column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Render the result as an aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} tuples affected)", self.affected);
        }
        let mut widths: Vec<usize> =
            self.columns.iter().map(|(n, _)| n.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, (n, _)) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", n, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// A user-facing description of a stored relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationMeta {
    /// Relation name.
    pub name: String,
    /// Database class.
    pub class: DatabaseClass,
    /// Interval or event.
    pub kind: TemporalKind,
    /// Storage organization.
    pub method: AccessMethod,
    /// Fill factor the file was built with.
    pub fillfactor: u8,
    /// Key attribute name, if keyed.
    pub key: Option<String>,
    /// Total pages including any ISAM directory.
    pub total_pages: u32,
    /// Pages a sequential scan reads.
    pub scannable_pages: u32,
    /// ISAM directory levels (0 for heap/hash).
    pub directory_levels: u32,
    /// Stored row (version) count.
    pub tuple_count: u64,
    /// Fixed row width in bytes.
    pub row_width: usize,
    /// Names of secondary indexes on this relation.
    pub index_names: Vec<String>,
}

/// A temporal database: catalog + storage + session state (range table,
/// transaction clock).
pub struct Database {
    pager: Pager,
    catalog: Catalog,
    ranges: HashMap<String, String>,
    clock: Clock,
    hashfn: HashFn,
    cold_statements: bool,
    /// Directory of a file-backed database; the catalog is checkpointed
    /// there after every statement that changes it.
    persist_dir: Option<std::path::PathBuf>,
}

impl Database {
    /// An in-memory database with the paper's configuration: one buffer
    /// frame per relation, mod hashing, logical clock.
    pub fn in_memory() -> Self {
        Database::with_pager(Pager::in_memory())
    }

    /// An in-memory database with an explicit buffer configuration
    /// (frames per relation, eviction policy). `BufferConfig::paper()` is
    /// what [`Database::in_memory`] uses.
    pub fn in_memory_with_buffers(config: BufferConfig) -> Self {
        Database::with_pager(Pager::in_memory_with_config(config))
    }

    /// A file-backed database rooted at `dir`. Both the page files and the
    /// catalog persist: reopening the directory restores every relation,
    /// organization, and index (session state — the range table and clock
    /// position — does not persist; re-declare ranges and, if the workload
    /// depends on it, advance the clock past the stored history).
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let mut pager = Pager::new(Box::new(FileDisk::open(&dir)?));
        let catalog = tdbms_storage::load_catalog(&dir, &mut pager)?
            .unwrap_or_default();
        let mut db = Database::with_pager(pager);
        db.catalog = catalog;
        // Resume the transaction clock past everything already recorded,
        // so new statements never travel back in transaction time.
        if let Ok(text) = std::fs::read_to_string(dir.join("clock.tdbms")) {
            if let Ok(secs) = text.trim().parse::<u32>() {
                db.clock.advance_to(TimeVal::from_secs(secs));
            }
        }
        db.persist_dir = Some(dir);
        Ok(db)
    }

    /// Write the catalog to disk now (done automatically after mutating
    /// statements on a file-backed database).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.pager.flush_all()?;
        if let Some(dir) = &self.persist_dir {
            tdbms_storage::save_catalog(&self.catalog, dir)?;
            std::fs::write(
                dir.join("clock.tdbms"),
                self.clock.now().as_secs().to_string(),
            )?;
        }
        Ok(())
    }

    /// Build from a custom pager.
    pub fn with_pager(pager: Pager) -> Self {
        Database {
            pager,
            catalog: Catalog::new(),
            ranges: HashMap::new(),
            clock: Clock::default(),
            hashfn: HashFn::Mod,
            cold_statements: true,
            persist_dir: None,
        }
    }

    /// Replace the transaction clock.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// The transaction clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Select the hash function used by subsequent `modify ... to hash`
    /// (see DESIGN.md on the Ingres-hash substitution).
    pub fn set_hash_fn(&mut self, f: HashFn) {
        self.hashfn = f;
    }

    /// Whether each statement starts with cold buffers (default true,
    /// matching the paper's per-query accounting). Turn off to measure
    /// warm-buffer behaviour.
    pub fn set_cold_statements(&mut self, cold: bool) {
        self.cold_statements = cold;
    }

    /// Give one relation more buffer frames (the paper's configuration is
    /// one frame per relation; the two-level store experiments use more).
    pub fn set_buffer_frames(&mut self, rel: &str, frames: usize) -> Result<()> {
        let id = self.catalog.require(rel)?;
        let file = self.catalog.get(id).file.file_id();
        self.pager.set_buffer_frames(file, frames)
    }

    /// Change the default frames-per-file cap for every file without an
    /// explicit override — including files created later (temporaries,
    /// `into` relations) and files buffered lazily after a reopen.
    pub fn set_default_buffer_frames(&mut self, frames: usize) {
        self.pager.set_default_buffer_frames(frames);
    }

    /// Change the buffer eviction policy (paper default: LRU).
    pub fn set_eviction_policy(&mut self, policy: EvictionPolicy) {
        self.pager.set_eviction_policy(policy);
    }

    /// Cumulative page-access counters since the last statement started.
    pub fn io_stats(&self) -> &IoStats {
        self.pager.stats()
    }

    /// Names of user relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.catalog.user_relation_names()
    }

    /// Describe a relation.
    pub fn relation_meta(&self, name: &str) -> Result<RelationMeta> {
        let id = self.catalog.require(name)?;
        let rel = self.catalog.get(id);
        Ok(RelationMeta {
            name: rel.name.clone(),
            class: rel.schema.class(),
            kind: rel.schema.kind(),
            method: rel.file.method(),
            fillfactor: rel.fillfactor,
            key: rel
                .key_attr
                .and_then(|k| rel.schema.name_of(k).map(str::to_owned)),
            total_pages: rel.file.total_pages(&self.pager)?,
            scannable_pages: rel.file.scannable_pages(&self.pager)?,
            directory_levels: rel.file.directory_levels(),
            tuple_count: rel.tuple_count,
            row_width: rel.schema.row_width(),
            index_names: rel
                .indexes
                .iter()
                .map(|ix| ix.name.clone())
                .collect(),
        })
    }

    /// The schema of a relation.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        let id = self.catalog.require(name)?;
        Ok(self.catalog.get(id).schema.clone())
    }

    /// Direct low-level access for the benchmark harness and the
    /// two-level-store crate.
    #[doc(hidden)]
    pub fn internals(&mut self) -> (&mut Pager, &mut Catalog, &Clock) {
        (&mut self.pager, &mut self.catalog, &self.clock)
    }

    /// Bulk-load fully specified rows (explicit attributes *and* time
    /// attributes) into a relation, bypassing the parser. This is how the
    /// benchmark loads its 1024-tuple relations with randomized
    /// `transaction_start` / `valid_from` values, like the paper's
    /// modified `copy`.
    pub fn bulk_load_rows(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
    ) -> Result<usize> {
        let id = self.catalog.require(rel)?;
        let codec = self.catalog.get(id).codec.clone();
        for vals in rows {
            let row = codec.encode(vals)?;
            self.catalog.get_mut(id).insert_row(&mut self.pager, &row)?;
        }
        self.pager.flush_all()?;
        Ok(rows.len())
    }

    /// Execute a TQuel program; returns the output of the **last**
    /// statement.
    pub fn execute(&mut self, src: &str) -> Result<ExecOutput> {
        let mut last = ExecOutput::default();
        for out in self.execute_all(src)? {
            last = out;
        }
        Ok(last)
    }

    /// Execute a TQuel program; returns every statement's output.
    pub fn execute_all(&mut self, src: &str) -> Result<Vec<ExecOutput>> {
        let stmts = tdbms_tquel::parse_program(src)?;
        if stmts.is_empty() {
            return Err(Error::Semantic("empty program".into()));
        }
        stmts.iter().map(|s| self.execute_statement(s)).collect()
    }

    /// Execute one parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<ExecOutput> {
        let now = self.clock.tick();
        if self.cold_statements {
            self.pager.invalidate_buffers()?;
        }
        self.pager.reset_stats();

        let mut out = ExecOutput::default();
        match stmt {
            Statement::Range { var, rel } => {
                self.catalog.require(rel)?;
                self.ranges.insert(var.clone(), rel.clone());
            }
            Statement::Create(c) => {
                dml::exec_create(&mut self.pager, &mut self.catalog, c)?;
            }
            Statement::Destroy(rel) => {
                dml::exec_destroy(&mut self.pager, &mut self.catalog, rel)?;
                // Drop range entries over the destroyed relation.
                self.ranges.retain(|_, r| r != rel);
            }
            Statement::Modify(m) => {
                dml::exec_modify(
                    &mut self.pager,
                    &mut self.catalog,
                    m,
                    self.hashfn,
                )?;
            }
            Statement::Index(i) => {
                dml::exec_index(&mut self.pager, &mut self.catalog, i)?;
            }
            Statement::Copy(c) => {
                let id = self.catalog.require(&c.rel)?;
                out.affected = if c.from {
                    crate::copy::copy_from(
                        &mut self.pager,
                        &mut self.catalog,
                        id,
                        &c.file,
                        now,
                    )?
                } else {
                    crate::copy::copy_into(
                        &mut self.pager,
                        &self.catalog,
                        id,
                        &c.file,
                    )?
                };
            }
            Statement::Append(a) => {
                out.affected = dml::exec_append(
                    &mut self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    a,
                )?;
            }
            Statement::Delete(d) => {
                out.affected = dml::exec_delete(
                    &mut self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    d,
                )?;
            }
            Statement::Replace(r) => {
                out.affected = dml::exec_replace(
                    &mut self.pager,
                    &mut self.catalog,
                    &self.ranges,
                    now,
                    r,
                )?;
            }
            Statement::Retrieve(r) => {
                let bound = {
                    let binder = Binder {
                        catalog: &self.catalog,
                        ranges: &self.ranges,
                        now,
                    };
                    binder.bind_retrieve(r)?
                };
                let result = exec_retrieve(
                    &mut self.pager,
                    &mut self.catalog,
                    &bound,
                )?;
                out.affected = result.rows.len();
                if let Some(into) = &bound.into {
                    self.materialize_into(
                        into,
                        &result.columns,
                        &result.rows,
                        bound.valid.is_some(),
                        now,
                    )?;
                } else {
                    out.columns = result.columns;
                    out.rows = result.rows;
                }
            }
        }

        // Close any phase the executor left open, then snapshot the v2
        // ledger into the statement's stats.
        self.pager.end_phase();
        debug_assert!(self.pager.stats().is_consistent());
        out.stats = QueryStats {
            input_pages: self.pager.stats().total_reads(),
            output_pages: self.pager.stats().total_writes(),
            buffer_hits: self.pager.stats().total_hits(),
            evictions: self.pager.stats().total_evictions(),
            phases: self.pager.stats().phases().to_vec(),
        };
        if self.persist_dir.is_some() {
            let mutating = !matches!(
                stmt,
                Statement::Range { .. }
                    | Statement::Retrieve(tdbms_tquel::ast::Retrieve {
                        into: None,
                        ..
                    })
            );
            if mutating {
                self.checkpoint()?;
            }
        }
        Ok(out)
    }

    /// Create and fill the target relation of a `retrieve into`. The
    /// result is historical when the query produced valid-time output,
    /// static otherwise.
    fn materialize_into(
        &mut self,
        name: &str,
        columns: &[(String, Domain)],
        rows: &[Vec<Value>],
        has_valid: bool,
        now: TimeVal,
    ) -> Result<()> {
        let explicit_cols =
            if has_valid { &columns[..columns.len() - 2] } else { columns };
        let attrs: Vec<tdbms_kernel::AttrDef> = explicit_cols
            .iter()
            .map(|(n, d)| tdbms_kernel::AttrDef::new(n.clone(), *d))
            .collect();
        let class = if has_valid {
            DatabaseClass::Historical
        } else {
            DatabaseClass::Static
        };
        let schema = Schema::new(attrs, class, TemporalKind::Interval)?;
        let id = self.catalog.create_relation(&mut self.pager, name, schema)?;
        let (codec, schema) = {
            let rel = self.catalog.get(id);
            (rel.codec.clone(), rel.schema.clone())
        };
        for row in rows {
            let (explicit, valid) = if has_valid {
                let n = row.len();
                let lo = row[n - 2].as_time().ok_or_else(|| {
                    Error::Internal("valid_from column not a time".into())
                })?;
                let hi = row[n - 1].as_time().ok_or_else(|| {
                    Error::Internal("valid_to column not a time".into())
                })?;
                (&row[..n - 2], TInterval::new(lo, hi))
            } else {
                (&row[..], TInterval::new(now, TimeVal::FOREVER))
            };
            let stored = dml::build_stored_row(
                &schema, &codec, explicit, valid, now,
            )?;
            self.catalog.get_mut(id).insert_row(&mut self.pager, &stored)?;
        }
        self.pager.flush_all()?;
        Ok(())
    }

    /// Total pages of a relation (convenience for the harness).
    pub fn total_pages(&self, rel: &str) -> Result<u32> {
        Ok(self.relation_meta(rel)?.total_pages)
    }
}

/// Re-exported identifier type for advanced integrations.
pub type RelationId = RelId;
