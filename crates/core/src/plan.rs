//! Bridge between the bound query representation and the
//! `tdbms-plan` cost model: resolve each tuple variable of a
//! [`BoundRetrieve`] into the [`VarFacts`] the planner consumes.
//!
//! The resolution reuses the executor's own machinery
//! ([`crate::exec::prepare`], [`crate::exec::detachable_vars`],
//! [`crate::exec::key_probe_shape`]) so the planner's view of what is
//! detachable and what is probeable can never drift from what the
//! executor actually does.

use crate::bound::BoundRetrieve;
use crate::exec::{detachable_vars, key_probe_shape, prepare, Prepared};
use crate::guard::QueryGuard;
use tdbms_plan::{plan_query, QueryPlan, RelStats, StatsCatalog, VarFacts};
use tdbms_storage::{page_capacity, Catalog, RelId};

/// Plan one bound retrieve against the maintained statistics.
pub(crate) fn plan_bound(
    catalog: &Catalog,
    stats: &StatsCatalog,
    bound: &BoundRetrieve,
) -> QueryPlan {
    let p = prepare(catalog, bound, &QueryGuard::none());
    let detachable = detachable_vars(&p);
    let facts: Vec<VarFacts> = bound
        .vars
        .iter()
        .enumerate()
        .map(|(v, vb)| {
            let name = &catalog.get(vb.rel).name;
            let rs = stats
                .get(name)
                .cloned()
                .unwrap_or_else(|| fallback_stats(catalog, vb.rel));
            let key_attr = p.rts[v].key_attr;
            let const_key_probe = has_const_probe(&p, v, key_attr);
            let const_index_probe = p.rts[v]
                .indexes
                .iter()
                .any(|ix| has_const_probe(&p, v, Some(ix.attr)));
            let join_key_probe = key_attr.is_some()
                && p.where_cj.iter().any(|(c, vs)| {
                    vs.len() >= 2
                        && vs.contains(&v)
                        && key_probe_shape(c, v, key_attr).is_some()
                });
            let has_own = p.where_cj.iter().any(|(_, vs)| vs == &[v])
                || p.when_cj.iter().any(|(_, vs)| vs == &[v]);
            VarFacts {
                var: v,
                relation: name.clone(),
                tuple_count: rs.tuple_count,
                scannable_pages: rs.scannable_pages,
                directory_levels: rs.directory_levels,
                chain_len: rs.chain_len(),
                rows_per_page: rs.rows_per_page(),
                has_own_conjunct: has_own,
                detach_blocked: has_own && !detachable.contains(&v),
                const_key_probe,
                const_index_probe,
                join_key_probe,
            }
        })
        .collect();
    plan_query(&facts)
}

/// Is a constant equality probe on `attr` available from variable `v`'s
/// own conjuncts? (During detachment nothing else is bound, so the
/// probe expression must reference no variables at all.)
fn has_const_probe(p: &Prepared, v: usize, attr: Option<usize>) -> bool {
    p.where_cj.iter().any(|(c, vs)| {
        vs == &[v]
            && key_probe_shape(c, v, attr).is_some_and(|probe| {
                let mut pv = Vec::new();
                probe.collect_vars(&mut pv);
                pv.is_empty()
            })
    })
}

/// Statistics for a relation the maintained catalog hasn't seen yet
/// (e.g. created moments ago): counts from the catalog, page geometry
/// estimated from the row width.
fn fallback_stats(catalog: &Catalog, id: RelId) -> RelStats {
    let rel = catalog.get(id);
    let rows_per_page = page_capacity(rel.schema.row_width()).max(1) as u64;
    RelStats {
        name: rel.name.clone(),
        method: rel.file.method(),
        tuple_count: rel.tuple_count,
        total_pages: rel.tuple_count.div_ceil(rows_per_page),
        scannable_pages: rel.tuple_count.div_ceil(rows_per_page).max(1),
        directory_levels: u64::from(rel.file.directory_levels()),
        distinct_keys: 0,
        row_width: rel.schema.row_width() as u64,
        history_rows: rel.history.as_ref().map(|h| h.rows()).unwrap_or(0),
        history_pages: 0,
    }
}
