//! The concurrent session engine: one shared [`Engine`] over a
//! [`Database`], many per-thread [`Session`]s.
//!
//! ## Concurrency model
//!
//! The engine wraps the database in one `Arc<RwLock<_>>` — the
//! *commit lock* — and additionally publishes a **read view**: an
//! immutable snapshot of the catalog plus the *committed watermark*
//! (the transaction clock's position after the last commit),
//! republished after every write statement. Statement classification
//! decides how a statement runs:
//!
//! * **Snapshot path** (no commit lock at all): `range` declarations
//!   over relations the view knows, and `retrieve` without `into` whose
//!   variables all carry transaction time. These execute against the
//!   published catalog snapshot and the shared pager (which has its own
//!   interior lock), filtering versions through the watermark: a row
//!   whose `transaction_start` is past the watermark belongs to a
//!   commit the view predates and is invisible, and a row being
//!   logically deleted gets a `transaction_stop` past the watermark, so
//!   it stays visible to the snapshot. Version stamps make reads
//!   race-free *by construction* — no lock, no retry loop. A
//!   multi-variable retrieve clones the view's catalog privately, so
//!   its decomposition temporaries never touch shared metadata (in
//!   durable mode this shape falls back to the exclusive path: the
//!   temporaries would be staged into concurrent writers' WAL
//!   commits).
//! * **Read path** (shared lock): retrieves the snapshot cannot serve —
//!   variables without transaction time (static/historical relations
//!   have no version stamps to filter on), `as of` times past the
//!   watermark, or a snapshot attempt that raced a concurrent DDL.
//! * **Write path** (exclusive lock, one thread at a time): everything
//!   else — DML, DDL, `copy`, and `retrieve into`. In durable mode the
//!   WAL commit happens inside the exclusive section, so commits are
//!   serialized per statement exactly as in single-threaded operation;
//!   under **group commit** (see [`Database::enable_group_commit`])
//!   only the *appends* happen under the lock — the fsync is deferred
//!   to a batching leader and acknowledged after the lock is released,
//!   which is what lets N sessions share one fsync.
//!
//! Lock order is fixed: the engine's RwLock is always taken before any
//! pager-internal lock, and never the other way around, so the pair
//! cannot deadlock.
//!
//! ## Lock poisoning
//!
//! A writer that panics mid-statement leaves the shared database in an
//! unknown state. The engine records that fact and fails **every**
//! subsequent operation with [`Error::Poisoned`] instead of silently
//! serving possibly half-applied data (which is what
//! `PoisonError::into_inner` used to do here). Reopen the database to
//! recover; in durable mode the WAL brings back the last committed
//! state.
//!
//! Each [`Session`] owns its *range table* (TQuel `range of e is emp`
//! is session state, like a cursor), so two sessions can bind the same
//! variable name to different relations. On the write path the
//! session's ranges are swapped into the database for the duration of
//! the statement, which also lets `destroy` prune only the executing
//! session's bindings.
//!
//! ## Statement statistics under concurrency
//!
//! The single-threaded [`Database`] resets the global I/O counters
//! before each statement. Readers running in parallel cannot do that
//! without clobbering each other, so the snapshot and read paths report
//! *deltas* of the (atomic, monotone) global counters instead. Within
//! one session the numbers are exact when it runs alone; while
//! neighbors run, a reader's per-statement delta may include their I/O.
//! Aggregate totals across all sessions are always exact — that
//! invariant is what the concurrency stress suite asserts.

use crate::binder::Binder;
use crate::bound::BoundRetrieve;
use crate::db::{Database, ExecOutput};
use crate::exec::{
    exec_retrieve_readonly, exec_retrieve_snapshot, QueryStats,
};
use crate::guard::QueryGuard;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;
use tdbms_kernel::{Error, Result, TimeVal};
use tdbms_plan::PlanCache;
use tdbms_storage::{Catalog, FileId, Pager};
use tdbms_tquel::ast::Statement;
use tdbms_wal::{GroupCommit, LogHandle};

/// The published snapshot lock-free reads run against: the catalog as
/// of the last committed statement, and the committed watermark that
/// version-filters every row.
struct ReadView {
    catalog: Catalog,
    watermark: TimeVal,
    cold: bool,
    /// Publication counter: bumped on every republish, carried inside
    /// the view so a cached binding and the snapshot it was bound
    /// against can never be observed out of step.
    epoch: u64,
}

fn view_of(db: &Database, epoch: u64) -> ReadView {
    ReadView {
        catalog: db.catalog().clone(),
        watermark: db.clock().now(),
        cold: db.cold_statements(),
        epoch,
    }
}

/// One cached program: the parsed statements (reusable forever — parsing
/// is pure) plus, for single-statement snapshot-served retrieves, the
/// bound form stamped with the view epoch and range table it was bound
/// under, so hot server queries skip parse *and* bind.
struct CachedProgram {
    stmts: Vec<Statement>,
    bound: Mutex<Option<CachedBound>>,
}

struct CachedBound {
    /// View publication the binding is valid for; any commit republishes
    /// the view with a new epoch, invalidating this entry.
    epoch: u64,
    /// The exact range table the statement was bound under.
    ranges: Vec<(String, String)>,
    bound: BoundRetrieve,
}

/// How many distinct statement texts the engine keeps cached.
const PLAN_CACHE_CAPACITY: usize = 128;

/// Counts of commit-lock acquisitions and snapshot (lock-free) reads —
/// the proof behind "reads don't take the commit lock".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Shared (read-side) acquisitions of the commit lock.
    pub shared: u64,
    /// Exclusive (write-side) acquisitions of the commit lock.
    pub exclusive: u64,
    /// Retrieves served entirely from the published read view, without
    /// touching the commit lock.
    pub snapshot_reads: u64,
}

#[derive(Default)]
struct LockCounters {
    shared: AtomicU64,
    exclusive: AtomicU64,
    snapshot: AtomicU64,
}

/// State shared by every clone of one engine, outside the commit lock.
struct EngineInner {
    pager: Arc<Pager>,
    view: RwLock<Arc<ReadView>>,
    /// First unrecoverable failure (lock poisoning, failed group-commit
    /// fsync); sticky — every later operation fails with it.
    failed: Mutex<Option<Error>>,
    durable: bool,
    group: Option<(Arc<GroupCommit>, LogHandle)>,
    locks: LockCounters,
    /// Publication counter feeding [`ReadView::epoch`].
    epoch: AtomicU64,
    /// Statement-text-keyed cache of parsed (and, when hot, bound)
    /// programs, shared by every session of this engine.
    plans: Mutex<PlanCache<Arc<CachedProgram>>>,
}

/// A shared, thread-safe handle over one database. Clone it (cheap) and
/// hand one clone per thread; open a [`Session`] on each.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<RwLock<Database>>,
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Wrap a database for shared use.
    pub fn new(mut db: Database) -> Self {
        let pager = db.pager_handle();
        let group = db.group_commit();
        if group.is_some() {
            // Sessions acknowledge after releasing the commit lock so
            // the group-commit leader can batch neighbors' commits.
            db.set_defer_group_ack(true);
        }
        let inner = Arc::new(EngineInner {
            pager,
            view: RwLock::new(Arc::new(view_of(&db, 0))),
            failed: Mutex::new(None),
            durable: db.wal_enabled(),
            group,
            locks: LockCounters::default(),
            epoch: AtomicU64::new(0),
            plans: Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
        });
        Engine {
            shared: Arc::new(RwLock::new(db)),
            inner,
        }
    }

    /// Open a new session (its own range table, no other state).
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            ranges: HashMap::new(),
            limits: SessionLimits::default(),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Run `f` under the shared lock (concurrent with other readers).
    ///
    /// Panics if the engine is unusable (a writer panicked, or a
    /// group-commit fsync failed); use [`Engine::try_with_read`] to
    /// handle that as an error.
    pub fn with_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        self.try_with_read(f)
            .unwrap_or_else(|e| panic!("engine unusable: {e}"))
    }

    /// Fallible [`Engine::with_read`].
    pub fn try_with_read<R>(
        &self,
        f: impl FnOnce(&Database) -> R,
    ) -> Result<R> {
        let db = self.read()?;
        Ok(f(&db))
    }

    /// Run `f` under the exclusive lock, then republish the read view
    /// and (under group commit) acknowledge the commit after the lock
    /// is released.
    ///
    /// Panics if the engine is unusable (a writer panicked, or a
    /// group-commit fsync failed); use [`Engine::try_with_write`] to
    /// handle that as an error.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.try_with_write(f)
            .unwrap_or_else(|e| panic!("engine unusable: {e}"))
    }

    /// Fallible [`Engine::with_write`].
    pub fn try_with_write<R>(
        &self,
        f: impl FnOnce(&mut Database) -> R,
    ) -> Result<R> {
        let mut db = self.write()?;
        let r = f(&mut db);
        self.publish_view(&db);
        let pending = db.take_pending_commit();
        drop(db);
        if let Some((ticket, drops)) = pending {
            self.ack_commit(ticket, drops)?;
        }
        Ok(r)
    }

    /// Commit-lock and snapshot-read counters since the engine was
    /// built.
    pub fn lock_stats(&self) -> LockStats {
        LockStats {
            shared: self.inner.locks.shared.load(Ordering::Relaxed),
            exclusive: self.inner.locks.exclusive.load(Ordering::Relaxed),
            snapshot_reads: self
                .inner
                .locks
                .snapshot
                .load(Ordering::Relaxed),
        }
    }

    /// `(commits, fsyncs)` of the group-commit queue, when group commit
    /// is on. `commits / fsyncs > 1` is the batching win.
    pub fn group_commit_stats(&self) -> Option<(u64, u64)> {
        self.inner
            .group
            .as_ref()
            .map(|(gc, _)| (gc.commits(), gc.fsyncs()))
    }

    /// Unwrap back into the database, if this is the last handle.
    pub fn try_into_database(
        self,
    ) -> std::result::Result<Database, Engine> {
        let Engine { shared, inner } = self;
        Arc::try_unwrap(shared)
            .map(|l| {
                let mut db =
                    l.into_inner().unwrap_or_else(PoisonError::into_inner);
                // Back to single-threaded use: acknowledge inline.
                db.set_defer_group_ack(false);
                db
            })
            .map_err(|shared| Engine { shared, inner })
    }

    fn read(&self) -> Result<RwLockReadGuard<'_, Database>> {
        self.check_usable()?;
        self.inner.locks.shared.fetch_add(1, Ordering::Relaxed);
        self.shared.read().map_err(|_| self.poison())
    }

    fn write(&self) -> Result<RwLockWriteGuard<'_, Database>> {
        self.check_usable()?;
        self.inner.locks.exclusive.fetch_add(1, Ordering::Relaxed);
        self.shared.write().map_err(|_| self.poison())
    }

    /// A writer panicked while holding the commit lock: the shared
    /// database may be half-applied. Record that and refuse to serve
    /// it — the old behaviour (`PoisonError::into_inner`) silently
    /// returned the possibly-inconsistent state.
    fn poison(&self) -> Error {
        self.record_failure(Error::Poisoned);
        Error::Poisoned
    }

    fn record_failure(&self, e: Error) {
        let mut failed = self
            .inner
            .failed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if failed.is_none() {
            *failed = Some(e);
        }
    }

    fn check_usable(&self) -> Result<()> {
        if let Some(e) = &*self
            .inner
            .failed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e.clone());
        }
        // The snapshot path never touches the commit lock, so it must
        // ask the lock directly whether a writer died holding it —
        // otherwise lock-free reads would sail past the poisoning.
        if self.shared.is_poisoned() {
            return Err(self.poison());
        }
        Ok(())
    }

    fn view(&self) -> Arc<ReadView> {
        self.inner
            .view
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn publish_view(&self, db: &Database) {
        // fetch_add returns the previous value; +1 gives this
        // publication a number no earlier view ever carried, so any
        // binding cached under an older epoch is dead on arrival.
        let epoch = self.inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let v = Arc::new(view_of(db, epoch));
        *self
            .inner
            .view
            .write()
            .unwrap_or_else(PoisonError::into_inner) = v;
    }

    /// `(hits, misses)` of the statement cache since the engine was
    /// built. A hit means the statement text skipped the parser (and,
    /// for hot snapshot retrieves, the binder too).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.inner
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// Look the program up by source text, parsing and caching on miss.
    /// Parse errors are returned without polluting the cache.
    fn cached_program(&self, src: &str) -> Result<Arc<CachedProgram>> {
        if let Some(prog) = self
            .inner
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(src)
        {
            return Ok(prog);
        }
        let stmts = tdbms_tquel::parse_program(src)?;
        if stmts.is_empty() {
            return Err(Error::Semantic("empty program".into()));
        }
        let prog = Arc::new(CachedProgram {
            stmts,
            bound: Mutex::new(None),
        });
        self.inner
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(src.to_string(), prog.clone());
        Ok(prog)
    }

    /// Wait for a group commit's ticket to become durable (possibly
    /// electing this thread the fsync leader), then execute its
    /// deferred file drops. Runs strictly outside the commit lock.
    fn ack_commit(&self, ticket: u64, drops: Vec<FileId>) -> Result<()> {
        let Some((gc, log)) = &self.inner.group else {
            return Ok(());
        };
        if let Err(e) = gc.wait_durable(ticket, || log.sync()) {
            // The log's durable prefix is unknown past the watermark.
            // Degrade, don't die: snapshot reads keep serving the last
            // published view, writes are refused with a typed error
            // until a checkpoint re-arms the queue. The drops go back
            // on the pending ticket so the re-arming checkpoint
            // retires them (a logged drop must eventually happen).
            match self.shared.write() {
                Ok(mut db) => db.repark_drops(ticket, drops),
                // Poisoned commit lock: still record the logged drops
                // on the pager's repairs list so `retry_deferred`
                // retires them instead of stranding files on disk.
                Err(_) => {
                    for file in drops {
                        self.inner.pager.defer_drop(file);
                    }
                }
            }
            // The statement's effects already stood (applied and
            // published before the batch sync ran), so its durability
            // is unknown — surface the non-retryable contract, not
            // `Degraded` (whose contract promises a rollback and
            // invites a verbatim retry).
            return Err(Error::RetryUnsafe(format!(
                "commit durability unknown: {e}"
            )));
        }
        for file in drops {
            if self.inner.pager.execute_drop(file).is_err() {
                self.inner.pager.defer_drop(file);
            }
        }
        Ok(())
    }

    /// Start the background reorganization daemon: a thread that
    /// periodically takes the commit lock like any other writer and
    /// compacts every eligible relation ([`Database::reorganize_all`]),
    /// migrating transaction-stopped versions into clustered history
    /// sidecars. Snapshot reads are never blocked — they run off the
    /// published view while the daemon holds the lock, exactly as they
    /// do against any other writer. A degraded engine makes the daemon
    /// skip the pass and retry next interval (reorganization is
    /// maintenance — it must never escalate a resource failure); an
    /// unusable engine (poisoned lock) ends the daemon.
    pub fn spawn_reorg_daemon(&self, interval: Duration) -> ReorgDaemon {
        let engine = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let passes = Arc::new(AtomicU64::new(0));
        let migrated = Arc::new(AtomicU64::new(0));
        let (t_stop, t_passes, t_migrated) =
            (stop.clone(), passes.clone(), migrated.clone());
        let handle = std::thread::spawn(move || {
            while !t_stop.load(Ordering::Relaxed) {
                match engine.try_with_write(|db| db.reorganize_all()) {
                    Ok(Ok(n)) => {
                        t_passes.fetch_add(1, Ordering::Relaxed);
                        t_migrated.fetch_add(n, Ordering::Relaxed);
                    }
                    // Database-level refusal (degraded mode): retry
                    // next interval, the failure is recoverable.
                    Ok(Err(_)) => {}
                    // Engine unusable: nothing left to maintain.
                    Err(_) => break,
                }
                // Sleep in slices so stop() stays responsive.
                let mut remaining = interval;
                while !t_stop.load(Ordering::Relaxed)
                    && remaining > Duration::ZERO
                {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        ReorgDaemon {
            stop,
            handle: Some(handle),
            passes,
            migrated,
        }
    }

    fn note_snapshot_read(&self) {
        self.inner.locks.snapshot.fetch_add(1, Ordering::Relaxed);
    }

    fn pager(&self) -> &Pager {
        &self.inner.pager
    }

    fn durable(&self) -> bool {
        self.inner.durable
    }
}

/// Handle to a running background reorganization thread (see
/// [`Engine::spawn_reorg_daemon`]). Dropping it stops the daemon and
/// joins the thread.
pub struct ReorgDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    passes: Arc<AtomicU64>,
    migrated: Arc<AtomicU64>,
}

impl ReorgDaemon {
    /// Completed compaction passes over the whole catalog.
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Total versions migrated to history sidecars by this daemon.
    pub fn migrated(&self) -> u64 {
        self.migrated.load(Ordering::Relaxed)
    }

    /// Signal the daemon and wait for it to finish its current pass.
    pub fn stop(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            // A panicked daemon already poisoned the engine; joining
            // must not double-panic the owner.
            let _ = h.join();
        }
    }
}

impl Drop for ReorgDaemon {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Verdict of a snapshot-read attempt: served lock-free, or which
/// locked path must handle the statement instead.
enum SnapshotAttempt {
    /// Served from the published read view, no commit lock taken.
    Served(Box<ExecOutput>),
    /// Fall back to the shared-lock read path (which may itself punt
    /// to the write path after binding).
    Locked,
    /// Known multi-variable: go straight to the exclusive path.
    Exclusive,
}

/// Per-session statement limits, applied to every statement the session
/// executes. Defaults to unlimited — the embedded single-user shape.
#[derive(Debug, Clone, Default)]
pub struct SessionLimits {
    /// Per-statement wall-clock budget; reads are interrupted mid-scan,
    /// writes are refused once the budget has already expired.
    pub timeout: Option<Duration>,
    /// Cap on rows a retrieve may produce.
    pub max_rows: Option<u64>,
    /// Refuse `copy` statements (they read/write server-local files; a
    /// network service must not offer that to remote clients).
    pub deny_copy: bool,
}

/// One thread's connection to a shared [`Engine`]. Owns the TQuel range
/// table and its guardrail state; everything else lives in the engine.
pub struct Session {
    engine: Engine,
    ranges: HashMap<String, String>,
    limits: SessionLimits,
    /// Raised by [`Session::cancel_handle`] holders (connection
    /// teardown, server shutdown); sticky until [`Session::clear_cancel`].
    cancel: Arc<AtomicBool>,
}

impl Session {
    /// The engine this session runs against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// `(hits, misses)` of the engine's statement cache — shared by all
    /// sessions, surfaced here so per-connection stats can report it.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.engine.plan_cache_stats()
    }

    /// Replace this session's statement limits.
    pub fn set_limits(&mut self, limits: SessionLimits) {
        self.limits = limits;
    }

    /// The session's current statement limits.
    pub fn limits(&self) -> &SessionLimits {
        &self.limits
    }

    /// A flag another thread may raise to interrupt this session's
    /// current (and subsequent) statements with [`Error::Canceled`].
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Lower the cancel flag so the session can execute again.
    pub fn clear_cancel(&self) {
        self.cancel.store(false, Ordering::Relaxed);
    }

    /// The guard enforcing this session's limits on one statement. The
    /// wall-clock budget starts now, so each statement of a program
    /// gets the full per-statement budget.
    fn statement_guard(&self) -> QueryGuard {
        let mut g = QueryGuard::new().with_cancel(self.cancel.clone());
        if let Some(t) = self.limits.timeout {
            g = g.with_timeout(t);
        }
        if let Some(m) = self.limits.max_rows {
            g = g.with_max_rows(m);
        }
        g
    }

    /// Execute a TQuel program; returns the output of the **last**
    /// statement.
    pub fn execute(&mut self, src: &str) -> Result<ExecOutput> {
        let mut last = ExecOutput::default();
        for out in self.execute_all(src)? {
            last = out;
        }
        Ok(last)
    }

    /// Execute a TQuel program; returns every statement's output.
    ///
    /// Programs are looked up in the engine's statement cache by source
    /// text: a repeated program skips the parser, and a repeated
    /// single-statement snapshot retrieve also skips the binder while
    /// the published view and this session's range table are unchanged.
    pub fn execute_all(&mut self, src: &str) -> Result<Vec<ExecOutput>> {
        let prog = self.engine.cached_program(src)?;
        // The bound fast-path only applies to a lone statement: in a
        // multi-statement program an earlier statement may change what
        // a later one binds to.
        let cache = if prog.stmts.len() == 1 {
            Some(&*prog)
        } else {
            None
        };
        prog.stmts
            .iter()
            .map(|s| self.execute_statement_cached(s, cache))
            .collect()
    }

    /// Execute one parsed statement, classified onto the snapshot, read,
    /// or write path.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
    ) -> Result<ExecOutput> {
        self.execute_statement_cached(stmt, None)
    }

    fn execute_statement_cached(
        &mut self,
        stmt: &Statement,
        cache: Option<&CachedProgram>,
    ) -> Result<ExecOutput> {
        let guard = self.statement_guard();
        guard.check_now()?;
        if self.limits.deny_copy && matches!(stmt, Statement::Copy(_)) {
            return Err(Error::NotApplicable(
                "copy is disabled on this session (server-local file \
                 access)"
                    .into(),
            ));
        }
        match stmt {
            Statement::Range { var, rel } => {
                self.engine.check_usable()?;
                if self.engine.view().catalog.id_of(rel).is_none() {
                    // Not in the published snapshot — consult the
                    // authoritative catalog under the shared lock
                    // before failing (the relation may be seconds old,
                    // or truly missing).
                    self.engine.try_with_read(|db| {
                        db.catalog().require(rel).map(|_| ())
                    })??;
                }
                self.ranges.insert(var.clone(), rel.clone());
                Ok(ExecOutput::default())
            }
            Statement::Retrieve(r) if r.into.is_none() => {
                match self.try_execute_snapshot(r, &guard, cache)? {
                    SnapshotAttempt::Served(out) => Ok(*out),
                    SnapshotAttempt::Exclusive => {
                        // Known multi-variable: decomposition
                        // materializes temporaries, so it needs the
                        // exclusive side — skip the shared-lock bind.
                        self.execute_write(stmt, &guard)
                    }
                    SnapshotAttempt::Locked => {
                        if let Some(out) =
                            self.try_execute_read(r, &guard)?
                        {
                            return Ok(out);
                        }
                        self.execute_write(stmt, &guard)
                    }
                }
            }
            _ => self.execute_write(stmt, &guard),
        }
    }

    /// Attempt a retrieve against the published read view, entirely off
    /// the commit lock. Returns a fallback verdict when the statement
    /// is not snapshot-eligible: a variable without transaction time
    /// has no version stamps to filter on, an `as of` past the
    /// watermark needs state the view predates, a multi-variable
    /// retrieve in durable mode would stage its temporaries into
    /// neighbors' WAL commits, and any binding or execution error is
    /// re-derived under the lock against the authoritative catalog (a
    /// concurrent `destroy`/`modify` can invalidate the snapshot's
    /// file pointers mid-read).
    fn try_execute_snapshot(
        &self,
        r: &tdbms_tquel::ast::Retrieve,
        guard: &QueryGuard,
        cache: Option<&CachedProgram>,
    ) -> Result<SnapshotAttempt> {
        self.engine.check_usable()?;
        let view = self.engine.view();
        // Binder output is a pure function of (catalog, watermark,
        // ranges). The epoch stands in for the first two — it travels
        // inside the view, so it can't be observed out of step with
        // them — and the range table is compared exactly.
        let cached_bound = cache.and_then(|prog| {
            let slot =
                prog.bound.lock().unwrap_or_else(PoisonError::into_inner);
            slot.as_ref()
                .filter(|cb| {
                    cb.epoch == view.epoch
                        && ranges_sorted(&self.ranges) == cb.ranges
                })
                .map(|cb| cb.bound.clone())
        });
        let fresh = cached_bound.is_none();
        let bound = match cached_bound {
            Some(b) => b,
            None => {
                let binder = Binder {
                    catalog: &view.catalog,
                    ranges: &self.ranges,
                    now: view.watermark,
                };
                match binder.bind_retrieve(r) {
                    Ok(b) => b,
                    Err(_) => return Ok(SnapshotAttempt::Locked),
                }
            }
        };
        let multi = bound.vars.len() >= 2;
        let locked = if multi {
            SnapshotAttempt::Exclusive
        } else {
            SnapshotAttempt::Locked
        };
        if !bound.vars.iter().all(|v| v.class.has_transaction_time()) {
            return Ok(locked);
        }
        match &bound.visibility {
            Some(vis) if vis.through <= view.watermark => {}
            _ if bound.vars.is_empty() => {}
            _ => return Ok(locked),
        }
        if multi && self.engine.durable() {
            return Ok(SnapshotAttempt::Exclusive);
        }
        let pager = self.engine.pager();
        if view.cold {
            pager.invalidate_buffers()?;
        }
        // No reset_stats here: counters are global and other sessions
        // may be mid-statement. Report monotone-counter deltas instead.
        let before = snapshot(pager.stats());
        let executed = if multi {
            let mut local = view.catalog.clone();
            exec_retrieve_snapshot(pager, &mut local, &bound, guard)
        } else {
            exec_retrieve_readonly(pager, &view.catalog, &bound, guard)
        };
        let result = match executed {
            Ok(res) => res,
            // A guard firing is final — the budget is spent, so
            // retrying under the lock would only burn more of the
            // writer's time before timing out again.
            Err(e) if QueryGuard::is_guard_error(&e) => return Err(e),
            Err(_) => return Ok(locked),
        };
        // Served successfully: remember the binding for the next run of
        // the same statement text (only worth writing when fresh).
        if fresh {
            if let Some(prog) = cache {
                *prog
                    .bound
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) =
                    Some(CachedBound {
                        epoch: view.epoch,
                        ranges: ranges_sorted(&self.ranges),
                        bound,
                    });
            }
        }
        self.engine.note_snapshot_read();
        let after = snapshot(pager.stats());
        Ok(SnapshotAttempt::Served(Box::new(ExecOutput {
            affected: result.rows.len(),
            columns: result.columns,
            rows: result.rows,
            stats: QueryStats {
                input_pages: after.0.saturating_sub(before.0),
                output_pages: after.1.saturating_sub(before.1),
                buffer_hits: after.2.saturating_sub(before.2),
                evictions: after.3.saturating_sub(before.3),
                phases: Vec::new(),
            },
        })))
    }

    /// Attempt the statement under the shared lock. Returns `Ok(None)`
    /// when the retrieve turns out to be multi-variable and must be
    /// re-run exclusively.
    fn try_execute_read(
        &mut self,
        r: &tdbms_tquel::ast::Retrieve,
        guard: &QueryGuard,
    ) -> Result<Option<ExecOutput>> {
        let db = self.engine.read()?;
        let now = db.clock().tick();
        let bound = {
            let binder = Binder {
                catalog: db.catalog(),
                ranges: &self.ranges,
                now,
            };
            binder.bind_retrieve(r)?
        };
        if bound.vars.len() >= 2 {
            return Ok(None);
        }
        if db.cold_statements() {
            db.pager().invalidate_buffers()?;
        }
        // No reset_stats here: counters are global and other readers may
        // be mid-statement. Report monotone-counter deltas instead.
        let before = snapshot(db.io_stats());
        let result = exec_retrieve_readonly(
            db.pager(),
            db.catalog(),
            &bound,
            guard,
        )?;
        let after = snapshot(db.io_stats());
        Ok(Some(ExecOutput {
            affected: result.rows.len(),
            columns: result.columns,
            rows: result.rows,
            stats: QueryStats {
                input_pages: after.0.saturating_sub(before.0),
                output_pages: after.1.saturating_sub(before.1),
                buffer_hits: after.2.saturating_sub(before.2),
                evictions: after.3.saturating_sub(before.3),
                phases: Vec::new(),
            },
        }))
    }

    /// Execute under the exclusive lock via the single-threaded engine,
    /// with this session's ranges swapped in; then republish the read
    /// view and (under group commit) acknowledge off the lock.
    fn execute_write(
        &mut self,
        stmt: &Statement,
        guard: &QueryGuard,
    ) -> Result<ExecOutput> {
        let mut db = self.engine.write()?;
        std::mem::swap(db.ranges_mut(), &mut self.ranges);
        let out = db.execute_statement_guarded(stmt, guard);
        std::mem::swap(db.ranges_mut(), &mut self.ranges);
        self.engine.publish_view(&db);
        let pending = db.take_pending_commit();
        drop(db);
        let out = out?;
        if let Some((ticket, drops)) = pending {
            self.engine.ack_commit(ticket, drops)?;
        }
        Ok(out)
    }
}

/// A session's range table in canonical (sorted) order, for exact
/// comparison against a cached binding's.
fn ranges_sorted(
    ranges: &HashMap<String, String>,
) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        ranges.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
    v.sort();
    v
}

fn snapshot(stats: &tdbms_storage::IoStats) -> (u64, u64, u64, u64) {
    (
        stats.total_reads(),
        stats.total_writes(),
        stats.total_hits(),
        stats.total_evictions(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn seeded_db() -> Database {
        let mut db = Database::in_memory();
        db.set_cold_statements(false);
        db.execute(
            "create temporal interval emp (name = c20, salary = i4)",
        )
        .unwrap();
        for i in 0..32 {
            db.execute(&format!(
                r#"append to emp (name = "e{i}", salary = {})"#,
                1000 + i
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn session_matches_database_results() {
        let mut db = seeded_db();
        let want = db
            .execute("range of e is emp\nretrieve (e.name, e.salary) where e.salary > 1010")
            .unwrap();
        let engine = Engine::new(seeded_db());
        let mut s = engine.session();
        let got = s
            .execute("range of e is emp\nretrieve (e.name, e.salary) where e.salary > 1010")
            .unwrap();
        assert_eq!(want.rows(), got.rows());
        assert_eq!(want.columns, got.columns);
        assert_eq!(want.affected, got.affected);
    }

    #[test]
    fn sessions_have_independent_range_tables() {
        let engine = Engine::new(seeded_db());
        engine.with_write(|db| {
            db.execute("create static dept (dname = c20)").unwrap();
            db.execute(r#"append to dept (dname = "eng")"#).unwrap();
        });
        let mut a = engine.session();
        let mut b = engine.session();
        a.execute("range of x is emp").unwrap();
        b.execute("range of x is dept").unwrap();
        let ra = a.execute("retrieve (x.name)").unwrap();
        let rb = b.execute("retrieve (x.dname)").unwrap();
        assert_eq!(ra.affected, 32);
        assert_eq!(rb.affected, 1);
    }

    #[test]
    fn parallel_readers_and_writers_stay_consistent() {
        let engine = Engine::new(seeded_db());
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let engine = engine.clone();
                let hits = &hits;
                scope.spawn(move || {
                    let mut s = engine.session();
                    s.execute("range of e is emp").unwrap();
                    for i in 0..16 {
                        if t == 0 && i % 4 == 0 {
                            s.execute(&format!(
                                r#"append to emp (name = "w{i}", salary = 1)"#
                            ))
                            .unwrap();
                        } else {
                            let out = s
                                .execute("retrieve (e.salary) where e.salary > 1000")
                                .unwrap();
                            hits.fetch_add(out.affected, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.load(Ordering::Relaxed) > 0);
        // Accounting survived the contention.
        engine.with_read(|db| assert!(db.io_stats().is_consistent()));
        // The writes all landed.
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        let out =
            s.execute("retrieve (e.name) where e.salary = 1").unwrap();
        assert_eq!(out.affected, 4);
    }

    #[test]
    fn temporal_reads_never_touch_the_commit_lock() {
        let engine = Engine::new(seeded_db());
        let base = engine.lock_stats();
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        for _ in 0..8 {
            s.execute("retrieve (e.salary) where e.salary > 1000")
                .unwrap();
        }
        // A temporal join is snapshot-eligible too (non-durable mode).
        s.execute("range of f is emp").unwrap();
        let joined = s
            .execute(
                "retrieve (e.name, f.name) \
                 where e.salary = 1000 and f.salary = 1001",
            )
            .unwrap();
        assert_eq!(joined.affected, 1);
        let now = engine.lock_stats();
        assert_eq!(
            now.shared, base.shared,
            "snapshot reads must not take the shared commit lock"
        );
        assert_eq!(
            now.exclusive, base.exclusive,
            "snapshot reads must not take the exclusive commit lock"
        );
        assert_eq!(now.snapshot_reads - base.snapshot_reads, 9);
    }

    #[test]
    fn repeated_statements_hit_the_plan_cache() {
        let engine = Engine::new(seeded_db());
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        let q = "retrieve (e.salary) where e.salary > 1000";
        let first = s.execute(q).unwrap();
        let (h0, m0) = engine.plan_cache_stats();
        for _ in 0..7 {
            let again = s.execute(q).unwrap();
            assert_eq!(again.rows(), first.rows());
        }
        let (h1, m1) = engine.plan_cache_stats();
        assert_eq!(h1 - h0, 7, "repeats must be cache hits");
        assert_eq!(m1, m0, "repeats must not miss");
    }

    #[test]
    fn cached_bindings_die_with_the_published_view() {
        let engine = Engine::new(seeded_db());
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        let q = "retrieve (e.name) where e.salary = 5555";
        assert_eq!(s.execute(q).unwrap().affected, 0);
        // Warm the cached binding, then commit a write that the stale
        // binding's watermark would filter out if it were replayed.
        assert_eq!(s.execute(q).unwrap().affected, 0);
        s.execute(r#"append to emp (name = "late", salary = 5555)"#)
            .unwrap();
        assert_eq!(
            s.execute(q).unwrap().affected,
            1,
            "a commit must invalidate cached bindings"
        );
    }

    #[test]
    fn cached_bindings_respect_the_session_range_table() {
        let engine = Engine::new(seeded_db());
        engine.with_write(|db| {
            db.execute(
                "create temporal interval emp2 (name = c20, salary = i4)",
            )
            .unwrap();
            db.execute(r#"append to emp2 (name = "only", salary = 1)"#)
                .unwrap();
        });
        let mut a = engine.session();
        a.execute("range of e is emp").unwrap();
        let q = "retrieve (e.name)";
        assert_eq!(a.execute(q).unwrap().affected, 32);
        assert_eq!(a.execute(q).unwrap().affected, 32); // warm
                                                        // Same statement text, different binding in a second session.
        let mut b = engine.session();
        b.execute("range of e is emp2").unwrap();
        assert_eq!(
            b.execute(q).unwrap().affected,
            1,
            "cached binding must not leak across range tables"
        );
        assert_eq!(a.execute(q).unwrap().affected, 32);
    }

    #[test]
    fn snapshot_reads_see_every_published_commit() {
        let engine = Engine::new(seeded_db());
        let mut w = engine.session();
        let mut r = engine.session();
        w.execute("range of e is emp").unwrap();
        r.execute("range of e is emp").unwrap();
        for i in 0..8 {
            w.execute(&format!(
                r#"append to emp (name = "n{i}", salary = 7777)"#
            ))
            .unwrap();
            let out = r
                .execute("retrieve (e.name) where e.salary = 7777")
                .unwrap();
            assert_eq!(out.affected, i + 1, "append {i} must be visible");
        }
    }

    #[test]
    fn writer_panic_poisons_the_engine_for_all_sessions() {
        let engine = Engine::new(seeded_db());
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.with_write(|_| panic!("writer dies mid-commit"))
            }));
        assert!(caught.is_err());
        // Every path fails loudly now: snapshot, shared, exclusive.
        let read = s.execute("retrieve (e.salary) where e.salary = 1000");
        assert_eq!(read.unwrap_err(), Error::Poisoned);
        let write = s.execute(r#"append to emp (name = "x", salary = 1)"#);
        assert_eq!(write.unwrap_err(), Error::Poisoned);
        let range = s.execute("range of q is emp");
        assert_eq!(range.unwrap_err(), Error::Poisoned);
        assert!(engine.try_with_read(|db| db.relation_names()).is_err());
    }
}
