//! The concurrent session engine: one shared [`Engine`] over a
//! [`Database`], many per-thread [`Session`]s.
//!
//! ## Concurrency model
//!
//! The engine wraps the database in one `Arc<RwLock<_>>` — the
//! *commit lock*. Statement classification decides which side of the
//! lock a statement runs on:
//!
//! * **Read path** (shared lock, arbitrarily many threads at once):
//!   single-variable `retrieve` without `into`, and `range`
//!   declarations. These touch only the catalog read-only and the pager
//!   (which has its own interior lock), so they are race-free: the
//!   stores are append-only page files and the catalog cannot change
//!   while any reader holds the shared lock.
//! * **Write path** (exclusive lock, one thread at a time): everything
//!   else — DML, DDL, `copy`, multi-variable retrieves (they
//!   materialize decomposition temporaries), and `retrieve into`. In
//!   durable mode the WAL commit happens inside the exclusive section,
//!   so commits are serialized per statement exactly as in
//!   single-threaded operation and recovery invariants carry over
//!   unchanged.
//!
//! Lock order is fixed: the engine's RwLock is always taken before any
//! pager-internal lock, and never the other way around, so the pair
//! cannot deadlock.
//!
//! Each [`Session`] owns its *range table* (TQuel `range of e is emp`
//! is session state, like a cursor), so two sessions can bind the same
//! variable name to different relations. On the write path the
//! session's ranges are swapped into the database for the duration of
//! the statement, which also lets `destroy` prune only the executing
//! session's bindings.
//!
//! ## Statement statistics under concurrency
//!
//! The single-threaded [`Database`] resets the global I/O counters
//! before each statement. Readers running in parallel cannot do that
//! without clobbering each other, so the read path reports *deltas* of
//! the (atomic, monotone) global counters instead. Within one session
//! the numbers are exact when it runs alone; while neighbors run, a
//! reader's per-statement delta may include their I/O. Aggregate totals
//! across all sessions are always exact — that invariant is what the
//! concurrency stress suite asserts.

use crate::binder::Binder;
use crate::db::{Database, ExecOutput};
use crate::exec::{exec_retrieve_readonly, QueryStats};
use std::collections::HashMap;
use std::sync::{
    Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use tdbms_kernel::Result;
use tdbms_tquel::ast::Statement;

/// A shared, thread-safe handle over one database. Clone it (cheap) and
/// hand one clone per thread; open a [`Session`] on each.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<RwLock<Database>>,
}

impl Engine {
    /// Wrap a database for shared use.
    pub fn new(db: Database) -> Self {
        Engine {
            shared: Arc::new(RwLock::new(db)),
        }
    }

    /// Open a new session (its own range table, no other state).
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            ranges: HashMap::new(),
        }
    }

    /// Run `f` under the shared lock (concurrent with other readers).
    pub fn with_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.read())
    }

    /// Run `f` under the exclusive lock.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.write())
    }

    /// Unwrap back into the database, if this is the last handle.
    pub fn try_into_database(
        self,
    ) -> std::result::Result<Database, Engine> {
        Arc::try_unwrap(self.shared)
            .map(|l| l.into_inner().unwrap_or_else(PoisonError::into_inner))
            .map_err(|shared| Engine { shared })
    }

    fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.shared.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.shared.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One thread's connection to a shared [`Engine`]. Owns the TQuel range
/// table; everything else lives in the engine.
pub struct Session {
    engine: Engine,
    ranges: HashMap<String, String>,
}

impl Session {
    /// The engine this session runs against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Execute a TQuel program; returns the output of the **last**
    /// statement.
    pub fn execute(&mut self, src: &str) -> Result<ExecOutput> {
        let mut last = ExecOutput::default();
        for out in self.execute_all(src)? {
            last = out;
        }
        Ok(last)
    }

    /// Execute a TQuel program; returns every statement's output.
    pub fn execute_all(&mut self, src: &str) -> Result<Vec<ExecOutput>> {
        let stmts = tdbms_tquel::parse_program(src)?;
        if stmts.is_empty() {
            return Err(tdbms_kernel::Error::Semantic(
                "empty program".into(),
            ));
        }
        stmts.iter().map(|s| self.execute_statement(s)).collect()
    }

    /// Execute one parsed statement, classified onto the read or write
    /// side of the commit lock.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
    ) -> Result<ExecOutput> {
        match stmt {
            Statement::Range { var, rel } => {
                self.engine.with_read(|db| db.catalog().require(rel))?;
                self.ranges.insert(var.clone(), rel.clone());
                Ok(ExecOutput::default())
            }
            Statement::Retrieve(r) if r.into.is_none() => {
                if let Some(out) = self.try_execute_read(r)? {
                    return Ok(out);
                }
                // Multi-variable: decomposition materializes temporaries,
                // so it needs the exclusive side.
                self.execute_write(stmt)
            }
            _ => self.execute_write(stmt),
        }
    }

    /// Attempt the statement under the shared lock. Returns `Ok(None)`
    /// when the retrieve turns out to be multi-variable and must be
    /// re-run exclusively.
    fn try_execute_read(
        &mut self,
        r: &tdbms_tquel::ast::Retrieve,
    ) -> Result<Option<ExecOutput>> {
        let db = self.engine.read();
        let now = db.clock().tick();
        let bound = {
            let binder = Binder {
                catalog: db.catalog(),
                ranges: &self.ranges,
                now,
            };
            binder.bind_retrieve(r)?
        };
        if bound.vars.len() >= 2 {
            return Ok(None);
        }
        if db.cold_statements() {
            db.pager().invalidate_buffers()?;
        }
        // No reset_stats here: counters are global and other readers may
        // be mid-statement. Report monotone-counter deltas instead.
        let before = snapshot(db.io_stats());
        let result =
            exec_retrieve_readonly(db.pager(), db.catalog(), &bound)?;
        let after = snapshot(db.io_stats());
        Ok(Some(ExecOutput {
            affected: result.rows.len(),
            columns: result.columns,
            rows: result.rows,
            stats: QueryStats {
                input_pages: after.0.saturating_sub(before.0),
                output_pages: after.1.saturating_sub(before.1),
                buffer_hits: after.2.saturating_sub(before.2),
                evictions: after.3.saturating_sub(before.3),
                phases: Vec::new(),
            },
        }))
    }

    /// Execute under the exclusive lock via the single-threaded engine,
    /// with this session's ranges swapped in.
    fn execute_write(&mut self, stmt: &Statement) -> Result<ExecOutput> {
        let mut db = self.engine.write();
        std::mem::swap(db.ranges_mut(), &mut self.ranges);
        let out = db.execute_statement(stmt);
        std::mem::swap(db.ranges_mut(), &mut self.ranges);
        out
    }
}

fn snapshot(stats: &tdbms_storage::IoStats) -> (u64, u64, u64, u64) {
    (
        stats.total_reads(),
        stats.total_writes(),
        stats.total_hits(),
        stats.total_evictions(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn seeded_db() -> Database {
        let mut db = Database::in_memory();
        db.set_cold_statements(false);
        db.execute(
            "create temporal interval emp (name = c20, salary = i4)",
        )
        .unwrap();
        for i in 0..32 {
            db.execute(&format!(
                r#"append to emp (name = "e{i}", salary = {})"#,
                1000 + i
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn session_matches_database_results() {
        let mut db = seeded_db();
        let want = db
            .execute("range of e is emp\nretrieve (e.name, e.salary) where e.salary > 1010")
            .unwrap();
        let engine = Engine::new(seeded_db());
        let mut s = engine.session();
        let got = s
            .execute("range of e is emp\nretrieve (e.name, e.salary) where e.salary > 1010")
            .unwrap();
        assert_eq!(want.rows(), got.rows());
        assert_eq!(want.columns, got.columns);
        assert_eq!(want.affected, got.affected);
    }

    #[test]
    fn sessions_have_independent_range_tables() {
        let engine = Engine::new(seeded_db());
        engine.with_write(|db| {
            db.execute("create static dept (dname = c20)").unwrap();
            db.execute(r#"append to dept (dname = "eng")"#).unwrap();
        });
        let mut a = engine.session();
        let mut b = engine.session();
        a.execute("range of x is emp").unwrap();
        b.execute("range of x is dept").unwrap();
        let ra = a.execute("retrieve (x.name)").unwrap();
        let rb = b.execute("retrieve (x.dname)").unwrap();
        assert_eq!(ra.affected, 32);
        assert_eq!(rb.affected, 1);
    }

    #[test]
    fn parallel_readers_and_writers_stay_consistent() {
        let engine = Engine::new(seeded_db());
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let engine = engine.clone();
                let hits = &hits;
                scope.spawn(move || {
                    let mut s = engine.session();
                    s.execute("range of e is emp").unwrap();
                    for i in 0..16 {
                        if t == 0 && i % 4 == 0 {
                            s.execute(&format!(
                                r#"append to emp (name = "w{i}", salary = 1)"#
                            ))
                            .unwrap();
                        } else {
                            let out = s
                                .execute("retrieve (e.salary) where e.salary > 1000")
                                .unwrap();
                            hits.fetch_add(out.affected, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.load(Ordering::Relaxed) > 0);
        // Accounting survived the contention.
        engine.with_read(|db| assert!(db.io_stats().is_consistent()));
        // The writes all landed.
        let mut s = engine.session();
        s.execute("range of e is emp").unwrap();
        let out =
            s.execute("retrieve (e.name) where e.salary = 1").unwrap();
        assert_eq!(out.affected, 4);
    }
}
