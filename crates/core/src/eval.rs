//! Evaluation of bound expressions over partially bound tuple variables.
//!
//! The one-variable query processor and the tuple-substitution join both
//! evaluate predicates against a set of *slots*, one per range-table
//! entry; a slot holds the variable's current relation (original or
//! temporary) and, when bound, the raw row bytes. Attributes are decoded
//! lazily — a predicate over `i4` columns never materializes the 96-byte
//! string attribute next to them.

use crate::binder::row_span;
use crate::bound::{BExpr, BTExpr, BTPred};
use crate::interval::TInterval;
use std::cmp::Ordering;
use tdbms_kernel::{Error, Result, RowCodec, Schema, Value};
use tdbms_tquel::ast::BinOp;

/// Evaluation-time state of one range-table entry.
#[derive(Debug)]
pub struct Slot {
    /// The schema the variable currently ranges over (the original
    /// relation's, or a temporary's after detachment).
    pub schema: Schema,
    /// Codec for that schema.
    pub codec: RowCodec,
    /// The bound row, if this variable is currently bound.
    pub row: Option<Vec<u8>>,
}

impl Slot {
    fn row(&self) -> Result<&[u8]> {
        self.row
            .as_deref()
            .ok_or_else(|| Error::Internal("unbound tuple variable".into()))
    }
}

/// Truthiness of a Quel value: nonzero numbers are true.
pub fn truthy(v: &Value) -> Result<bool> {
    match v {
        Value::Int(i) => Ok(*i != 0),
        Value::Float(f) => Ok(*f != 0.0),
        other => Err(Error::BadValue(format!(
            "expected a boolean (integer) value, got {other}"
        ))),
    }
}

/// Evaluate a scalar expression.
pub fn eval_expr(e: &BExpr, slots: &[Slot]) -> Result<Value> {
    match e {
        BExpr::Const(v) => Ok(v.clone()),
        BExpr::Attr { var, attr } => {
            let slot = &slots[*var];
            Ok(slot.codec.get(slot.row()?, *attr))
        }
        BExpr::Bin { op, lhs, rhs } => {
            // Short-circuit the logical operators.
            match op {
                BinOp::And => {
                    return Ok(Value::Int(
                        (truthy(&eval_expr(lhs, slots)?)?
                            && truthy(&eval_expr(rhs, slots)?)?)
                            as i64,
                    ))
                }
                BinOp::Or => {
                    return Ok(Value::Int(
                        (truthy(&eval_expr(lhs, slots)?)?
                            || truthy(&eval_expr(rhs, slots)?)?)
                            as i64,
                    ))
                }
                _ => {}
            }
            let l = eval_expr(lhs, slots)?;
            let r = eval_expr(rhs, slots)?;
            if op.is_comparison() {
                let ord = l.compare(&r).ok_or_else(|| {
                    Error::BadValue(format!("cannot compare {l} with {r}"))
                })?;
                let b = match op {
                    BinOp::Eq => ord == Ordering::Equal,
                    BinOp::Ne => ord != Ordering::Equal,
                    BinOp::Lt => ord == Ordering::Less,
                    BinOp::Le => ord != Ordering::Greater,
                    BinOp::Gt => ord == Ordering::Greater,
                    BinOp::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                return Ok(Value::Int(b as i64));
            }
            arith(*op, &l, &r)
        }
        BExpr::Neg(x) => match eval_expr(x, slots)? {
            // i64::MIN has no i64 negation; a bare `-i` would panic.
            Value::Int(i) => {
                i.checked_neg().map(Value::Int).ok_or_else(|| {
                    Error::BadValue(format!(
                        "integer overflow negating {i}"
                    ))
                })
            }
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::BadValue(format!("cannot negate {other}"))),
        },
        BExpr::Not(x) => {
            Ok(Value::Int(!truthy(&eval_expr(x, slots)?)? as i64))
        }
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(Error::BadValue(
                            "division by zero".into(),
                        ));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(Error::BadValue("mod by zero".into()));
                    }
                    // i64::MIN mod -1 overflows rem_euclid; stay checked.
                    a.checked_rem_euclid(*b)
                }
                _ => unreachable!("arith called with non-arith op"),
            };
            v.map(Value::Int).ok_or_else(|| {
                Error::BadValue(format!(
                    "integer overflow in {a} {op:?} {b}"
                ))
            })
        }
        _ => {
            let (a, b) = (
                l.as_f64().ok_or_else(|| {
                    Error::BadValue(format!("{l} is not numeric"))
                })?,
                r.as_f64().ok_or_else(|| {
                    Error::BadValue(format!("{r} is not numeric"))
                })?,
            );
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(Error::BadValue(
                            "division by zero".into(),
                        ));
                    }
                    a / b
                }
                BinOp::Mod => {
                    return Err(Error::BadValue(
                        "mod requires integer operands".into(),
                    ))
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

/// Evaluate a scalar predicate to a boolean.
pub fn eval_bool(e: &BExpr, slots: &[Slot]) -> Result<bool> {
    truthy(&eval_expr(e, slots)?)
}

/// Evaluate a temporal expression to an interval.
pub fn eval_texpr(e: &BTExpr, slots: &[Slot]) -> Result<TInterval> {
    match e {
        BTExpr::Span(v) => {
            let slot = &slots[*v];
            row_span(&slot.schema, &slot.codec, slot.row()?).ok_or_else(
                || {
                    Error::Internal(
                        "valid-time span requested of a schema without one"
                            .into(),
                    )
                },
            )
        }
        BTExpr::Const(iv) => Ok(*iv),
        BTExpr::Start(x) => Ok(eval_texpr(x, slots)?.start()),
        BTExpr::End(x) => Ok(eval_texpr(x, slots)?.end()),
        BTExpr::Overlap(a, b) => {
            Ok(eval_texpr(a, slots)?.intersect(&eval_texpr(b, slots)?))
        }
        BTExpr::Extend(a, b) => {
            Ok(eval_texpr(a, slots)?.span(&eval_texpr(b, slots)?))
        }
    }
}

/// Evaluate a temporal predicate.
pub fn eval_tpred(p: &BTPred, slots: &[Slot]) -> Result<bool> {
    Ok(match p {
        BTPred::Precede(a, b) => {
            eval_texpr(a, slots)?.precedes(&eval_texpr(b, slots)?)
        }
        BTPred::Overlap(a, b) => {
            eval_texpr(a, slots)?.overlaps(&eval_texpr(b, slots)?)
        }
        BTPred::Equal(a, b) => {
            eval_texpr(a, slots)?.equals(&eval_texpr(b, slots)?)
        }
        BTPred::And(a, b) => eval_tpred(a, slots)? && eval_tpred(b, slots)?,
        BTPred::Or(a, b) => eval_tpred(a, slots)? || eval_tpred(b, slots)?,
        BTPred::Not(x) => !eval_tpred(x, slots)?,
        BTPred::Coexist(vs) => {
            let mut iv: Option<TInterval> = None;
            for v in vs {
                let span = eval_texpr(&BTExpr::Span(*v), slots)?;
                iv = Some(match iv {
                    None => span,
                    Some(acc) => acc.intersect(&span),
                });
            }
            iv.map(|i| !i.is_empty()).unwrap_or(true)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{
        AttrDef, DatabaseClass, Domain, Schema, TemporalKind, TimeVal,
    };

    fn hist_slot(id: i64, from: u32, to: u32) -> Slot {
        let schema = Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("name", Domain::Char(8)),
            ],
            DatabaseClass::Historical,
            TemporalKind::Interval,
        )
        .unwrap();
        let codec = RowCodec::new(&schema);
        let row = codec
            .encode(&[
                Value::Int(id),
                Value::Str("x".into()),
                Value::Time(TimeVal::from_secs(from)),
                Value::Time(TimeVal::from_secs(to)),
            ])
            .unwrap();
        Slot {
            schema,
            codec,
            row: Some(row),
        }
    }

    #[test]
    fn attribute_access_and_comparison() {
        let slots = [hist_slot(42, 10, 20)];
        let e = BExpr::Bin {
            op: BinOp::Eq,
            lhs: Box::new(BExpr::Attr { var: 0, attr: 0 }),
            rhs: Box::new(BExpr::Const(Value::Int(42))),
        };
        assert!(eval_bool(&e, &slots).unwrap());
    }

    #[test]
    fn arithmetic_with_precedence_results() {
        let slots = [hist_slot(10, 0, 1)];
        // id * 2 + 1 = 21
        let e = BExpr::Bin {
            op: BinOp::Add,
            lhs: Box::new(BExpr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(BExpr::Attr { var: 0, attr: 0 }),
                rhs: Box::new(BExpr::Const(Value::Int(2))),
            }),
            rhs: Box::new(BExpr::Const(Value::Int(1))),
        };
        assert_eq!(eval_expr(&e, &slots).unwrap(), Value::Int(21));
    }

    #[test]
    fn division_and_mod_guards() {
        let slots: [Slot; 0] = [];
        let div0 = BExpr::Bin {
            op: BinOp::Div,
            lhs: Box::new(BExpr::Const(Value::Int(1))),
            rhs: Box::new(BExpr::Const(Value::Int(0))),
        };
        assert!(eval_expr(&div0, &slots).is_err());
        let m = BExpr::Bin {
            op: BinOp::Mod,
            lhs: Box::new(BExpr::Const(Value::Int(-7))),
            rhs: Box::new(BExpr::Const(Value::Int(3))),
        };
        assert_eq!(eval_expr(&m, &slots).unwrap(), Value::Int(2));
    }

    #[test]
    fn extreme_integer_arithmetic_stays_typed() {
        // Both used to panic with a debug overflow / remainder overflow,
        // which a remote client could trigger from a statement string.
        let slots: [Slot; 0] = [];
        let neg_min =
            BExpr::Neg(Box::new(BExpr::Const(Value::Int(i64::MIN))));
        assert!(matches!(
            eval_expr(&neg_min, &slots),
            Err(Error::BadValue(_))
        ));
        let min_mod_neg1 = BExpr::Bin {
            op: BinOp::Mod,
            lhs: Box::new(BExpr::Const(Value::Int(i64::MIN))),
            rhs: Box::new(BExpr::Const(Value::Int(-1))),
        };
        assert!(matches!(
            eval_expr(&min_mod_neg1, &slots),
            Err(Error::BadValue(_))
        ));
        // Ordinary negation still works.
        let neg = BExpr::Neg(Box::new(BExpr::Const(Value::Int(7))));
        assert_eq!(eval_expr(&neg, &slots).unwrap(), Value::Int(-7));
    }

    #[test]
    fn mixed_numeric_promotes_to_float() {
        let slots: [Slot; 0] = [];
        let e = BExpr::Bin {
            op: BinOp::Add,
            lhs: Box::new(BExpr::Const(Value::Int(1))),
            rhs: Box::new(BExpr::Const(Value::Float(0.5))),
        };
        assert_eq!(eval_expr(&e, &slots).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn span_and_temporal_predicates() {
        let slots = [hist_slot(1, 10, 20), hist_slot(2, 15, 30)];
        let overlap = BTPred::Overlap(BTExpr::Span(0), BTExpr::Span(1));
        assert!(eval_tpred(&overlap, &slots).unwrap());
        let precede = BTPred::Precede(BTExpr::Span(0), BTExpr::Span(1));
        assert!(!eval_tpred(&precede, &slots).unwrap());
        let coexist = BTPred::Coexist(vec![0, 1]);
        assert!(eval_tpred(&coexist, &slots).unwrap());
        let apart = [hist_slot(1, 10, 12), hist_slot(2, 20, 30)];
        assert!(!eval_tpred(&BTPred::Coexist(vec![0, 1]), &apart).unwrap());
        assert!(eval_tpred(
            &BTPred::Precede(BTExpr::Span(0), BTExpr::Span(1)),
            &apart
        )
        .unwrap());
    }

    #[test]
    fn texpr_constructors_compose() {
        let slots = [hist_slot(1, 10, 20), hist_slot(2, 15, 30)];
        // start of (a overlap b) = 15, end of (a extend b) = 30
        let iv = eval_texpr(
            &BTExpr::Overlap(
                Box::new(BTExpr::Span(0)),
                Box::new(BTExpr::Span(1)),
            ),
            &slots,
        )
        .unwrap();
        assert_eq!(iv.lo.as_secs(), 15);
        assert_eq!(iv.hi.as_secs(), 20);
        let sp = eval_texpr(
            &BTExpr::Extend(
                Box::new(BTExpr::Span(0)),
                Box::new(BTExpr::Span(1)),
            ),
            &slots,
        )
        .unwrap();
        assert_eq!((sp.lo.as_secs(), sp.hi.as_secs()), (10, 30));
    }

    #[test]
    fn unbound_variable_is_an_internal_error() {
        let mut slot = hist_slot(1, 0, 1);
        slot.row = None;
        let e = BExpr::Attr { var: 0, attr: 0 };
        assert!(eval_expr(&e, &[slot]).is_err());
    }
}
