//! Bound (name-resolved) query trees.
//!
//! The binder turns TQuel syntax into these structures: tuple variables
//! become indices into the statement's range table, attributes become
//! column indices, time literals become resolved [`TInterval`]s, and the
//! TQuel *defaults* (default `when`, `valid`, and `as of` clauses) are made
//! explicit.

use crate::interval::TInterval;
use tdbms_kernel::{DatabaseClass, TemporalKind, TimeVal, Value};
use tdbms_storage::RelId;
use tdbms_tquel::ast::BinOp;

/// One entry of a statement's range table: a tuple variable actually used
/// by the statement.
#[derive(Debug, Clone)]
pub struct VarBinding {
    /// The variable name (for diagnostics).
    pub var: String,
    /// The relation it ranges over.
    pub rel: RelId,
    /// The relation's class (determines which clauses apply).
    pub class: DatabaseClass,
    /// Interval or event relation.
    pub kind: TemporalKind,
}

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// A literal or pre-resolved constant.
    Const(Value),
    /// Attribute `attr` (stored column index) of range-table entry `var`.
    Attr {
        /// Range-table index.
        var: usize,
        /// Stored column index within that relation.
        attr: usize,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<BExpr>,
        /// Right operand.
        rhs: Box<BExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<BExpr>),
    /// Logical negation.
    Not(Box<BExpr>),
}

impl BExpr {
    /// Does this expression reference range-table entry `var`?
    pub fn references(&self, var: usize) -> bool {
        match self {
            BExpr::Const(_) => false,
            BExpr::Attr { var: v, .. } => *v == var,
            BExpr::Bin { lhs, rhs, .. } => {
                lhs.references(var) || rhs.references(var)
            }
            BExpr::Neg(e) | BExpr::Not(e) => e.references(var),
        }
    }

    /// Collect the set of referenced range-table entries.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            BExpr::Const(_) => {}
            BExpr::Attr { var, .. } => {
                if !out.contains(var) {
                    out.push(*var);
                }
            }
            BExpr::Bin { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            BExpr::Neg(e) | BExpr::Not(e) => e.collect_vars(out),
        }
    }

    /// Collect `(var, attr)` attribute references.
    pub fn collect_attrs(&self, out: &mut Vec<(usize, usize)>) {
        match self {
            BExpr::Const(_) => {}
            BExpr::Attr { var, attr } => {
                if !out.contains(&(*var, *attr)) {
                    out.push((*var, *attr));
                }
            }
            BExpr::Bin { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
            BExpr::Neg(e) | BExpr::Not(e) => e.collect_attrs(out),
        }
    }

    /// Rewrite attribute references of `var` through `map` (old stored
    /// index → new stored index), used after detachment projects a
    /// variable into a temporary.
    pub fn remap_attrs(&mut self, var: usize, map: &[(usize, usize)]) {
        match self {
            BExpr::Const(_) => {}
            BExpr::Attr { var: v, attr } => {
                if *v == var {
                    let new = map
                        .iter()
                        .find(|(old, _)| old == attr)
                        .expect("projection covers referenced attrs")
                        .1;
                    *attr = new;
                }
            }
            BExpr::Bin { lhs, rhs, .. } => {
                lhs.remap_attrs(var, map);
                rhs.remap_attrs(var, map);
            }
            BExpr::Neg(e) | BExpr::Not(e) => e.remap_attrs(var, map),
        }
    }
}

/// A bound temporal expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BTExpr {
    /// The valid-time span of range-table entry `var`.
    Span(usize),
    /// A resolved time constant (event or interval).
    Const(TInterval),
    /// `start of e`.
    Start(Box<BTExpr>),
    /// `end of e`.
    End(Box<BTExpr>),
    /// `a overlap b` (intersection constructor).
    Overlap(Box<BTExpr>, Box<BTExpr>),
    /// `a extend b` (span constructor).
    Extend(Box<BTExpr>, Box<BTExpr>),
}

impl BTExpr {
    /// Collect referenced range-table entries.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            BTExpr::Span(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            BTExpr::Const(_) => {}
            BTExpr::Start(e) | BTExpr::End(e) => e.collect_vars(out),
            BTExpr::Overlap(a, b) | BTExpr::Extend(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// A bound temporal predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum BTPred {
    /// `a precede b`.
    Precede(BTExpr, BTExpr),
    /// `a overlap b`.
    Overlap(BTExpr, BTExpr),
    /// `a equal b`.
    Equal(BTExpr, BTExpr),
    /// Conjunction.
    And(Box<BTPred>, Box<BTPred>),
    /// Disjunction.
    Or(Box<BTPred>, Box<BTPred>),
    /// Negation.
    Not(Box<BTPred>),
    /// The default `when` clause: the valid spans of the listed variables
    /// have a nonempty common intersection ("the tuples coexisted").
    Coexist(Vec<usize>),
}

impl BTPred {
    /// Collect referenced range-table entries.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            BTPred::Precede(a, b)
            | BTPred::Overlap(a, b)
            | BTPred::Equal(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BTPred::And(a, b) | BTPred::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BTPred::Not(p) => p.collect_vars(out),
            BTPred::Coexist(vs) => {
                for v in vs {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
            }
        }
    }
}

/// Rollback visibility: which transaction-time window a query observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visibility {
    /// Rollback instant (`as of`): default "now".
    pub at: TimeVal,
    /// End of the rollback span (`through`); equals `at` for a point
    /// rollback.
    pub through: TimeVal,
}

impl Visibility {
    /// Point visibility at `t`.
    pub fn at(t: TimeVal) -> Self {
        Visibility { at: t, through: t }
    }

    /// Is a version with this transaction period visible? Half-open rule:
    /// the version exists from `start` (inclusive) until `stop`
    /// (exclusive), and is visible if that period intersects the window.
    pub fn sees(&self, start: TimeVal, stop: TimeVal) -> bool {
        start <= self.through && self.at < stop
    }
}

/// One bound output column.
#[derive(Debug, Clone)]
pub struct BoundTarget {
    /// Result attribute name.
    pub name: String,
    /// Result domain.
    pub domain: tdbms_kernel::Domain,
    /// The value expression (the aggregate's argument when `agg` is set).
    pub expr: BExpr,
    /// Aggregate function applied over the qualifying tuples, grouped by
    /// the non-aggregate targets.
    pub agg: Option<tdbms_tquel::ast::AggFunc>,
}

/// A fully bound retrieve.
#[derive(Debug, Clone)]
pub struct BoundRetrieve {
    /// Range-table entries actually referenced, in first-use order.
    pub vars: Vec<VarBinding>,
    /// Output columns.
    pub targets: Vec<BoundTarget>,
    /// Scalar qualification, split into conjuncts.
    pub where_conjuncts: Vec<BExpr>,
    /// Temporal qualification, split into conjuncts (defaults included).
    pub when_conjuncts: Vec<BTPred>,
    /// Valid-clause events `(from, to)`; `None` when no variable carries
    /// valid time (a purely static/rollback query).
    pub valid: Option<(BTExpr, BTExpr)>,
    /// Rollback window, `None` when no variable carries transaction time.
    pub visibility: Option<Visibility>,
    /// Materialize into this relation instead of returning rows.
    pub into: Option<String>,
    /// Sort keys: result-column index + descending flag.
    pub sort: Vec<(usize, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u32) -> TimeVal {
        TimeVal::from_secs(secs)
    }

    #[test]
    fn visibility_point_semantics() {
        let v = Visibility::at(t(100));
        assert!(v.sees(t(100), TimeVal::FOREVER)); // created exactly then
        assert!(v.sees(t(50), t(101)));
        assert!(!v.sees(t(50), t(100))); // superseded exactly then
        assert!(!v.sees(t(101), TimeVal::FOREVER)); // created later
    }

    #[test]
    fn visibility_span_semantics() {
        let v = Visibility {
            at: t(100),
            through: t(200),
        };
        assert!(v.sees(t(150), t(160))); // lived inside the window
        assert!(v.sees(t(0), t(101))); // still alive at window start
        assert!(v.sees(t(200), TimeVal::FOREVER)); // born at window end
        assert!(!v.sees(t(0), t(100))); // died before the window
        assert!(!v.sees(t(201), TimeVal::FOREVER)); // born after
    }

    #[test]
    fn expr_var_collection_and_remap() {
        let mut e = BExpr::Bin {
            op: BinOp::Eq,
            lhs: Box::new(BExpr::Attr { var: 0, attr: 3 }),
            rhs: Box::new(BExpr::Attr { var: 1, attr: 1 }),
        };
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![0, 1]);
        e.remap_attrs(0, &[(3, 0)]);
        let mut attrs = Vec::new();
        e.collect_attrs(&mut attrs);
        assert_eq!(attrs, vec![(0, 0), (1, 1)]);
    }
}
