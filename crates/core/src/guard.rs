//! Per-query execution guardrails.
//!
//! A [`QueryGuard`] carries the limits a caller imposes on one statement:
//! a wall-clock deadline, a cap on result rows, and a cancel flag another
//! thread may raise (connection teardown, server shutdown). The executor
//! polls it at row granularity, so a runaway cross-product stops within a
//! few hundred tuples of its budget instead of holding the engine until
//! it finishes.
//!
//! Guards apply to *reads*. Writes are checked once at admission (a
//! statement that has started mutating pages must run to completion —
//! interrupting it mid-write would leave a half-applied statement, which
//! only WAL recovery may do), so a timed-out or canceled DML statement is
//! refused before it touches anything.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdbms_kernel::{Error, Result};

/// How many row iterations pass between deadline/cancel polls. Checking
/// `Instant::now` per row would dominate tight scans; every 128 rows the
/// overhead vanishes while keeping reaction latency far below any
/// realistic timeout.
const POLL_EVERY: u32 = 128;

/// Limits and interrupt state for one statement execution.
///
/// Cloning is cheap (the cancel flag is shared through an `Arc`), and the
/// poll counter is deliberately per-clone: each executing stage polls on
/// its own cadence.
#[derive(Debug, Clone, Default)]
pub struct QueryGuard {
    deadline: Option<Instant>,
    /// The budget that produced `deadline`, echoed in the error.
    timeout_ms: u64,
    max_rows: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    ticks: Cell<u32>,
}

impl QueryGuard {
    /// A guard that never fires — the embedded single-user default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building a guard with no limits set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Impose a wall-clock budget starting now.
    pub fn with_timeout(mut self, budget: Duration) -> Self {
        self.timeout_ms = budget.as_millis() as u64;
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Cap the number of result rows a retrieve may produce.
    pub fn with_max_rows(mut self, max: u64) -> Self {
        self.max_rows = Some(max);
        self
    }

    /// Attach a cancel flag; raising it makes the next poll fail with
    /// [`Error::Canceled`].
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when this guard can never interrupt anything.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rows.is_none()
            && self.cancel.is_none()
    }

    /// Check the cancel flag and the deadline immediately (used at
    /// statement admission and at phase boundaries).
    pub fn check_now(&self) -> Result<()> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(Error::Canceled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Error::Timeout {
                    ms: self.timeout_ms,
                });
            }
        }
        Ok(())
    }

    /// Row-granularity poll: cheap counter bump, with a real
    /// deadline/cancel check every [`POLL_EVERY`] calls.
    pub fn tick(&self) -> Result<()> {
        if self.deadline.is_none() && self.cancel.is_none() {
            return Ok(());
        }
        let t = self.ticks.get().wrapping_add(1);
        self.ticks.set(t);
        if t.is_multiple_of(POLL_EVERY) {
            self.check_now()?;
        }
        Ok(())
    }

    /// Fail once a retrieve has produced more than the allowed number of
    /// result rows.
    pub fn check_rows(&self, produced: usize) -> Result<()> {
        if let Some(max) = self.max_rows {
            if produced as u64 >= max {
                return Err(Error::LimitExceeded {
                    what: "rows".into(),
                    limit: max,
                });
            }
        }
        Ok(())
    }

    /// True when `e` is this guard firing (as opposed to a genuine
    /// execution error): such errors must not be retried on a fallback
    /// path, because the budget is already spent.
    pub fn is_guard_error(e: &Error) -> bool {
        matches!(
            e,
            Error::Timeout { .. }
                | Error::LimitExceeded { .. }
                | Error::Canceled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_fires() {
        let g = QueryGuard::none();
        assert!(g.is_unlimited());
        for _ in 0..10_000 {
            g.tick().unwrap();
        }
        g.check_now().unwrap();
        g.check_rows(usize::MAX).unwrap();
    }

    #[test]
    fn expired_deadline_fires_within_one_poll_window() {
        let g = QueryGuard::new().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let err = (0..=POLL_EVERY)
            .find_map(|_| g.tick().err())
            .expect("tick must fail within one poll window");
        assert!(matches!(err, Error::Timeout { .. }));
        assert!(QueryGuard::is_guard_error(&err));
    }

    #[test]
    fn cancel_flag_fires() {
        let flag = Arc::new(AtomicBool::new(false));
        let g = QueryGuard::new().with_cancel(flag.clone());
        g.check_now().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert!(matches!(g.check_now(), Err(Error::Canceled)));
    }

    #[test]
    fn row_limit_is_inclusive_of_budget() {
        let g = QueryGuard::new().with_max_rows(10);
        g.check_rows(9).unwrap();
        let err = g.check_rows(10).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded { limit: 10, .. }));
    }
}
