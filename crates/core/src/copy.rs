//! The `copy` statement: batch input and output of relations, including
//! their temporal attributes — the prototype "modified \[copy\] to perform
//! batch input and output of relations having temporal attributes".
//!
//! The file format is one tuple per line, comma-separated, in stored
//! attribute order. Strings may be double-quoted (required when they
//! contain commas); time attributes are written at second granularity and
//! accepted in any format [`TimeVal::parse`] understands, including
//! `forever`. On input a line may carry either
//!
//! * the **explicit** attributes only — the implicit time attributes are
//!   defaulted exactly as an `append` would default them, or
//! * **all** stored attributes — a faithful reload of previously copied
//!   (or externally generated) history.

use crate::dml::build_stored_row;
use crate::interval::TInterval;
use std::io::{BufRead, Write};
use tdbms_kernel::{Domain, Error, Granularity, Result, TimeVal, Value};
use tdbms_storage::{Catalog, Pager, RelId};

/// Split one CSV line into fields, honoring double quotes.
fn split_fields(line: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(Error::BadValue(format!(
            "unterminated quote in copy line {line:?}"
        )));
    }
    out.push(field);
    Ok(out)
}

/// Quote a field for output if needed.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn parse_value(domain: Domain, s: &str) -> Result<Value> {
    let s = s.trim();
    match domain {
        Domain::I1 | Domain::I2 | Domain::I4 => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::BadValue(format!("bad integer {s:?}"))),
        Domain::F4 | Domain::F8 => s
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::BadValue(format!("bad float {s:?}"))),
        Domain::Char(_) => Ok(Value::Str(s.to_owned())),
        Domain::Time => TimeVal::parse(s).map(Value::Time),
    }
}

/// `copy R from "file"` — bulk load.
pub fn copy_from(
    pager: &Pager,
    catalog: &mut Catalog,
    rel_id: RelId,
    path: &str,
    now: TimeVal,
) -> Result<usize> {
    let (schema, codec) = {
        let rel = catalog.get(rel_id);
        (rel.schema.clone(), rel.codec.clone())
    };
    let explicit_len = schema.explicit_attrs().len();
    let arity = schema.arity();

    let f = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(f);
    let mut n = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_fields(&line)?;
        let err = |msg: String| {
            Error::BadValue(format!("copy line {}: {msg}", lineno + 1))
        };
        let row = if fields.len() == arity {
            // Full row including time attributes.
            let mut vals = Vec::with_capacity(arity);
            for (i, f) in fields.iter().enumerate() {
                let d = schema.domain_of(i).expect("in range");
                vals.push(
                    parse_value(d, f).map_err(|e| err(e.to_string()))?,
                );
            }
            codec.encode(&vals)?
        } else if fields.len() == explicit_len {
            // Explicit attributes only; default the time attributes.
            let mut vals = Vec::with_capacity(explicit_len);
            for (i, f) in fields.iter().enumerate() {
                let d = schema.domain_of(i).expect("in range");
                vals.push(
                    parse_value(d, f).map_err(|e| err(e.to_string()))?,
                );
            }
            let valid = match schema.kind() {
                tdbms_kernel::TemporalKind::Interval => {
                    TInterval::new(now, TimeVal::FOREVER)
                }
                tdbms_kernel::TemporalKind::Event => TInterval::event(now),
            };
            build_stored_row(&schema, &codec, &vals, valid, now)?
        } else {
            return Err(err(format!(
                "expected {explicit_len} or {arity} fields, found {}",
                fields.len()
            )));
        };
        catalog.get_mut(rel_id).insert_row(pager, &row)?;
        n += 1;
    }
    pager.flush_all()?;
    Ok(n)
}

/// `copy R into "file"` — bulk unload of every stored version.
pub fn copy_into(
    pager: &Pager,
    catalog: &Catalog,
    rel_id: RelId,
    path: &str,
) -> Result<usize> {
    let rel = catalog.get(rel_id);
    let schema = rel.schema.clone();
    let codec = rel.codec.clone();
    let file = rel.file.clone();
    let out = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(out);
    let mut n = 0usize;
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, &file)? {
        let mut line = String::new();
        for i in 0..schema.arity() {
            if i > 0 {
                line.push(',');
            }
            let v = codec.get(&row, i);
            let s = match v {
                Value::Time(t) => t.format(Granularity::Second),
                other => other.to_string(),
            };
            line.push_str(&quote_field(&s));
        }
        writeln!(w, "{line}")?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_splitting_honours_quotes() {
        assert_eq!(split_fields("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            split_fields(r#"1,"hello, world",2"#).unwrap(),
            vec!["1", "hello, world", "2"]
        );
        assert_eq!(
            split_fields(r#""say ""hi""",x"#).unwrap(),
            vec![r#"say "hi""#, "x"]
        );
        assert!(split_fields(r#""unterminated"#).is_err());
        assert_eq!(split_fields("").unwrap(), vec![""]);
    }

    #[test]
    fn quoting_roundtrips() {
        for s in ["plain", "with, comma", "with \"quotes\"", ""] {
            let quoted = quote_field(s);
            let fields = split_fields(&quoted).unwrap();
            assert_eq!(fields, vec![s]);
        }
    }

    #[test]
    fn value_parsing_per_domain() {
        assert_eq!(
            parse_value(Domain::I4, " 42 ").unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            parse_value(Domain::F8, "2.5").unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            parse_value(Domain::Char(8), "hi").unwrap(),
            Value::Str("hi".into())
        );
        assert_eq!(
            parse_value(Domain::Time, "forever").unwrap(),
            Value::Time(TimeVal::FOREVER)
        );
        assert!(parse_value(Domain::I4, "x").is_err());
    }
}
