//! Data definition and modification: the extended `create`, `modify`,
//! `destroy`, `copy`, and the temporal semantics of `append` / `delete` /
//! `replace`.
//!
//! The update semantics follow Section 4 of the paper exactly:
//!
//! * **append** — rollback and temporal relations stamp
//!   `transaction_start = now`, `transaction_stop = forever`; historical
//!   and temporal relations stamp the valid period from the `valid` clause
//!   (defaulting to `now .. forever`).
//! * **delete** — rollback: stamp `transaction_stop = now` in place.
//!   Historical: stamp `valid_to` in place. Temporal: stamp
//!   `transaction_stop = now` in place *and insert a new version* whose
//!   `valid_to` records when the fact stopped holding.
//! * **replace** — a delete followed by an insert of the updated version;
//!   on a temporal relation this inserts **two** new versions, which is
//!   why the paper's temporal databases grow at twice the rate of rollback
//!   and historical ones.
//!
//! All modifications of versioned relations are *append-only* except the
//! in-place stop-time stamping — the property that makes write-once
//! optical storage usable, as the paper notes.

use crate::binder::Binder;
use crate::bound::{
    BExpr, BTPred, BoundRetrieve, BoundTarget, VarBinding, Visibility,
};
use crate::eval::{eval_expr, eval_texpr, Slot};
use crate::exec::{collect_matching, exec_retrieve};
use crate::interval::TInterval;
use std::collections::HashMap;
use tdbms_kernel::{
    AttrDef, DatabaseClass, Domain, Error, Result, Schema, TemporalAttr,
    TemporalKind, TimeVal, Value,
};
use tdbms_storage::{
    AccessMethod, Catalog, HashFn, IndexStructure, Pager, RelId,
};
use tdbms_tquel::ast;

/// Execute `create`.
pub fn exec_create(
    pager: &Pager,
    catalog: &mut Catalog,
    c: &ast::Create,
) -> Result<RelId> {
    let attrs: Vec<AttrDef> = c
        .attrs
        .iter()
        .map(|(n, d)| AttrDef::new(n.clone(), *d))
        .collect();
    let schema = Schema::new(attrs, c.class, c.kind)?;
    catalog.create_relation(pager, &c.rel, schema)
}

/// Execute `destroy` — of a relation, or of a secondary index (Ingres
/// treats index names like relation names for `destroy`).
pub fn exec_destroy(
    pager: &Pager,
    catalog: &mut Catalog,
    rel: &str,
) -> Result<()> {
    if let Some(id) = catalog.id_of(rel) {
        return catalog.destroy(pager, id);
    }
    if let Some(owner) = catalog.index_owner(rel) {
        catalog.get_mut(owner).drop_index(pager, rel)?;
        return Ok(());
    }
    Err(Error::NoSuchRelation(rel.to_owned()))
}

/// Execute `index on R is X (attr)`.
pub fn exec_index(
    pager: &Pager,
    catalog: &mut Catalog,
    stmt: &ast::CreateIndex,
) -> Result<()> {
    let id = catalog.require(&stmt.rel)?;
    if catalog.id_of(&stmt.name).is_some()
        || catalog.index_owner(&stmt.name).is_some()
    {
        return Err(Error::DuplicateRelation(stmt.name.clone()));
    }
    let structure = match stmt.structure.as_deref() {
        None | Some("hash") => IndexStructure::Hash,
        Some("heap") => IndexStructure::Heap,
        Some(other) => {
            return Err(Error::Semantic(format!(
                "unknown index structure {other:?}"
            )))
        }
    };
    let rel = catalog.get_mut(id);
    let attr = rel.schema.index_of(&stmt.attr).ok_or_else(|| {
        Error::NoSuchAttribute(format!(
            "{} (relation {})",
            stmt.attr, rel.name
        ))
    })?;
    if rel.key_attr == Some(attr) {
        return Err(Error::Semantic(format!(
            "{:?} is the relation's primary key; a secondary index would \
             be redundant",
            stmt.attr
        )));
    }
    rel.create_index(pager, &stmt.name, attr, structure)
}

/// Execute `modify`.
pub fn exec_modify(
    pager: &Pager,
    catalog: &mut Catalog,
    m: &ast::Modify,
    hashfn: HashFn,
) -> Result<()> {
    let id = catalog.require(&m.rel)?;
    let method = match m.organization.as_str() {
        "heap" => AccessMethod::Heap,
        "hash" => AccessMethod::Hash,
        "isam" => AccessMethod::Isam,
        other => {
            return Err(Error::Semantic(format!(
                "unknown storage organization {other:?}"
            )))
        }
    };
    let rel = catalog.get_mut(id);
    let key_attr = match (&m.key, method) {
        (_, AccessMethod::Heap) => None,
        (Some(k), _) => Some(rel.schema.index_of(k).ok_or_else(|| {
            Error::NoSuchAttribute(format!("{k} (relation {})", rel.name))
        })?),
        (None, _) => {
            return Err(Error::Semantic(format!(
                "modify to {method} requires `on <attribute>`"
            )))
        }
    };
    rel.modify(pager, method, key_attr, m.fillfactor.unwrap_or(100), hashfn)
}

/// Narrow a value to a domain, producing the stored representation.
fn narrow(domain: Domain, v: &Value) -> Result<Value> {
    // Integer-valued floats narrow to integer domains and vice versa.
    match (domain, v) {
        (d, Value::Int(_)) if d.is_integer() => Ok(v.clone()),
        (d, Value::Float(f)) if d.is_integer() && f.fract() == 0.0 => {
            Ok(Value::Int(*f as i64))
        }
        (d, _) if d.is_float() => Ok(v.clone()),
        _ => Ok(v.clone()),
    }
}

/// Default value for an unassigned explicit attribute (Quel zero/blank).
fn default_value(domain: Domain) -> Value {
    match domain {
        Domain::I1 | Domain::I2 | Domain::I4 => Value::Int(0),
        Domain::F4 | Domain::F8 => Value::Float(0.0),
        Domain::Char(_) => Value::Str(String::new()),
        Domain::Time => Value::Time(TimeVal::BEGINNING),
    }
}

/// Build a full stored row for an insert into `schema`: explicit values in
/// order, then the implicit time attributes.
pub(crate) fn build_stored_row(
    schema: &Schema,
    codec: &tdbms_kernel::RowCodec,
    explicit: &[Value],
    valid: TInterval,
    tx_start: TimeVal,
) -> Result<Vec<u8>> {
    let mut all: Vec<Value> = Vec::with_capacity(schema.arity());
    for (i, v) in explicit.iter().enumerate() {
        let d = schema.domain_of(i).expect("explicit index");
        let v = narrow(d, v)?;
        if !d.accepts(&v) {
            return Err(Error::BadValue(format!(
                "value {v} does not fit attribute {} ({d})",
                schema.name_of(i).unwrap_or("?")
            )));
        }
        all.push(v);
    }
    for t in schema.implicit_attrs() {
        all.push(Value::Time(match t {
            TemporalAttr::ValidFrom => valid.lo,
            TemporalAttr::ValidTo => valid.hi,
            TemporalAttr::ValidAt => valid.lo,
            TemporalAttr::TransactionStart => tx_start,
            TemporalAttr::TransactionStop => TimeVal::FOREVER,
        }));
    }
    codec.encode(&all)
}

/// Resolve an append/replace `valid` clause into the inserted version's
/// valid period, evaluated with any participating variables bound.
fn resolve_valid(
    binder: &Binder<'_>,
    valid: &Option<ast::ValidClause>,
    kind: TemporalKind,
    vars: &mut Vec<VarBinding>,
    slots: &[Slot],
) -> Result<TInterval> {
    match (valid, kind) {
        (None, TemporalKind::Interval) => {
            Ok(TInterval::new(binder.now, TimeVal::FOREVER))
        }
        (None, TemporalKind::Event) => Ok(TInterval::event(binder.now)),
        (Some(ast::ValidClause::Interval { from, to }), TemporalKind::Interval) => {
            let f = eval_texpr(&binder.bind_texpr(from, vars)?, slots)?;
            let t = eval_texpr(&binder.bind_texpr(to, vars)?, slots)?;
            Ok(TInterval::new(f.lo, t.hi))
        }
        (Some(ast::ValidClause::At(at)), TemporalKind::Event) => {
            let a = eval_texpr(&binder.bind_texpr(at, vars)?, slots)?;
            Ok(TInterval::event(a.lo))
        }
        (Some(ast::ValidClause::At(_)), TemporalKind::Interval) => {
            Err(Error::Semantic(
                "`valid at` applies to event relations; use `valid from .. to`"
                    .into(),
            ))
        }
        (Some(ast::ValidClause::Interval { .. }), TemporalKind::Event) => {
            Err(Error::Semantic(
                "`valid from .. to` applies to interval relations; use `valid at`"
                    .into(),
            ))
        }
    }
}

/// Execute `append`. Supports both constant appends and computed appends
/// whose assignment expressions range over other relations.
pub fn exec_append(
    pager: &Pager,
    catalog: &mut Catalog,
    ranges: &HashMap<String, String>,
    now: TimeVal,
    a: &ast::Append,
) -> Result<usize> {
    let id = catalog.require(&a.rel)?;
    let (schema, codec, class, kind) = {
        let rel = catalog.get(id);
        (
            rel.schema.clone(),
            rel.codec.clone(),
            rel.schema.class(),
            rel.schema.kind(),
        )
    };
    let binder = Binder {
        catalog,
        ranges,
        now,
    };

    // Bind assignments to explicit attributes.
    let explicit_len = schema.explicit_attrs().len();
    let mut vars: Vec<VarBinding> = Vec::new();
    let mut assigns: Vec<(usize, BExpr)> = Vec::new();
    for asg in &a.assignments {
        let idx = schema.index_of(&asg.attr).ok_or_else(|| {
            Error::NoSuchAttribute(format!(
                "{} (relation {})",
                asg.attr, a.rel
            ))
        })?;
        if idx >= explicit_len {
            return Err(Error::Semantic(format!(
                "cannot assign implicit time attribute {:?}; use the \
                 `valid` clause",
                asg.attr
            )));
        }
        if assigns.iter().any(|(i, _)| *i == idx) {
            return Err(Error::Semantic(format!(
                "attribute {:?} assigned twice",
                asg.attr
            )));
        }
        assigns.push((idx, binder.bind_expr(&asg.expr, &mut vars)?));
    }
    if a.valid.is_some() && !class.has_valid_time() {
        return Err(Error::NotApplicable(format!(
            "`valid` clause on a {class} relation"
        )));
    }

    let mut inserted = 0usize;
    if vars.is_empty() {
        // Constant append: one new tuple.
        if a.where_clause.is_some() || a.when_clause.is_some() {
            return Err(Error::Semantic(
                "append qualification references no tuple variables".into(),
            ));
        }
        let mut explicit: Vec<Value> = (0..explicit_len)
            .map(|i| default_value(schema.domain_of(i).expect("explicit")))
            .collect();
        for (idx, e) in &assigns {
            explicit[*idx] = eval_expr(e, &[])?;
        }
        let valid = resolve_valid(&binder, &a.valid, kind, &mut vars, &[])?;
        let row = build_stored_row(&schema, &codec, &explicit, valid, now)?;
        catalog.get_mut(id).insert_row(pager, &row)?;
        inserted = 1;
    } else {
        // Computed append: run the qualification as a retrieve whose
        // targets are the assignment expressions (plus the valid events),
        // then insert one tuple per result row.
        let mut targets: Vec<BoundTarget> = Vec::new();
        for (k, (idx, e)) in assigns.iter().enumerate() {
            targets.push(BoundTarget {
                name: format!("a{k}"),
                domain: schema.domain_of(*idx).expect("explicit"),
                expr: e.clone(),
                agg: None,
            });
        }
        let mut where_conjuncts = Vec::new();
        if let Some(w) = &a.where_clause {
            crate::binder::split_conjuncts(
                binder.bind_expr(w, &mut vars)?,
                &mut where_conjuncts,
            );
        }
        let mut when_conjuncts = Vec::new();
        if let Some(w) = &a.when_clause {
            crate::binder::split_tconjuncts(
                binder.bind_tpred(w, &mut vars)?,
                &mut when_conjuncts,
            );
        }
        let valid_bound = match &a.valid {
            Some(ast::ValidClause::Interval { from, to }) => Some((
                binder.bind_texpr(from, &mut vars)?,
                binder.bind_texpr(to, &mut vars)?,
            )),
            Some(ast::ValidClause::At(at)) => {
                let e = binder.bind_texpr(at, &mut vars)?;
                Some((e.clone(), e))
            }
            None => None,
        };
        let has_tx = vars.iter().any(|v| v.class.has_transaction_time());
        let bound = BoundRetrieve {
            vars: vars.clone(),
            targets,
            where_conjuncts,
            when_conjuncts,
            valid: valid_bound,
            visibility: has_tx.then(|| Visibility::at(now)),
            into: None,
            sort: Vec::new(),
        };
        // DML is guard-checked at admission only, so its inner query
        // runs unlimited (interrupting it would half-apply the append).
        let result = exec_retrieve(
            pager,
            catalog,
            &bound,
            &crate::guard::QueryGuard::none(),
        )?;
        let has_valid_cols = bound.valid.is_some();
        for row in result.rows {
            let mut explicit: Vec<Value> = (0..explicit_len)
                .map(|i| {
                    default_value(schema.domain_of(i).expect("explicit"))
                })
                .collect();
            for (k, (idx, _)) in assigns.iter().enumerate() {
                explicit[*idx] = row[k].clone();
            }
            let valid = if has_valid_cols {
                let n = row.len();
                let lo = row[n - 2].as_time().ok_or_else(|| {
                    Error::Internal("valid_from column not a time".into())
                })?;
                let hi = row[n - 1].as_time().ok_or_else(|| {
                    Error::Internal("valid_to column not a time".into())
                })?;
                TInterval::new(lo, hi)
            } else {
                match kind {
                    TemporalKind::Interval => {
                        TInterval::new(now, TimeVal::FOREVER)
                    }
                    TemporalKind::Event => TInterval::event(now),
                }
            };
            let stored =
                build_stored_row(&schema, &codec, &explicit, valid, now)?;
            catalog.get_mut(id).insert_row(pager, &stored)?;
            inserted += 1;
        }
    }
    pager.flush_all()?;
    Ok(inserted)
}

/// The versions a delete/replace operates on: versions current in both
/// transaction time and valid time.
fn current_version_conjuncts(schema: &Schema) -> Vec<BExpr> {
    let mut out = Vec::new();
    if let Some(idx) = schema.temporal_index(TemporalAttr::TransactionStop)
    {
        out.push(BExpr::Bin {
            op: ast::BinOp::Eq,
            lhs: Box::new(BExpr::Attr { var: 0, attr: idx }),
            rhs: Box::new(BExpr::Const(Value::Time(TimeVal::FOREVER))),
        });
    }
    if let Some(idx) = schema.temporal_index(TemporalAttr::ValidTo) {
        out.push(BExpr::Bin {
            op: ast::BinOp::Eq,
            lhs: Box::new(BExpr::Attr { var: 0, attr: idx }),
            rhs: Box::new(BExpr::Const(Value::Time(TimeVal::FOREVER))),
        });
    }
    out
}

/// Bind a single-variable DML qualification (delete/replace). The
/// variable being modified must be the only one referenced.
#[allow(clippy::type_complexity)]
fn bind_dml_qual(
    binder: &Binder<'_>,
    var: &str,
    where_clause: &Option<ast::Expr>,
    when_clause: &Option<ast::TemporalPred>,
) -> Result<(Vec<VarBinding>, Vec<BExpr>, Vec<BTPred>)> {
    let mut vars: Vec<VarBinding> = Vec::new();
    let vi = binder.resolve_var(var, &mut vars)?;
    debug_assert_eq!(vi, 0);
    let mut where_conjuncts = Vec::new();
    if let Some(w) = where_clause {
        crate::binder::split_conjuncts(
            binder.bind_expr(w, &mut vars)?,
            &mut where_conjuncts,
        );
    }
    let mut when_conjuncts = Vec::new();
    if let Some(w) = when_clause {
        crate::binder::split_tconjuncts(
            binder.bind_tpred(w, &mut vars)?,
            &mut when_conjuncts,
        );
    }
    if vars.len() > 1 {
        return Err(Error::Semantic(format!(
            "delete/replace qualification may only reference {var:?}"
        )));
    }
    Ok((vars, where_conjuncts, when_conjuncts))
}

/// Execute `delete`.
pub fn exec_delete(
    pager: &Pager,
    catalog: &mut Catalog,
    ranges: &HashMap<String, String>,
    now: TimeVal,
    d: &ast::Delete,
) -> Result<usize> {
    let binder = Binder {
        catalog,
        ranges,
        now,
    };
    let (vars, mut where_conjuncts, when_conjuncts) =
        bind_dml_qual(&binder, &d.var, &d.where_clause, &d.when_clause)?;
    let id = vars[0].rel;
    let (schema, codec, class, kind) = {
        let rel = catalog.get(id);
        (
            rel.schema.clone(),
            rel.codec.clone(),
            rel.schema.class(),
            rel.schema.kind(),
        )
    };

    // The deletion takes effect in valid time at this instant.
    let del_expr = match (&d.valid, kind) {
        (Some(ast::ValidClause::Interval { from, .. }), TemporalKind::Interval) => {
            Some(from)
        }
        (Some(ast::ValidClause::At(at)), TemporalKind::Event) => Some(at),
        (Some(ast::ValidClause::At(_)), TemporalKind::Interval) => {
            return Err(Error::Semantic(
                "`valid at` applies to event relations; use `valid from .. to`"
                    .into(),
            ))
        }
        (Some(ast::ValidClause::Interval { .. }), TemporalKind::Event) => {
            return Err(Error::Semantic(
                "`valid from .. to` applies to interval relations; use \
                 `valid at`"
                    .into(),
            ))
        }
        (None, _) => None,
    };
    let del_time = match del_expr {
        Some(e) => {
            if !class.has_valid_time() {
                return Err(Error::NotApplicable(format!(
                    "`valid` clause on a {class} relation"
                )));
            }
            let binder = Binder {
                catalog,
                ranges,
                now,
            };
            let mut tvars = Vec::new();
            let bound = binder.bind_texpr(e, &mut tvars)?;
            if !tvars.is_empty() {
                return Err(Error::Semantic(
                    "the `valid` clause of a delete may not reference tuple \
                     variables"
                        .into(),
                ));
            }
            eval_texpr(&bound, &[])?.lo
        }
        None => now,
    };

    where_conjuncts.extend(current_version_conjuncts(&schema));
    let mut slot = Slot {
        schema: schema.clone(),
        codec: codec.clone(),
        row: None,
    };
    let visible = class.has_transaction_time().then(|| Visibility::at(now));
    let (file, key_attr) = {
        let rel = catalog.get(id);
        (rel.file.clone(), rel.key_attr)
    };
    let targets = collect_matching(
        pager,
        &mut slot,
        &file,
        key_attr,
        visible,
        &where_conjuncts,
        &when_conjuncts,
    )?;

    let ts_stop = schema.temporal_index(TemporalAttr::TransactionStop);
    let valid_to = schema.temporal_index(TemporalAttr::ValidTo);
    let mut removed = 0u64;
    // Static deletes compact within pages: process highest slots first so
    // earlier removals do not move rows we still hold addresses for.
    let mut targets = targets;
    targets.sort_by_key(|t| std::cmp::Reverse(t.0));
    let affected = targets.len();
    for (tid, mut row) in targets {
        match class {
            DatabaseClass::Static => {
                file.delete(pager, tid)?;
                removed += 1;
            }
            DatabaseClass::Rollback => {
                codec.put_time(&mut row, ts_stop.expect("rollback"), now);
                file.update(pager, tid, &row)?;
            }
            DatabaseClass::Historical => match kind {
                TemporalKind::Interval => {
                    codec.put_time(
                        &mut row,
                        valid_to.expect("historical interval"),
                        del_time,
                    );
                    file.update(pager, tid, &row)?;
                }
                TemporalKind::Event => {
                    // An event relation has no valid period to close;
                    // without transaction time the only way to delete the
                    // record of the event is physically.
                    file.delete(pager, tid)?;
                    removed += 1;
                }
            },
            DatabaseClass::Temporal => {
                // Stamp the old version dead in transaction time...
                codec.put_time(&mut row, ts_stop.expect("temporal"), now);
                file.update(pager, tid, &row)?;
                // ...and insert the corrected version. For intervals it
                // records the end of validity; event facts are simply no
                // longer reasserted.
                if kind == TemporalKind::Interval {
                    let mut fresh = row.clone();
                    codec.put_time(
                        &mut fresh,
                        valid_to.expect("temporal interval"),
                        del_time,
                    );
                    codec.put_time(
                        &mut fresh,
                        schema
                            .temporal_index(TemporalAttr::TransactionStart)
                            .expect("temporal"),
                        now,
                    );
                    codec.put_time(
                        &mut fresh,
                        ts_stop.expect("temporal"),
                        TimeVal::FOREVER,
                    );
                    catalog.get_mut(id).insert_row(pager, &fresh)?;
                }
            }
        }
    }
    {
        let rel = catalog.get_mut(id);
        rel.tuple_count -= removed;
        // Physical removals compact pages, invalidating the tuple
        // addresses any secondary index holds.
        if removed > 0 && !rel.indexes.is_empty() {
            rel.rebuild_indexes(pager)?;
        }
    }
    pager.flush_all()?;
    Ok(affected)
}

/// Execute `replace`.
pub fn exec_replace(
    pager: &Pager,
    catalog: &mut Catalog,
    ranges: &HashMap<String, String>,
    now: TimeVal,
    r: &ast::Replace,
) -> Result<usize> {
    let binder = Binder {
        catalog,
        ranges,
        now,
    };
    let (mut vars, mut where_conjuncts, when_conjuncts) =
        bind_dml_qual(&binder, &r.var, &r.where_clause, &r.when_clause)?;
    let id = vars[0].rel;
    let (schema, codec, class, kind) = {
        let rel = catalog.get(id);
        (
            rel.schema.clone(),
            rel.codec.clone(),
            rel.schema.class(),
            rel.schema.kind(),
        )
    };
    let explicit_len = schema.explicit_attrs().len();

    // Bind assignments (they may reference the variable being replaced,
    // e.g. `replace h (seq = h.seq + 1)` — the benchmark's update round).
    let mut assigns: Vec<(usize, BExpr)> = Vec::new();
    for asg in &r.assignments {
        let idx = schema.index_of(&asg.attr).ok_or_else(|| {
            Error::NoSuchAttribute(format!(
                "{} (relation {})",
                asg.attr, r.var
            ))
        })?;
        if idx >= explicit_len {
            return Err(Error::Semantic(format!(
                "cannot assign implicit time attribute {:?}; use the \
                 `valid` clause",
                asg.attr
            )));
        }
        assigns.push((idx, binder.bind_expr(&asg.expr, &mut vars)?));
    }
    if vars.len() > 1 {
        return Err(Error::Semantic(format!(
            "replace assignments may only reference {:?}",
            r.var
        )));
    }
    if r.valid.is_some() && !class.has_valid_time() {
        return Err(Error::NotApplicable(format!(
            "`valid` clause on a {class} relation"
        )));
    }

    where_conjuncts.extend(current_version_conjuncts(&schema));
    let mut slot = Slot {
        schema: schema.clone(),
        codec: codec.clone(),
        row: None,
    };
    let visible = class.has_transaction_time().then(|| Visibility::at(now));
    let (file, key_attr) = {
        let rel = catalog.get(id);
        (rel.file.clone(), rel.key_attr)
    };
    let targets = collect_matching(
        pager,
        &mut slot,
        &file,
        key_attr,
        visible,
        &where_conjuncts,
        &when_conjuncts,
    )?;

    let ts_start = schema.temporal_index(TemporalAttr::TransactionStart);
    let ts_stop = schema.temporal_index(TemporalAttr::TransactionStop);
    let valid_from = schema.temporal_index(TemporalAttr::ValidFrom);
    let valid_to = schema.temporal_index(TemporalAttr::ValidTo);
    let valid_at = schema.temporal_index(TemporalAttr::ValidAt);

    let affected = targets.len();
    for (tid, mut row) in targets {
        // Evaluate assignments against the old version.
        slot.row = Some(row.clone());
        let slots = std::slice::from_ref(&slot);
        let mut new_explicit: Vec<Value> =
            (0..explicit_len).map(|i| codec.get(&row, i)).collect();
        for (idx, e) in &assigns {
            let d = schema.domain_of(*idx).expect("explicit");
            new_explicit[*idx] = narrow(d, &eval_expr(e, slots)?)?;
        }
        // The replacement's valid period.
        let new_valid = {
            let binder = Binder {
                catalog,
                ranges,
                now,
            };
            let mut vclone = vars.clone();
            resolve_valid(&binder, &r.valid, kind, &mut vclone, slots)?
        };
        slot.row = None;

        match class {
            DatabaseClass::Static => {
                let mut updated = row.clone();
                for (i, v) in new_explicit.iter().enumerate() {
                    codec.put(&mut updated, i, v)?;
                }
                file.update(pager, tid, &updated)?;
            }
            DatabaseClass::Rollback => {
                codec.put_time(&mut row, ts_stop.expect("rollback"), now);
                file.update(pager, tid, &row)?;
                let new_row = build_stored_row(
                    &schema,
                    &codec,
                    &new_explicit,
                    TInterval::new(TimeVal::BEGINNING, TimeVal::FOREVER),
                    now,
                )?;
                catalog.get_mut(id).insert_row(pager, &new_row)?;
            }
            DatabaseClass::Historical => match kind {
                TemporalKind::Interval => {
                    codec.put_time(
                        &mut row,
                        valid_to.expect("historical"),
                        new_valid.lo,
                    );
                    file.update(pager, tid, &row)?;
                    let new_row = build_stored_row(
                        &schema,
                        &codec,
                        &new_explicit,
                        TInterval::new(new_valid.lo, new_valid.hi),
                        now,
                    )?;
                    catalog.get_mut(id).insert_row(pager, &new_row)?;
                }
                TemporalKind::Event => {
                    // Correct the event in place (no transaction time to
                    // preserve the erroneous record under).
                    let mut updated = row.clone();
                    for (i, v) in new_explicit.iter().enumerate() {
                        codec.put(&mut updated, i, v)?;
                    }
                    codec.put_time(
                        &mut updated,
                        valid_at.expect("historical event"),
                        new_valid.lo,
                    );
                    file.update(pager, tid, &updated)?;
                }
            },
            DatabaseClass::Temporal => {
                // The paper's two-insert replace. First the `delete` part:
                codec.put_time(&mut row, ts_stop.expect("temporal"), now);
                file.update(pager, tid, &row)?;
                if kind == TemporalKind::Interval {
                    let mut closed = row.clone();
                    codec.put_time(
                        &mut closed,
                        valid_to.expect("temporal interval"),
                        new_valid.lo,
                    );
                    codec.put_time(
                        &mut closed,
                        ts_start.expect("temporal"),
                        now,
                    );
                    codec.put_time(
                        &mut closed,
                        ts_stop.expect("temporal"),
                        TimeVal::FOREVER,
                    );
                    catalog.get_mut(id).insert_row(pager, &closed)?;
                }
                // Then the new version.
                let new_row = build_stored_row(
                    &schema,
                    &codec,
                    &new_explicit,
                    new_valid,
                    now,
                )?;
                catalog.get_mut(id).insert_row(pager, &new_row)?;
            }
        }
    }
    // Rollback replaces keep the old version's "valid period" notionally
    // infinite; fix up the stored valid attrs (rollback relations have
    // none, so nothing to do — the BEGINNING..FOREVER interval above is
    // ignored by schemas without valid time).
    let _ = valid_from;
    {
        // Static replaces update explicit attributes in place; if any of
        // them is indexed the index entries are stale — rebuild.
        let rel = catalog.get_mut(id);
        if class == DatabaseClass::Static
            && affected > 0
            && assigns.iter().any(|(idx, _)| rel.index_on(*idx).is_some())
        {
            rel.rebuild_indexes(pager)?;
        }
    }
    pager.flush_all()?;
    Ok(affected)
}
