//! The query processor: Ingres-style decomposition over the one-variable
//! query processor (OVQP).
//!
//! A multi-variable retrieve is processed exactly the way the paper
//! describes its prototype doing it:
//!
//! 1. **One-variable detachment** — every variable with one-variable
//!    restrictions is evaluated first: its relation is read through the
//!    best access path (hashed/ISAM keyed access when a key-equality
//!    conjunct exists, sequential scan otherwise), rollback visibility is
//!    applied, and the qualifying versions are projected into a temporary
//!    relation (a heap). Writing the temporary is the query's *output
//!    cost*; reading it back during substitution is part of its input
//!    cost, as in the paper's accounting.
//! 2. **Tuple substitution** — the remaining variables are joined by
//!    nested iteration, innermost the variables whose relations become
//!    keyed-accessible once outer tuples are bound (`h.id = i.amount`
//!    turns into a hashed access on `h` for each `i` tuple).
//!
//! Each conjunct of the `where`/`when` qualification is evaluated at the
//! outermost level where all its variables are bound.

use crate::binder::row_tx_period;
use crate::bound::{BExpr, BTPred, BoundRetrieve, Visibility};
use crate::eval::{eval_bool, eval_expr, eval_texpr, eval_tpred, Slot};
use crate::guard::QueryGuard;
use tdbms_kernel::{AttrDef, Domain, Error, Result, Schema, Value};
use tdbms_storage::{Catalog, Pager, PhaseIo, RelFile, RelId};
use tdbms_tquel::ast::BinOp;

/// Page-access accounting for one executed statement.
///
/// `input_pages`/`output_pages` are the paper's two columns; the v2
/// buffer manager adds the hit/eviction counters and, for decomposed
/// retrieves, the per-phase attribution recorded by the pager's
/// [`tdbms_storage::IoStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Pages read from user relations (including temporaries) — the
    /// paper's *input cost*.
    pub input_pages: u64,
    /// Pages written (temporaries, `into` relations, DML) — the paper's
    /// *output cost*.
    pub output_pages: u64,
    /// Buffered accesses satisfied without a disk fetch.
    pub buffer_hits: u64,
    /// Frames evicted under capacity pressure.
    pub evictions: u64,
    /// Named execution phases (`"decomposition"`, `"substitution"`) with
    /// their I/O deltas; empty for statements that don't decompose.
    pub phases: Vec<PhaseIo>,
}

impl QueryStats {
    /// The aggregate I/O of every recorded phase named `name` (all-zero
    /// if the phase never ran).
    pub fn scoped(&self, name: &str) -> PhaseIo {
        let mut out = PhaseIo {
            name: name.to_string(),
            ..Default::default()
        };
        for p in self.phases.iter().filter(|p| p.name == name) {
            out.reads += p.reads;
            out.writes += p.writes;
            out.hits += p.hits;
            out.evictions += p.evictions;
        }
        out
    }
}

/// The rows and column shape a retrieve produced.
#[derive(Debug, Clone)]
pub struct RetrieveResult {
    /// Result column names and domains.
    pub columns: Vec<(String, Domain)>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

/// Per-variable runtime state during execution.
pub(crate) struct VarRt {
    pub(crate) file: RelFile,
    pub(crate) key_attr: Option<usize>,
    pub(crate) indexes: Vec<tdbms_storage::catalog::NamedIndex>,
    visible: Option<Visibility>,
    temp: Option<RelId>,
    /// Clustered history sidecar holding versions online reorganization
    /// migrated out of the primary file. Read only when the query's
    /// visibility reaches behind the sidecar's stop-time high-water mark,
    /// which keeps at-now retrievals at primary-only page cost.
    history: Option<std::sync::Arc<tdbms_storage::ClusteredHistory>>,
}

/// Execute a bound retrieve. Returns the result rows; the caller reads the
/// pager's [`tdbms_storage::IoStats`] for costs and handles `into`.
///
/// Single-variable retrieves never decompose, so they take the read-only
/// path; multi-variable retrieves materialize projection temporaries and
/// need the catalog mutably.
pub fn exec_retrieve(
    pager: &Pager,
    catalog: &mut Catalog,
    bound: &BoundRetrieve,
    guard: &QueryGuard,
) -> Result<RetrieveResult> {
    exec_retrieve_with(pager, catalog, bound, guard, None)
}

/// [`exec_retrieve`] steered by a planner-chosen [`QueryPlan`]: the
/// plan's detachment order is applied as a *preference* over the
/// executor's own detachable set (the set itself never changes, so the
/// pages touched — and paper mode's byte-identical figures — don't
/// either; each detachment reads only its own relation and writes only
/// its own temporary).
pub fn exec_retrieve_with(
    pager: &Pager,
    catalog: &mut Catalog,
    bound: &BoundRetrieve,
    guard: &QueryGuard,
    plan: Option<&tdbms_plan::QueryPlan>,
) -> Result<RetrieveResult> {
    if bound.vars.len() < 2 {
        return exec_retrieve_readonly(pager, catalog, bound, guard);
    }
    let mut p = prepare(catalog, bound, guard);
    let order = ordered_detachments(&p, plan);
    decompose(pager, catalog, &mut p, &order)?;
    let temps: Vec<RelId> = p.rts.iter().filter_map(|rt| rt.temp).collect();
    let result = run_joins(pager, p)?;
    // Drop the decomposition temporaries (CPU-only aggregation and sorting
    // have already run, so the statement's I/O sequence is unchanged).
    for id in temps {
        catalog.destroy(pager, id)?;
    }
    Ok(result)
}

/// Execute a bound **single-variable** retrieve without mutating anything
/// but the buffer pool: no decomposition, no temporaries, catalog taken by
/// shared reference. This is the statement shape the concurrent engine
/// runs under its read lock.
pub fn exec_retrieve_readonly(
    pager: &Pager,
    catalog: &Catalog,
    bound: &BoundRetrieve,
    guard: &QueryGuard,
) -> Result<RetrieveResult> {
    if bound.vars.len() >= 2 {
        return Err(Error::Internal(
            "read-only execution requires a single-variable retrieve"
                .into(),
        ));
    }
    run_joins(pager, prepare(catalog, bound, guard))
}

/// Execute a bound retrieve against a **snapshot** of the catalog,
/// entirely off the commit lock.
///
/// `catalog` is the session's private clone of the published read view;
/// decomposition temporaries are created and destroyed in that clone, so
/// the shared catalog never observes them. Execution is *quiet*: it
/// stays off the global phase ledger (another session may be mid-phase)
/// and never invalidates buffers other sessions are using. The version
/// filter (`rts[v].visible`, set from the bound watermark visibility)
/// is what makes the result race-free against concurrent writers.
pub fn exec_retrieve_snapshot(
    pager: &Pager,
    catalog: &mut Catalog,
    bound: &BoundRetrieve,
    guard: &QueryGuard,
) -> Result<RetrieveResult> {
    if bound.vars.len() < 2 {
        return exec_retrieve_readonly(pager, catalog, bound, guard);
    }
    let mut p = prepare(catalog, bound, guard);
    p.quiet = true;
    let order = detachable_vars(&p);
    let decomposed = decompose(pager, catalog, &mut p, &order);
    let temps: Vec<RelId> = p.rts.iter().filter_map(|rt| rt.temp).collect();
    let result = match decomposed {
        Ok(()) => run_joins(pager, p),
        Err(e) => Err(e),
    };
    // Destroy the temporaries even when execution failed, so a fallback
    // to the locked path never leaks their files.
    for id in temps {
        let destroyed = catalog.destroy(pager, id);
        if result.is_ok() {
            destroyed?;
        }
    }
    result
}

/// Everything the join phases need, derived from the bound retrieve with
/// only shared catalog access.
pub(crate) struct Prepared {
    pub(crate) b: BoundRetrieve,
    slots: Vec<Slot>,
    pub(crate) rts: Vec<VarRt>,
    pub(crate) where_cj: Vec<(BExpr, Vec<usize>)>,
    pub(crate) when_cj: Vec<(BTPred, Vec<usize>)>,
    /// Snapshot execution: stay off the global phase ledger and do not
    /// invalidate other sessions' buffers. Serial execution keeps this
    /// `false` so the figures' per-phase I/O accounting is unchanged.
    quiet: bool,
    /// The caller's per-query limits, polled at row granularity.
    guard: QueryGuard,
}

pub(crate) fn prepare(
    catalog: &Catalog,
    bound: &BoundRetrieve,
    guard: &QueryGuard,
) -> Prepared {
    let mut b = bound.clone();
    let nvars = b.vars.len();

    let mut slots: Vec<Slot> = Vec::with_capacity(nvars);
    let mut rts: Vec<VarRt> = Vec::with_capacity(nvars);
    for v in &b.vars {
        let stored = catalog.get(v.rel);
        slots.push(Slot {
            schema: stored.schema.clone(),
            codec: stored.codec.clone(),
            row: None,
        });
        rts.push(VarRt {
            file: stored.file.clone(),
            key_attr: stored.key_attr,
            indexes: stored.indexes.clone(),
            visible: if v.class.has_transaction_time() {
                b.visibility
            } else {
                None
            },
            temp: None,
            history: stored.history.clone(),
        });
    }

    // Cache each conjunct's variable set.
    let where_cj: Vec<(BExpr, Vec<usize>)> = b
        .where_conjuncts
        .drain(..)
        .map(|c| {
            let mut vs = Vec::new();
            c.collect_vars(&mut vs);
            (c, vs)
        })
        .collect();
    let when_cj: Vec<(BTPred, Vec<usize>)> = b
        .when_conjuncts
        .drain(..)
        .map(|c| {
            let mut vs = Vec::new();
            c.collect_vars(&mut vs);
            (c, vs)
        })
        .collect();

    Prepared {
        b,
        slots,
        rts,
        where_cj,
        when_cj,
        quiet: false,
        guard: guard.clone(),
    }
}

/// The variables phase 1 will detach, in the fixed heuristic order
/// (ascending variable position): each needs a one-variable conjunct to
/// consume, and its projection must not lose transaction time the query
/// still references. The set is a property of the *bound query alone* —
/// detaching one variable never changes another's eligibility (own
/// conjuncts removed by a detachment belong to that variable only, and
/// remapping rewrites only the detached variable's attributes) — so a
/// planner may permute this order freely without changing which pages
/// any detachment touches.
pub(crate) fn detachable_vars(p: &Prepared) -> Vec<usize> {
    let nvars = p.b.vars.len();
    let mut out = Vec::new();
    for v in 0..nvars {
        let has_own = p.where_cj.iter().any(|(_, vs)| vs == &[v])
            || p.when_cj.iter().any(|(_, vs)| vs == &[v]);
        if !has_own {
            continue;
        }
        // Attributes of `v` needed after detachment: from targets and
        // from conjuncts that are NOT consumed by the detachment.
        let mut refs: Vec<(usize, usize)> = Vec::new();
        for t in &p.b.targets {
            t.expr.collect_attrs(&mut refs);
        }
        for (c, vs) in p.where_cj.iter() {
            if vs != &[v] {
                c.collect_attrs(&mut refs);
            }
        }
        let schema = &p.slots[v].schema;
        let explicit_len = schema.explicit_attrs().len();
        let tx_indices: Vec<usize> = schema
            .implicit_attrs()
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t,
                    tdbms_kernel::TemporalAttr::TransactionStart
                        | tdbms_kernel::TemporalAttr::TransactionStop
                )
            })
            .map(|(i, _)| explicit_len + i)
            .collect();
        if refs
            .iter()
            .any(|(var, a)| *var == v && tx_indices.contains(a))
        {
            // Projection would lose transaction time; keep the
            // original relation for this variable.
            continue;
        }
        out.push(v);
    }
    out
}

/// The detachment order to execute: the executor's own detachable set,
/// permuted to follow the plan's preference (variables the plan doesn't
/// mention keep their heuristic relative order, after the planned ones).
fn ordered_detachments(
    p: &Prepared,
    plan: Option<&tdbms_plan::QueryPlan>,
) -> Vec<usize> {
    let mut order = detachable_vars(p);
    if let Some(plan) = plan {
        let pref = plan.detach_order();
        let pos = |v: usize| {
            pref.iter().position(|&x| x == v).unwrap_or(usize::MAX)
        };
        order.sort_by_key(|&v| (pos(v), v));
    }
    order
}

/// Phase 1: one-variable detachment. Materializes each listed
/// variable's projection into a temporary (recorded in `rts[v].temp`)
/// and rewrites the plan in place. `order` must be a permutation of a
/// subset of [`detachable_vars`].
fn decompose(
    pager: &Pager,
    catalog: &mut Catalog,
    p: &mut Prepared,
    order: &[usize],
) -> Result<()> {
    let Prepared {
        b,
        slots,
        rts,
        where_cj,
        when_cj,
        quiet,
        guard,
    } = p;
    let quiet = *quiet;
    let guard = guard.clone();
    {
        if !quiet {
            pager.begin_phase("decomposition");
        }
        for &v in order {
            // Attributes of `v` needed after detachment: from targets and
            // from conjuncts that are NOT consumed by the detachment.
            let mut refs: Vec<(usize, usize)> = Vec::new();
            for t in &b.targets {
                t.expr.collect_attrs(&mut refs);
            }
            for (c, vs) in where_cj.iter() {
                if vs != &[v] {
                    c.collect_attrs(&mut refs);
                }
            }
            let schema = &slots[v].schema;
            let explicit_len = schema.explicit_attrs().len();

            let mut needed: Vec<usize> = refs
                .iter()
                .filter(|(var, a)| *var == v && *a < explicit_len)
                .map(|(_, a)| *a)
                .collect();
            needed.sort_unstable();
            needed.dedup();
            if needed.is_empty() {
                needed.push(0);
            }

            // Temp schema: projected explicit attributes; valid time comes
            // along implicitly when the source has it.
            let src_class = b.vars[v].class;
            let temp_class = if src_class.has_valid_time() {
                tdbms_kernel::DatabaseClass::Historical
            } else {
                tdbms_kernel::DatabaseClass::Static
            };
            let temp_schema = Schema::new(
                needed
                    .iter()
                    .map(|&a| {
                        AttrDef::new(
                            schema.name_of(a).expect("in range"),
                            schema.domain_of(a).expect("in range"),
                        )
                    })
                    .collect(),
                temp_class,
                b.vars[v].kind,
            )?;
            let temp_id = catalog.create_temporary(pager, temp_schema)?;

            // Remap table: old stored index -> new stored index, covering
            // projected explicit attrs and the implicit valid attrs.
            let mut map: Vec<(usize, usize)> = needed
                .iter()
                .enumerate()
                .map(|(new, old)| (*old, new))
                .collect();
            {
                let temp = catalog.get(temp_id);
                for t in schema.implicit_attrs() {
                    if let (Some(old), Some(new)) = (
                        schema.temporal_index(*t),
                        temp.schema.temporal_index(*t),
                    ) {
                        map.push((old, new));
                    }
                }
            }

            // Run the one-variable query, materializing the projection.
            let my_where: Vec<BExpr> = where_cj
                .iter()
                .filter(|(_, vs)| vs == &[v])
                .map(|(c, _)| c.clone())
                .collect();
            let my_when: Vec<BTPred> = when_cj
                .iter()
                .filter(|(_, vs)| vs == &[v])
                .map(|(c, _)| c.clone())
                .collect();
            {
                let temp = catalog.get(temp_id);
                let temp_codec = temp.codec.clone();
                let temp_file = temp.file.clone();
                let out_width = temp_codec.width();
                let src_arity_map = map.clone();
                ovqp(
                    pager,
                    slots,
                    &rts[v],
                    v,
                    &my_where,
                    &my_when,
                    &guard,
                    |slots_now, pager_now| {
                        // Project the bound row into the temp layout.
                        let src = &slots_now[v];
                        let row_bytes =
                            src.row.as_deref().expect("bound in ovqp");
                        let mut out = vec![0u8; out_width];
                        for (old, new) in &src_arity_map {
                            let val = src.codec.get(row_bytes, *old);
                            temp_codec.put(&mut out, *new, &val)?;
                        }
                        temp_file.insert(pager_now, &out)?;
                        Ok(())
                    },
                )?;
            }

            // Swap the variable to the temporary.
            {
                let temp = catalog.get(temp_id);
                slots[v].schema = temp.schema.clone();
                slots[v].codec = temp.codec.clone();
                rts[v].file = temp.file.clone();
                rts[v].key_attr = None;
                rts[v].indexes.clear();
                rts[v].visible = None;
                rts[v].temp = Some(temp_id);
                rts[v].history = None;
            }

            // Consume this variable's own conjuncts and remap the rest.
            where_cj.retain(|(_, vs)| vs != &[v]);
            when_cj.retain(|(_, vs)| vs != &[v]);
            for t in &mut b.targets {
                t.expr.remap_attrs(v, &map);
            }
            for (c, _) in where_cj.iter_mut() {
                c.remap_attrs(v, &map);
            }
        }
        // Temporaries are fully written; start the join phase with cold
        // buffers (also flushes the temps, counting their output pages —
        // attributed to the decomposition phase, which produced them).
        // A quiet (snapshot) execution must not touch other sessions'
        // warm frames, so it keeps its temporaries buffered instead: the
        // join reads them straight from the pool and the destroy at the
        // end discards frames and file together.
        if !quiet {
            pager.invalidate_buffers()?;
            pager.end_phase();
        }
    }
    Ok(())
}

/// Phases 2–4: variable ordering, conjunct leveling, nested-iteration
/// substitution, then aggregation and sorting. Needs no catalog access at
/// all — by this point every variable is a resolved [`RelFile`].
fn run_joins(pager: &Pager, p: Prepared) -> Result<RetrieveResult> {
    let Prepared {
        b,
        mut slots,
        rts,
        where_cj,
        when_cj,
        quiet,
        guard,
    } = p;
    let nvars = b.vars.len();

    // ---- Phase 2: variable ordering ------------------------------------
    // Variables that become keyed-accessible through a join conjunct go
    // innermost; everything else keeps first-use order.
    let is_keyed_join = |v: usize| -> bool {
        rts[v].key_attr.is_some()
            && where_cj.iter().any(|(c, vs)| {
                vs.contains(&v)
                    && key_probe_shape(c, v, rts[v].key_attr).is_some()
            })
    };
    let mut order: Vec<usize> = (0..nvars).collect();
    order.sort_by_key(|&v| (is_keyed_join(v), v));

    // ---- Phase 3: conjunct levels ---------------------------------------
    let pos_of = |v: usize| order.iter().position(|&x| x == v).unwrap_or(0);
    let where_leveled: Vec<(BExpr, Vec<usize>, usize)> = where_cj
        .into_iter()
        .map(|(c, vs)| {
            let lvl = vs.iter().map(|&v| pos_of(v)).max().unwrap_or(0);
            (c, vs, lvl)
        })
        .collect();
    let when_leveled: Vec<(BTPred, Vec<usize>, usize)> = when_cj
        .into_iter()
        .map(|(c, vs)| {
            let lvl = vs.iter().map(|&v| pos_of(v)).max().unwrap_or(0);
            (c, vs, lvl)
        })
        .collect();

    // ---- Phase 4: nested iteration --------------------------------------
    let mut columns: Vec<(String, Domain)> = b
        .targets
        .iter()
        .map(|t| (t.name.clone(), t.domain))
        .collect();
    // The implicit valid-time output columns; a target that already
    // projects an attribute of the same name supersedes the implicit one
    // (so `retrieve (e.valid_from)` shows the stored attribute rather
    // than erroring).
    let mut add_from = false;
    let mut add_to = false;
    if b.valid.is_some() {
        add_from = !columns.iter().any(|(n, _)| n == "valid_from");
        add_to = !columns.iter().any(|(n, _)| n == "valid_to");
        if add_from {
            columns.push(("valid_from".to_string(), Domain::Time));
        }
        if add_to {
            columns.push(("valid_to".to_string(), Domain::Time));
        }
    }

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if nvars >= 2 && !quiet {
        pager.begin_phase("substitution");
    }
    join_level(
        pager,
        &mut slots,
        &rts,
        &order,
        0,
        &where_leveled,
        &when_leveled,
        &guard,
        &mut |slots_now| {
            guard.check_rows(rows.len())?;
            let mut row = Vec::with_capacity(columns.len());
            for t in &b.targets {
                row.push(eval_expr(&t.expr, slots_now)?);
            }
            if let Some((from, to)) = &b.valid {
                if add_from {
                    row.push(Value::Time(eval_texpr(from, slots_now)?.lo));
                }
                if add_to {
                    row.push(Value::Time(eval_texpr(to, slots_now)?.hi));
                }
            }
            rows.push(row);
            Ok(())
        },
    )?;
    if nvars >= 2 && !quiet {
        pager.end_phase();
    }

    // Aggregation pass: group by the non-aggregate targets and fold the
    // aggregate columns (the rows currently hold each aggregate's raw
    // argument value).
    if b.targets.iter().any(|t| t.agg.is_some()) {
        rows = aggregate_rows(&b.targets, rows)?;
    }

    // `sort by` over result columns (a stable sort; incomparable values
    // keep their relative order rather than erroring mid-sort).
    if !b.sort.is_empty() {
        rows.sort_by(|a, r| {
            for (idx, desc) in &b.sort {
                let ord = a[*idx]
                    .compare(&r[*idx])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    Ok(RetrieveResult { columns, rows })
}

/// Fold raw result rows into one row per group. Group keys are the
/// non-aggregate target positions; rows are sorted by key (Quel-style
/// deterministic output) and folded in runs.
fn aggregate_rows(
    targets: &[crate::bound::BoundTarget],
    mut rows: Vec<Vec<Value>>,
) -> Result<Vec<Vec<Value>>> {
    use tdbms_tquel::ast::AggFunc;
    let key_idx: Vec<usize> = targets
        .iter()
        .enumerate()
        .filter(|(_, t)| t.agg.is_none())
        .map(|(i, _)| i)
        .collect();

    let cmp_keys =
        |a: &Vec<Value>, b: &Vec<Value>| -> Result<std::cmp::Ordering> {
            for &i in &key_idx {
                let ord = a[i].compare(&b[i]).ok_or_else(|| {
                    Error::BadValue(format!(
                        "cannot group by incomparable values {} / {}",
                        a[i], b[i]
                    ))
                })?;
                if ord != std::cmp::Ordering::Equal {
                    return Ok(ord);
                }
            }
            Ok(std::cmp::Ordering::Equal)
        };
    // Sort; comparison errors surface afterwards via the run folding.
    rows.sort_by(|a, b| {
        cmp_keys(a, b).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut i = 0;
    while i < rows.len() {
        let mut j = i + 1;
        while j < rows.len()
            && cmp_keys(&rows[i], &rows[j])? == std::cmp::Ordering::Equal
        {
            j += 1;
        }
        let group = &rows[i..j];
        let mut folded: Vec<Value> = Vec::with_capacity(targets.len());
        for (k, t) in targets.iter().enumerate() {
            let v = match t.agg {
                None => group[0][k].clone(),
                Some(AggFunc::Count) => Value::Int(group.len() as i64),
                Some(AggFunc::Sum) => fold_sum(group, k)?,
                Some(AggFunc::Avg) => {
                    let sum = fold_sum(group, k)?;
                    Value::Float(
                        sum.as_f64().expect("sum is numeric")
                            / group.len() as f64,
                    )
                }
                Some(AggFunc::Min) => fold_extreme(group, k, true)?,
                Some(AggFunc::Max) => fold_extreme(group, k, false)?,
            };
            folded.push(v);
        }
        out.push(folded);
        i = j;
    }

    // An empty input with no grouping keys still has well-defined counts
    // and sums (zero); min/max/avg of nothing is an error the user can fix
    // by adding a qualification.
    if out.is_empty() && key_idx.is_empty() {
        let mut folded: Vec<Value> = Vec::with_capacity(targets.len());
        for t in targets {
            use tdbms_tquel::ast::AggFunc as A;
            folded.push(match t.agg {
                Some(A::Count) => Value::Int(0),
                Some(A::Sum) if t.domain.is_float() => Value::Float(0.0),
                Some(A::Sum) => Value::Int(0),
                Some(A::Avg | A::Min | A::Max) => {
                    return Err(Error::BadValue(format!(
                        "{} of an empty set",
                        t.agg.expect("aggregate").as_str()
                    )))
                }
                None => unreachable!("no grouping keys"),
            });
        }
        out.push(folded);
    }
    Ok(out)
}

fn fold_sum(group: &[Vec<Value>], k: usize) -> Result<Value> {
    let mut int_sum: i64 = 0;
    let mut float_sum: f64 = 0.0;
    let mut saw_float = false;
    for row in group {
        match &row[k] {
            Value::Int(i) => {
                int_sum = int_sum.checked_add(*i).ok_or_else(|| {
                    Error::BadValue("sum overflows".into())
                })?
            }
            Value::Float(f) => {
                saw_float = true;
                float_sum += f;
            }
            other => {
                return Err(Error::BadValue(format!(
                    "sum over non-numeric value {other}"
                )))
            }
        }
    }
    Ok(if saw_float {
        Value::Float(float_sum + int_sum as f64)
    } else {
        Value::Int(int_sum)
    })
}

fn fold_extreme(
    group: &[Vec<Value>],
    k: usize,
    min: bool,
) -> Result<Value> {
    let mut best = group[0][k].clone();
    for row in &group[1..] {
        let ord = row[k].compare(&best).ok_or_else(|| {
            Error::BadValue(format!(
                "cannot compare {} with {}",
                row[k], best
            ))
        })?;
        if (min && ord == std::cmp::Ordering::Less)
            || (!min && ord == std::cmp::Ordering::Greater)
        {
            best = row[k].clone();
        }
    }
    Ok(best)
}

/// Does conjunct `c` have the shape `v.key = <expr not referencing v>`
/// (either side)? Returns the probe expression.
pub(crate) fn key_probe_shape(
    c: &BExpr,
    v: usize,
    key_attr: Option<usize>,
) -> Option<&BExpr> {
    let key = key_attr?;
    let BExpr::Bin {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = c
    else {
        return None;
    };
    match (&**lhs, &**rhs) {
        (BExpr::Attr { var, attr }, probe)
            if *var == v && *attr == key && !probe.references(v) =>
        {
            Some(probe)
        }
        (probe, BExpr::Attr { var, attr })
            if *var == v && *attr == key && !probe.references(v) =>
        {
            Some(probe)
        }
        _ => None,
    }
}

/// Encode a [`Value`] as key bytes for the given domain, if it fits.
fn encode_key(domain: Domain, v: &Value) -> Option<Vec<u8>> {
    match (domain, v) {
        (Domain::I4, Value::Int(i)) => {
            Some(i32::try_from(*i).ok()?.to_le_bytes().to_vec())
        }
        (Domain::I2, Value::Int(i)) => {
            Some(i16::try_from(*i).ok()?.to_le_bytes().to_vec())
        }
        (Domain::I1, Value::Int(i)) => {
            Some(vec![i8::try_from(*i).ok()? as u8])
        }
        (Domain::Time, Value::Time(t)) => {
            Some(t.as_secs().to_le_bytes().to_vec())
        }
        (Domain::Char(n), Value::Str(s)) => {
            if s.len() > n as usize {
                return None;
            }
            let mut buf = vec![b' '; n as usize];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            Some(buf)
        }
        _ => None,
    }
}

/// Visibility gate for one candidate row of variable `v`.
fn version_visible(
    slot: &Slot,
    vis: Option<Visibility>,
    row: &[u8],
) -> bool {
    match vis {
        None => true,
        Some(vis) => match row_tx_period(&slot.schema, &slot.codec, row) {
            Some((start, stop)) => vis.sees(start, stop),
            None => true,
        },
    }
}

/// The one-variable query processor: iterate variable `v`'s relation
/// through its best access path, apply visibility and the given
/// conjuncts, and call `emit` for each qualifying version (bound into
/// `slots[v]`).
#[allow(clippy::too_many_arguments)]
fn ovqp(
    pager: &Pager,
    slots: &mut [Slot],
    rt: &VarRt,
    v: usize,
    where_conjuncts: &[BExpr],
    when_conjuncts: &[BTPred],
    guard: &QueryGuard,
    mut emit: impl FnMut(&mut [Slot], &Pager) -> Result<()>,
) -> Result<()> {
    // Access-path selection: a key-equality conjunct evaluable without
    // `v` enables keyed access.
    let mut probe_key: Option<Vec<u8>> = None;
    if let Some(key) = rt.key_attr {
        for c in where_conjuncts {
            if let Some(probe) = key_probe_shape(c, v, Some(key)) {
                let mut pv = Vec::new();
                probe.collect_vars(&mut pv);
                if pv.iter().all(|&x| slots[x].row.is_some()) {
                    let val = eval_expr(probe, slots)?;
                    let domain =
                        slots[v].schema.domain_of(key).ok_or_else(
                            || Error::Internal("bad key attr".into()),
                        )?;
                    if let Some(bytes) = encode_key(domain, &val) {
                        probe_key = Some(bytes);
                        break;
                    }
                }
            }
        }
    }

    // Secondary-index probe: when no primary-key access exists, a
    // conjunct `v.attr = <bound expr>` over an indexed attribute turns the
    // scan into an index lookup plus targeted fetches (the paper's §6
    // secondary-indexing enhancement, live in the query processor).
    let mut index_tids: Option<Vec<tdbms_storage::TupleId>> = None;
    if probe_key.is_none() {
        'outer: for c in where_conjuncts {
            for ix in &rt.indexes {
                if let Some(probe) = key_probe_shape(c, v, Some(ix.attr)) {
                    let mut pv = Vec::new();
                    probe.collect_vars(&mut pv);
                    if pv.iter().all(|&x| slots[x].row.is_some()) {
                        let val = eval_expr(probe, slots)?;
                        let domain =
                            slots[v].schema.domain_of(ix.attr).ok_or_else(
                                || Error::Internal("bad index attr".into()),
                            )?;
                        if let Some(bytes) = encode_key(domain, &val) {
                            index_tids =
                                Some(ix.index.lookup_tids(pager, &bytes)?);
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    let file = rt.file.clone();
    let mut lookup;
    let mut scan;
    let mut tids_iter;
    enum Cur {
        Lookup,
        Scan,
        Tids,
    }
    let mode = match (&probe_key, index_tids) {
        (Some(key), _) => match file.lookup_eq(pager, key)? {
            Some(l) => {
                lookup = Some(l);
                scan = None;
                tids_iter = None;
                Cur::Lookup
            }
            None => {
                lookup = None;
                scan = Some(file.scan());
                tids_iter = None;
                Cur::Scan
            }
        },
        (None, Some(tids)) => {
            lookup = None;
            scan = None;
            tids_iter = Some(tids.into_iter());
            Cur::Tids
        }
        (None, None) => {
            lookup = None;
            scan = Some(file.scan());
            tids_iter = None;
            Cur::Scan
        }
    };

    loop {
        guard.tick()?;
        let next = match mode {
            Cur::Lookup => {
                lookup.as_mut().expect("lookup mode").next(pager, &file)?
            }
            Cur::Scan => {
                scan.as_mut().expect("scan mode").next(pager, &file)?
            }
            Cur::Tids => {
                match tids_iter.as_mut().expect("tids mode").next() {
                    Some(tid) => Some((tid, file.get(pager, tid)?)),
                    None => None,
                }
            }
        };
        let Some((_tid, row)) = next else { break };
        if !version_visible(&slots[v], rt.visible, &row) {
            continue;
        }
        slots[v].row = Some(row);
        let mut ok = true;
        for c in where_conjuncts {
            if !eval_bool(c, slots)? {
                ok = false;
                break;
            }
        }
        if ok {
            for c in when_conjuncts {
                if !eval_tpred(c, slots)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            emit(slots, pager)?;
        }
    }

    // Migrated versions: after reorganization the primary holds only the
    // rows the compactor left behind, so a query whose visibility reaches
    // behind the sidecar's stop-time high-water mark must also walk the
    // clustered history (keyed when the primary access was keyed). At-now
    // retrievals skip it entirely — every migrated version has already
    // stopped — which is the bounded-I/O property reorganization exists
    // to provide.
    if let Some(history) = &rt.history {
        let wants_history = match rt.visible {
            None => true,
            Some(vis) => vis.at < history.max_stop(),
        };
        if wants_history {
            let mut visit = |row: &[u8]| -> Result<()> {
                guard.tick()?;
                if !version_visible(&slots[v], rt.visible, row) {
                    return Ok(());
                }
                slots[v].row = Some(row.to_vec());
                let mut ok = true;
                for c in where_conjuncts {
                    if !eval_bool(c, slots)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for c in when_conjuncts {
                        if !eval_tpred(c, slots)? {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    emit(slots, pager)?;
                }
                Ok(())
            };
            match &probe_key {
                Some(key) => history.for_key(pager, key, &mut visit)?,
                None => history.for_all(pager, &mut visit)?,
            }
        }
    }
    slots[v].row = None;
    Ok(())
}

/// One level of the tuple-substitution join.
#[allow(clippy::too_many_arguments)]
fn join_level(
    pager: &Pager,
    slots: &mut [Slot],
    rts: &[VarRt],
    order: &[usize],
    depth: usize,
    where_leveled: &[(BExpr, Vec<usize>, usize)],
    when_leveled: &[(BTPred, Vec<usize>, usize)],
    guard: &QueryGuard,
    emit: &mut dyn FnMut(&mut [Slot]) -> Result<()>,
) -> Result<()> {
    if depth == order.len() {
        return emit(slots);
    }
    let v = order[depth];
    let my_where: Vec<BExpr> = where_leveled
        .iter()
        .filter(|(_, _, l)| *l == depth)
        .map(|(c, _, _)| c.clone())
        .collect();
    let my_when: Vec<BTPred> = when_leveled
        .iter()
        .filter(|(_, _, l)| *l == depth)
        .map(|(c, _, _)| c.clone())
        .collect();

    // Collect matching rows at this level, then recurse per row. (The
    // recursion touches other relations, whose buffers are independent, so
    // collecting first vs. streaming does not change I/O; it keeps the
    // cursor borrows simple.)
    let mut matches: Vec<Vec<u8>> = Vec::new();
    ovqp(
        pager,
        slots,
        &rts[v],
        v,
        &my_where,
        &my_when,
        guard,
        |s, _| {
            matches.push(s[v].row.clone().expect("bound"));
            Ok(())
        },
    )?;
    for row in matches {
        slots[v].row = Some(row);
        join_level(
            pager,
            slots,
            rts,
            order,
            depth + 1,
            where_leveled,
            when_leveled,
            guard,
            emit,
        )?;
    }
    slots[v].row = None;
    Ok(())
}

/// Shared by DML: find the versions of a single variable that satisfy a
/// qualification (used by delete/replace target collection). Uses the same
/// access-path selection as the query processor, but also reports each
/// qualifying version's address.
pub(crate) fn collect_matching(
    pager: &Pager,
    slot: &mut Slot,
    file: &RelFile,
    key_attr: Option<usize>,
    visible: Option<Visibility>,
    where_conjuncts: &[BExpr],
    when_conjuncts: &[BTPred],
) -> Result<Vec<(tdbms_storage::TupleId, Vec<u8>)>> {
    // Access path: a constant key-equality conjunct enables keyed access.
    let mut probe_key: Option<Vec<u8>> = None;
    if let Some(key) = key_attr {
        for c in where_conjuncts {
            if let Some(probe) = key_probe_shape(c, 0, Some(key)) {
                let mut pv = Vec::new();
                probe.collect_vars(&mut pv);
                if pv.is_empty() {
                    let val = eval_expr(probe, &[])?;
                    let domain =
                        slot.schema.domain_of(key).ok_or_else(|| {
                            Error::Internal("bad key attr".into())
                        })?;
                    if let Some(bytes) = encode_key(domain, &val) {
                        probe_key = Some(bytes);
                        break;
                    }
                }
            }
        }
    }

    let mut lookup = match &probe_key {
        Some(key) => file.lookup_eq(pager, key)?,
        None => None,
    };
    let mut scan = if lookup.is_none() {
        Some(file.scan())
    } else {
        None
    };

    let mut out = Vec::new();
    loop {
        let next = match (&mut lookup, &mut scan) {
            (Some(cur), _) => cur.next(pager, file)?,
            (None, Some(cur)) => cur.next(pager, file)?,
            (None, None) => unreachable!("one cursor is always set"),
        };
        let Some((tid, row)) = next else { break };
        if !version_visible(slot, visible, &row) {
            continue;
        }
        slot.row = Some(row);
        let slots = std::slice::from_mut(slot);
        let mut ok = true;
        for c in where_conjuncts {
            if !eval_bool(c, slots)? {
                ok = false;
                break;
            }
        }
        if ok {
            for c in when_conjuncts {
                if !eval_tpred(c, slots)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.push((tid, slot.row.clone().expect("bound")));
        }
    }
    slot.row = None;
    Ok(out)
}
