//! The temporal algebra evaluated by `when` and `valid` clauses.
//!
//! TQuel's temporal expressions denote *events* and *intervals* built from
//! the implicit time attributes of participating tuples. We represent both
//! as a [`TInterval`] — a pair of bounds at one-second resolution — with an
//! event being the degenerate case `lo == hi`. The predicates compare the
//! stored attribute values directly with `<=`, following TQuel's tuple
//! calculus semantics:
//!
//! * `a overlap b` — the intervals share an instant: `max(lo) <= min(hi)`.
//! * `a precede b` — `a` ends no later than `b` begins: `a.hi <= b.lo`
//!   (meeting intervals precede, as in TQuel).
//! * `a equal b` — identical bounds.
//!
//! Version *visibility* (whether a stored version exists at a given
//! transaction time) uses the half-open rule `start <= t < stop` instead —
//! see [`crate::db`] — so that a rollback to the exact instant of an update
//! sees exactly one version of each tuple.

use tdbms_kernel::TimeVal;

/// An interval (or degenerate event) in either valid or transaction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TInterval {
    /// First instant.
    pub lo: TimeVal,
    /// Last instant (inclusive, per the stored-attribute-value semantics).
    pub hi: TimeVal,
}

impl TInterval {
    /// An interval from `lo` to `hi`.
    pub fn new(lo: TimeVal, hi: TimeVal) -> Self {
        TInterval { lo, hi }
    }

    /// A degenerate event at `t`.
    pub fn event(t: TimeVal) -> Self {
        TInterval { lo: t, hi: t }
    }

    /// True if the bounds are inverted (an empty intersection result).
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// True for a degenerate event.
    pub fn is_event(&self) -> bool {
        self.lo == self.hi
    }

    /// `start of e` — the first instant as an event.
    pub fn start(&self) -> TInterval {
        TInterval::event(self.lo)
    }

    /// `end of e` — the last instant as an event.
    pub fn end(&self) -> TInterval {
        TInterval::event(self.hi)
    }

    /// `a overlap b` as a constructor: the intersection (possibly empty).
    pub fn intersect(&self, other: &TInterval) -> TInterval {
        TInterval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// `a extend b` as a constructor: the smallest covering interval.
    pub fn span(&self, other: &TInterval) -> TInterval {
        TInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The `overlap` predicate.
    pub fn overlaps(&self, other: &TInterval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The `precede` predicate.
    pub fn precedes(&self, other: &TInterval) -> bool {
        self.hi <= other.lo
    }

    /// The `equal` predicate.
    pub fn equals(&self, other: &TInterval) -> bool {
        self.lo == other.lo && self.hi == other.hi
    }

    /// Does this interval contain the instant `t`?
    pub fn contains(&self, t: TimeVal) -> bool {
        self.lo <= t && t <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u32) -> TimeVal {
        TimeVal::from_secs(secs)
    }

    fn iv(lo: u32, hi: u32) -> TInterval {
        TInterval::new(t(lo), t(hi))
    }

    #[test]
    fn intersect_and_span() {
        let a = iv(10, 20);
        let b = iv(15, 30);
        assert_eq!(a.intersect(&b), iv(15, 20));
        assert_eq!(a.span(&b), iv(10, 30));
        assert!(a.overlaps(&b));
        let c = iv(25, 30);
        assert!(a.intersect(&c).is_empty());
        assert!(!a.overlaps(&c));
        assert_eq!(a.span(&c), iv(10, 30));
    }

    #[test]
    fn meeting_intervals_overlap_at_the_boundary() {
        // Shared endpoint: attribute-value semantics say they overlap and
        // also that the first precedes the second.
        let a = iv(10, 20);
        let b = iv(20, 30);
        assert!(a.overlaps(&b));
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }

    #[test]
    fn events_behave_as_degenerate_intervals() {
        let e = TInterval::event(t(15));
        assert!(e.is_event());
        assert!(iv(10, 20).overlaps(&e));
        assert!(!iv(16, 20).overlaps(&e));
        assert!(e.precedes(&iv(15, 99)));
        assert!(e.precedes(&e));
    }

    #[test]
    fn start_end_are_events() {
        let a = iv(10, 20);
        assert_eq!(a.start(), TInterval::event(t(10)));
        assert_eq!(a.end(), TInterval::event(t(20)));
        assert!(a.start().is_event());
    }

    #[test]
    fn forever_bound_current_versions() {
        let current = TInterval::new(t(100), TimeVal::FOREVER);
        let now = TInterval::event(t(5000));
        assert!(current.overlaps(&now));
        assert!(current.contains(t(100)));
        assert!(current.contains(TimeVal::FOREVER));
        let closed = iv(100, 200);
        assert!(!closed.overlaps(&TInterval::event(t(5000))));
    }

    #[test]
    fn equal_predicate() {
        assert!(iv(1, 5).equals(&iv(1, 5)));
        assert!(!iv(1, 5).equals(&iv(1, 6)));
    }
}
