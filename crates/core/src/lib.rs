//! # tdbms-core
//!
//! The temporal DBMS itself: the paper's primary contribution. Four
//! database classes (static, rollback, historical, temporal), the TQuel
//! statement set over them, the version-embedding update semantics of
//! Section 4, and the Ingres-style query processor (one-variable query
//! processor + decomposition) whose page-access behaviour Section 5
//! benchmarks.
//!
//! The main entry point is [`Database`]:
//!
//! ```
//! use tdbms_core::Database;
//!
//! let mut db = Database::in_memory();
//! db.execute(
//!     "create temporal interval emp (name = c20, salary = i4)",
//! ).unwrap();
//! db.execute(r#"append to emp (name = "merrie", salary = 11000)"#).unwrap();
//! db.execute(r#"range of e is emp
//!               replace e (salary = 12000) where e.name = "merrie""#).unwrap();
//! // The old salary is still queryable through time.
//! let out = db.execute(r#"retrieve (e.salary) where e.name = "merrie""#).unwrap();
//! assert_eq!(out.rows().len(), 2); // two versions valid over history
//! ```

pub mod binder;
pub mod bound;
pub mod copy;
pub mod db;
pub mod dml;
pub mod engine;
pub mod eval;
pub mod exec;
pub mod guard;
pub mod interval;
pub mod plan;

pub use db::{
    Database, ExecOutput, RelationMeta, ReorgStats, SCRUB_FILE, WAL_FILE,
};
pub use engine::{Engine, LockStats, ReorgDaemon, Session, SessionLimits};
pub use exec::QueryStats;
pub use guard::QueryGuard;
pub use interval::TInterval;
pub use tdbms_plan::{
    AccessPath, PlanStep, PlannerMode, QueryPlan, RelStats,
};
pub use tdbms_storage::{
    AccessMethod, BufferConfig, EvictionPolicy, PhaseIo,
};
pub use tdbms_wal::{CheckpointPolicy, GroupCommitConfig};
