//! Online reorganization: migrating transaction-stopped versions into
//! clustered history sidecars must change page costs, never answers.

use tdbms_core::{Database, Engine};
use tdbms_kernel::{Granularity, TimeVal};

fn fmt(t: TimeVal) -> String {
    t.format(Granularity::Second)
}

/// A keyed rollback relation with a versioned update history: `nkeys`
/// tuples, each replaced `nversions - 1` times.
fn versioned_db(nkeys: i64, nversions: usize) -> Database {
    let mut db = Database::in_memory();
    db.execute("create rollback r (id = i4, x = i4)").unwrap();
    for id in 1..=nkeys {
        db.execute(&format!("append to r (id = {id}, x = 0)"))
            .unwrap();
    }
    db.execute("modify r to hash on id where fillfactor = 100")
        .unwrap();
    db.execute("range of v is r").unwrap();
    for ver in 1..nversions {
        for id in 1..=nkeys {
            db.execute(&format!("replace v (x = {ver}) where v.id = {id}"))
                .unwrap();
        }
    }
    db
}

fn sorted_ints(out: &tdbms_core::ExecOutput) -> Vec<i64> {
    let mut v: Vec<i64> =
        out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    v.sort_unstable();
    v
}

#[test]
fn reorganization_changes_no_answer_at_any_time() {
    let mut db = versioned_db(4, 6);
    let mid = db.clock().now();
    db.execute("range of v is r").unwrap();
    db.execute("replace v (x = 99) where v.id = 2").unwrap();

    let queries = [
        "retrieve (v.x) where v.id = 2".to_string(),
        "retrieve (v.id)".to_string(),
        format!("retrieve (v.x) as of \"{}\"", fmt(mid)),
        format!(
            "retrieve (v.x) as of \"{}\" through \"now\"",
            fmt(TimeVal::BEGINNING)
        ),
    ];
    let before: Vec<Vec<i64>> = queries
        .iter()
        .map(|q| sorted_ints(&db.execute(q).unwrap()))
        .collect();

    let migrated = db.reorganize("r").unwrap();
    // 4 keys × 5 superseded versions, plus the replace pair bookkeeping
    // of id 2 — at minimum every superseded version moved.
    assert!(migrated >= 20, "expected a real migration, got {migrated}");
    assert_eq!(db.reorg_stats().rows_migrated, migrated);
    assert_eq!(db.reorg_stats().runs, 1);

    let after: Vec<Vec<i64>> = queries
        .iter()
        .map(|q| sorted_ints(&db.execute(q).unwrap()))
        .collect();
    assert_eq!(before, after, "reorganization changed query answers");

    // A second pass with nothing newly stopped migrates nothing.
    assert_eq!(db.reorganize("r").unwrap(), 0);
    assert_eq!(db.reorg_stats().runs, 1);
}

#[test]
fn at_now_keyed_io_shrinks_and_history_io_stays_off_the_hot_path() {
    // One hot tuple with a long version chain: 40 versions overflow the
    // hash bucket, so an at-now keyed probe walks the whole chain.
    let mut db = versioned_db(1, 40);
    db.execute("range of v is r").unwrap();
    let q = "retrieve (v.x) where v.id = 1";

    let before_rows = sorted_ints(&db.execute(q).unwrap());
    // Warm-cache page *accesses* (reads + buffer hits): with everything
    // buffered this is a pure chain-length measure.
    let s = db.execute(q).unwrap().stats;
    let before_io = s.input_pages + s.buffer_hits;

    let migrated = db.reorganize("r").unwrap();
    assert_eq!(migrated, 39, "all superseded versions migrate");

    let after = db.execute(q).unwrap();
    assert_eq!(sorted_ints(&after), before_rows);
    let after_io = after.stats.input_pages + after.stats.buffer_hits;
    assert!(
        after_io < before_io,
        "at-now keyed probe must shrink: {before_io} -> {after_io}",
    );

    // Time travel still sees all 40 versions, now served from the
    // clustered sidecar.
    let all = db
        .execute(&format!(
            "retrieve (v.x) as of \"{}\" through \"now\"",
            fmt(TimeVal::BEGINNING)
        ))
        .unwrap();
    assert_eq!(all.rows().len(), 40);
}

#[test]
fn reorganized_state_survives_a_durable_reopen() {
    let dir = std::env::temp_dir()
        .join(format!("tdbms-reorg-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let expect_all;
    let expect_now;
    {
        let mut db = Database::open_durable(&dir).unwrap();
        db.execute("create rollback r (id = i4, x = i4)").unwrap();
        for id in 1..=3 {
            db.execute(&format!("append to r (id = {id}, x = 0)"))
                .unwrap();
        }
        db.execute("modify r to hash on id where fillfactor = 100")
            .unwrap();
        db.execute("range of v is r").unwrap();
        for ver in 1..8 {
            db.execute(&format!("replace v (x = {ver}) where v.id = 2"))
                .unwrap();
        }
        assert!(db.reorganize("r").unwrap() > 0);
        expect_now = sorted_ints(&db.execute("retrieve (v.x)").unwrap());
        expect_all = sorted_ints(
            &db.execute(&format!(
                "retrieve (v.x) as of \"{}\" through \"now\"",
                fmt(TimeVal::BEGINNING)
            ))
            .unwrap(),
        );
    }

    let mut db = Database::open_durable(&dir).unwrap();
    db.execute("range of v is r").unwrap();
    assert_eq!(
        sorted_ints(&db.execute("retrieve (v.x)").unwrap()),
        expect_now
    );
    assert_eq!(
        sorted_ints(
            &db.execute(&format!(
                "retrieve (v.x) as of \"{}\" through \"now\"",
                fmt(TimeVal::BEGINNING)
            ))
            .unwrap()
        ),
        expect_all
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_compacts_while_sessions_read_and_write() {
    let engine = Engine::new(versioned_db(4, 4));
    let daemon =
        engine.spawn_reorg_daemon(std::time::Duration::from_millis(5));
    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = engine.clone();
            scope.spawn(move || {
                let mut s = engine.session();
                s.execute("range of v is r").unwrap();
                for i in 0..20 {
                    if t == 0 {
                        s.execute(&format!(
                            "replace v (x = {}) where v.id = 3",
                            100 + i
                        ))
                        .unwrap();
                    } else {
                        // Every key stays visible at now throughout.
                        let out = s.execute("retrieve (v.id)").unwrap();
                        assert_eq!(
                            out.rows().len(),
                            4,
                            "a current version went missing mid-reorg"
                        );
                    }
                }
            });
        }
    });
    // Give the daemon a window to run at least once more, then stop.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let migrated = daemon.migrated();
    daemon.stop();
    assert!(migrated > 0, "daemon never migrated anything");
    // Quiescent: answers are complete and accounting is consistent.
    let mut s = engine.session();
    s.execute("range of v is r").unwrap();
    let all = s
        .execute(&format!(
            "retrieve (v.x) as of \"{}\" through \"now\"",
            fmt(TimeVal::BEGINNING)
        ))
        .unwrap();
    // 4 keys × 4 versions initially, plus 20 replace-created versions
    // of id 3 (each replace adds one version and stops another).
    assert_eq!(all.rows().len(), 36);
    engine.with_read(|db| assert!(db.io_stats().is_consistent()));
}
