//! End-to-end semantics of the four database classes through TQuel.

use tdbms_core::Database;
use tdbms_kernel::{DatabaseClass, TimeVal, Value};

fn ints(out: &tdbms_core::ExecOutput, col: &str) -> Vec<i64> {
    let idx = out.column_index(col).unwrap_or_else(|| {
        panic!(
            "no column {col}; have {:?}",
            out.columns
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>()
        )
    });
    let mut v: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r[idx].as_int().unwrap())
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn static_relations_forget_the_past() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4, x = i4)").unwrap();
    db.execute("append to s (id = 1, x = 10)").unwrap();
    db.execute("append to s (id = 2, x = 20)").unwrap();
    db.execute("range of v is s").unwrap();
    db.execute("replace v (x = 11) where v.id = 1").unwrap();
    let out = db.execute("retrieve (v.id, v.x)").unwrap();
    assert_eq!(out.rows().len(), 2);
    assert_eq!(ints(&out, "x"), vec![11, 20]);
    // Delete physically removes.
    db.execute("delete v where v.id = 1").unwrap();
    let out = db.execute("retrieve (v.id)").unwrap();
    assert_eq!(ints(&out, "id"), vec![2]);
}

#[test]
fn rollback_relations_support_as_of() {
    let mut db = Database::in_memory();
    db.execute("create rollback r (id = i4, x = i4)").unwrap();
    db.execute("append to r (id = 1, x = 10)").unwrap();
    let t_after_insert = db.clock().now();
    db.execute("range of v is r").unwrap();
    db.execute("replace v (x = 11) where v.id = 1").unwrap();
    db.execute("delete v where v.id = 1").unwrap();

    // Current state: empty.
    let out = db.execute("retrieve (v.id, v.x)").unwrap();
    assert_eq!(out.rows().len(), 0);

    // As of just after the insert: the original version.
    let q = format!(
        "retrieve (v.x) as of \"{}\"",
        t_after_insert.format(tdbms_kernel::Granularity::Second)
    );
    let out = db.execute(&q).unwrap();
    assert_eq!(ints(&out, "x"), vec![10]);
}

#[test]
fn rollback_as_of_through_sees_every_version_in_the_span() {
    let mut db = Database::in_memory();
    db.execute("create rollback r (id = i4, x = i4)").unwrap();
    db.execute("append to r (id = 1, x = 10)").unwrap();
    let t0 = db.clock().now();
    db.execute("range of v is r").unwrap();
    db.execute("replace v (x = 11) where v.id = 1").unwrap();
    db.execute("replace v (x = 12) where v.id = 1").unwrap();
    let t1 = db.clock().now();
    let fmt = |t: TimeVal| t.format(tdbms_kernel::Granularity::Second);
    let out = db
        .execute(&format!(
            "retrieve (v.x) as of \"{}\" through \"{}\"",
            fmt(t0),
            fmt(t1)
        ))
        .unwrap();
    assert_eq!(ints(&out, "x"), vec![10, 11, 12]);
}

#[test]
fn historical_relations_answer_when_queries() {
    let mut db = Database::in_memory();
    db.execute("create historical interval emp (name = c12, dept = c12)")
        .unwrap();
    // merrie was in the toy department in 1980-1982, then in tools.
    db.execute(
        r#"append to emp (name = "merrie", dept = "toys")
           valid from "1980" to "1982""#,
    )
    .unwrap();
    db.execute(
        r#"append to emp (name = "merrie", dept = "tools")
           valid from "1982" to "forever""#,
    )
    .unwrap();
    db.execute("range of e is emp").unwrap();

    let out = db
        .execute(r#"retrieve (e.dept) when e overlap "6/1/81""#)
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    assert_eq!(out.rows()[0][0], Value::Str("toys".into()));

    let out = db
        .execute(r#"retrieve (e.dept) when e overlap "6/1/83""#)
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Str("tools".into()));

    // The default valid clause reports each tuple's own period.
    let out = db.execute("retrieve (e.dept)").unwrap();
    assert_eq!(out.rows().len(), 2);
    let vf = out.column_index("valid_from").unwrap();
    let toys_row = out
        .rows()
        .iter()
        .find(|r| r[0] == Value::Str("toys".into()))
        .unwrap();
    assert_eq!(
        toys_row[vf],
        Value::Time(TimeVal::from_ymd(1980, 1, 1).unwrap())
    );
}

#[test]
fn historical_delete_closes_the_valid_period() {
    let mut db = Database::in_memory();
    db.execute("create historical interval h (id = i4)")
        .unwrap();
    db.execute(r#"append to h (id = 7) valid from "1980" to "forever""#)
        .unwrap();
    db.execute("range of v is h").unwrap();
    db.execute(r#"delete v valid at "1985" where v.id = 7"#)
        .unwrap_err();
    // interval relations use from..to syntax for the deletion instant
    db.execute(r#"delete v valid from "1985" to "forever" where v.id = 7"#)
        .unwrap();
    // The fact remains part of history…
    let out = db
        .execute(r#"retrieve (v.id) when v overlap "1983""#)
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    // …but does not hold after the deletion instant.
    let out = db
        .execute(r#"retrieve (v.id) when v overlap "1990""#)
        .unwrap();
    assert_eq!(out.rows().len(), 0);
}

#[test]
fn temporal_replace_inserts_two_versions() {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    db.execute("append to t (id = 1, x = 10)").unwrap();
    db.execute("range of v is t").unwrap();
    db.execute("replace v (x = 11) where v.id = 1").unwrap();
    // 1 original + 2 per replace.
    assert_eq!(db.relation_meta("t").unwrap().tuple_count, 3);
    db.execute("replace v (x = 12) where v.id = 1").unwrap();
    assert_eq!(db.relation_meta("t").unwrap().tuple_count, 5);

    // Version scan: all versions live in the current transaction state.
    let out = db.execute("retrieve (v.x)").unwrap();
    assert_eq!(ints(&out, "x"), vec![10, 11, 12]);

    // The static-style query sees only the current version.
    let out = db
        .execute(r#"retrieve (v.x) when v overlap "now""#)
        .unwrap();
    assert_eq!(ints(&out, "x"), vec![12]);
}

#[test]
fn temporal_supports_retroactive_change_and_rollback() {
    // The defining capability: correct the past, and still see the
    // erroneous record by rolling the database back.
    let mut db = Database::in_memory();
    db.execute("create temporal interval sal (name = c8, amount = i4)")
        .unwrap();
    db.execute(
        r#"append to sal (name = "di", amount = 100)
           valid from "1980" to "forever""#,
    )
    .unwrap();
    let t_before_fix = db.clock().now();
    db.execute("range of s is sal").unwrap();
    // Retroactive correction: the raise actually happened back in 1981.
    db.execute(
        r#"replace s (amount = 150) valid from "1981" to "forever"
           where s.name = "di""#,
    )
    .unwrap();

    // Today's view of 1982: the corrected salary.
    let out = db
        .execute(r#"retrieve (s.amount) when s overlap "1982""#)
        .unwrap();
    assert_eq!(ints(&out, "amount"), vec![150]);

    // The view as of before the correction: the database then believed
    // the 1982 salary was still 100.
    let fmt = t_before_fix.format(tdbms_kernel::Granularity::Second);
    let out = db
        .execute(&format!(
            r#"retrieve (s.amount) when s overlap "1982" as of "{fmt}""#
        ))
        .unwrap();
    assert_eq!(ints(&out, "amount"), vec![100]);
}

#[test]
fn figure2_query_runs() {
    let mut db = Database::in_memory();
    db.execute(
        "create temporal interval temporal_h \
         (id = i4, amount = i4, seq = i4, string = c96)",
    )
    .unwrap();
    db.execute(
        "create temporal interval temporal_i \
         (id = i4, amount = i4, seq = i4, string = c96)",
    )
    .unwrap();
    db.execute(r#"append to temporal_h (id = 500, amount = 1, seq = 0, string = "h")
                  valid from "1/5/80" to "forever""#)
        .unwrap();
    db.execute(r#"append to temporal_i (id = 9, amount = 73700, seq = 0, string = "i")
                  valid from "1/10/80" to "forever""#)
        .unwrap();
    db.execute("range of h is temporal_h").unwrap();
    db.execute("range of i is temporal_i").unwrap();
    let out = db
        .execute(
            r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
               valid from start of (h overlap i) to end of (h extend i)
               where h.id = 500 and i.amount = 73700
               when h overlap i
               as of "now""#,
        )
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    let row = &out.rows()[0];
    assert_eq!(row[0], Value::Int(500));
    assert_eq!(row[4], Value::Int(73700));
    // valid_from = start of overlap = later start (1/10/80);
    // valid_to = end of extend = forever.
    let vf = out.column_index("valid_from").unwrap();
    let vt = out.column_index("valid_to").unwrap();
    assert_eq!(
        row[vf],
        Value::Time(TimeVal::from_ymd(1980, 1, 10).unwrap())
    );
    assert_eq!(row[vt], Value::Time(TimeVal::FOREVER));
}

#[test]
fn join_via_tuple_substitution() {
    let mut db = Database::in_memory();
    db.execute("create static a (id = i4, x = i4)").unwrap();
    db.execute("create static b (id = i4, y = i4)").unwrap();
    for i in 1..=20 {
        db.execute(&format!("append to a (id = {i}, x = {})", i * 10))
            .unwrap();
        db.execute(&format!("append to b (id = {i}, y = {})", i % 5))
            .unwrap();
    }
    db.execute("modify a to hash on id where fillfactor = 100")
        .unwrap();
    db.execute("range of p is a").unwrap();
    db.execute("range of q is b").unwrap();
    let out = db
        .execute("retrieve (p.id, p.x, q.y) where p.id = q.id and q.y = 2")
        .unwrap();
    // ids with id % 5 == 2: 2, 7, 12, 17.
    assert_eq!(ints(&out, "id"), vec![2, 7, 12, 17]);
    assert_eq!(ints(&out, "x"), vec![20, 70, 120, 170]);
}

#[test]
fn retrieve_into_materializes_a_relation() {
    let mut db = Database::in_memory();
    db.execute("create historical interval src (id = i4)")
        .unwrap();
    for i in 1..=5 {
        db.execute(&format!(
            r#"append to src (id = {i}) valid from "198{i}" to "forever""#
        ))
        .unwrap();
    }
    db.execute("range of s is src").unwrap();
    db.execute("retrieve into snap (s.id) where s.id < 3")
        .unwrap();
    let meta = db.relation_meta("snap").unwrap();
    assert_eq!(meta.class, DatabaseClass::Historical);
    assert_eq!(meta.tuple_count, 2);
    db.execute("range of t is snap").unwrap();
    let out = db
        .execute(r#"retrieve (t.id) when t overlap "6/1/81""#)
        .unwrap();
    assert_eq!(ints(&out, "id"), vec![1]);
    // Duplicate into-name is rejected.
    assert!(db.execute("retrieve into snap (s.id)").is_err());
}

#[test]
fn computed_append_copies_between_relations() {
    let mut db = Database::in_memory();
    db.execute("create static src (id = i4, x = i4)").unwrap();
    db.execute("create static dst (id = i4, doubled = i4)")
        .unwrap();
    for i in 1..=4 {
        db.execute(&format!("append to src (id = {i}, x = {})", i * 3))
            .unwrap();
    }
    db.execute("range of s is src").unwrap();
    let out = db
        .execute(
            "append to dst (id = s.id, doubled = s.x * 2) where s.x > 3",
        )
        .unwrap();
    assert_eq!(out.affected, 3);
    db.execute("range of d is dst").unwrap();
    let out = db.execute("retrieve (d.doubled)").unwrap();
    assert_eq!(ints(&out, "doubled"), vec![12, 18, 24]);
}

#[test]
fn event_relations_use_valid_at() {
    let mut db = Database::in_memory();
    db.execute("create historical event ev (what = c16)")
        .unwrap();
    db.execute(r#"append to ev (what = "launch") valid at "1/5/80""#)
        .unwrap();
    db.execute(r#"append to ev (what = "landing") valid at "2/9/80""#)
        .unwrap();
    db.execute("range of e is ev").unwrap();
    let out = db
        .execute(r#"retrieve (e.what) when e precede "1/20/80""#)
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    assert_eq!(out.rows()[0][0], Value::Str("launch".into()));
    // Interval syntax is rejected on event relations.
    assert!(db
        .execute(r#"append to ev (what = "x") valid from "1980" to "1981""#)
        .is_err());
}

#[test]
fn clause_applicability_is_enforced() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4)").unwrap();
    db.execute("create historical interval h (id = i4)")
        .unwrap();
    db.execute("create rollback r (id = i4)").unwrap();
    db.execute("range of s is s").unwrap();
    db.execute("range of h is h").unwrap();
    db.execute("range of r is r").unwrap();
    // when on static: not applicable.
    assert!(db
        .execute(r#"retrieve (s.id) when s overlap "now""#)
        .is_err());
    // when on rollback: not applicable (the paper substitutes as-of).
    assert!(db
        .execute(r#"retrieve (r.id) when r overlap "now""#)
        .is_err());
    // as of on historical: not applicable.
    assert!(db.execute(r#"retrieve (h.id) as of "1981""#).is_err());
    // as of on rollback: fine.
    db.execute(r#"retrieve (r.id) as of "1981""#).unwrap();
    // valid clause on rollback: not applicable.
    assert!(db
        .execute(r#"retrieve (r.id) valid from "1980" to "forever""#)
        .is_err());
}

#[test]
fn copy_roundtrips_history() {
    let dir = std::env::temp_dir()
        .join(format!("tdbms-copy-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.dat");
    let path_str = path.to_str().unwrap();

    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, note = c24)")
        .unwrap();
    db.execute(r#"append to t (id = 1, note = "has, comma")"#)
        .unwrap();
    db.execute("range of v is t").unwrap();
    db.execute(r#"replace v (note = "second") where v.id = 1"#)
        .unwrap();
    db.execute(&format!(r#"copy t into "{path_str}""#)).unwrap();

    let mut db2 = Database::in_memory();
    // Align db2's transaction clock past everything db1 recorded, so the
    // reloaded history is wholly in db2's past.
    db2.clock().advance_to(db.clock().now());
    db2.execute("create temporal interval t (id = i4, note = c24)")
        .unwrap();
    db2.execute(&format!(r#"copy t from "{path_str}""#))
        .unwrap();
    assert_eq!(db2.relation_meta("t").unwrap().tuple_count, 3);
    db2.execute("range of v is t").unwrap();
    let out = db2
        .execute(r#"retrieve (v.note) when v overlap "now""#)
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    assert_eq!(out.rows()[0][0], Value::Str("second".into()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn modify_preserves_version_history() {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, x = i4)")
        .unwrap();
    for i in 1..=10 {
        db.execute(&format!("append to t (id = {i}, x = 0)"))
            .unwrap();
    }
    db.execute("range of v is t").unwrap();
    db.execute("replace v (x = v.x + 1)").unwrap();
    assert_eq!(db.relation_meta("t").unwrap().tuple_count, 30);
    db.execute("modify t to isam on id where fillfactor = 50")
        .unwrap();
    assert_eq!(db.relation_meta("t").unwrap().tuple_count, 30);
    let out = db
        .execute(r#"retrieve (v.x) where v.id = 5 when v overlap "now""#)
        .unwrap();
    assert_eq!(ints(&out, "x"), vec![1]);
    // The version scan still sees the full (transaction-current) history:
    // the closed history version (x = 0) and the current one (x = 1); the
    // superseded original is transaction-dead.
    let out = db.execute("retrieve (v.x) where v.id = 5").unwrap();
    assert_eq!(ints(&out, "x"), vec![0, 1]);
}

#[test]
fn unknown_names_produce_clear_errors() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4)").unwrap();
    assert!(db.execute("range of v is nope").is_err());
    db.execute("range of v is s").unwrap();
    assert!(db.execute("retrieve (v.nope)").is_err());
    assert!(db.execute("retrieve (w.id)").is_err());
    assert!(db.execute("destroy nope").is_err());
    assert!(db.execute("modify nope to heap").is_err());
    // Destroying a relation invalidates its range entries.
    db.execute("destroy s").unwrap();
    assert!(db.execute("retrieve (v.id)").is_err());
}

#[test]
fn update_counts_grow_as_the_paper_describes() {
    // Space growth: rollback +1 version per tuple per round, temporal +2.
    let mut rb = Database::in_memory();
    rb.execute("create rollback r (id = i4, seq = i4)").unwrap();
    let mut tp = Database::in_memory();
    tp.execute("create temporal interval t (id = i4, seq = i4)")
        .unwrap();
    for i in 1..=8 {
        rb.execute(&format!("append to r (id = {i}, seq = 0)"))
            .unwrap();
        tp.execute(&format!("append to t (id = {i}, seq = 0)"))
            .unwrap();
    }
    rb.execute("range of v is r").unwrap();
    tp.execute("range of v is t").unwrap();
    for round in 1..=5u64 {
        rb.execute("replace v (seq = v.seq + 1)").unwrap();
        tp.execute("replace v (seq = v.seq + 1)").unwrap();
        assert_eq!(
            rb.relation_meta("r").unwrap().tuple_count,
            8 * (1 + round)
        );
        assert_eq!(
            tp.relation_meta("t").unwrap().tuple_count,
            8 * (1 + 2 * round)
        );
    }
}

#[test]
fn aggregates_group_by_nonaggregate_targets() {
    let mut db = Database::in_memory();
    db.execute("create static emp (dept = c8, salary = i4)")
        .unwrap();
    for (dept, sal) in [
        ("toys", 100),
        ("toys", 200),
        ("tools", 300),
        ("toys", 60),
        ("tools", 100),
    ] {
        db.execute(&format!(
            r#"append to emp (dept = "{dept}", salary = {sal})"#
        ))
        .unwrap();
    }
    db.execute("range of e is emp").unwrap();
    let out = db
        .execute(
            "retrieve (e.dept, total = sum(e.salary), n = count(e.salary), \
             hi = max(e.salary), lo = min(e.salary), mean = avg(e.salary))",
        )
        .unwrap();
    assert_eq!(out.rows().len(), 2);
    // Grouped output is sorted by key.
    let tools = &out.rows()[0];
    assert_eq!(tools[0], Value::Str("tools".into()));
    assert_eq!(tools[1], Value::Int(400));
    assert_eq!(tools[2], Value::Int(2));
    assert_eq!(tools[3], Value::Int(300));
    assert_eq!(tools[4], Value::Int(100));
    assert_eq!(tools[5], Value::Float(200.0));
    let toys = &out.rows()[1];
    assert_eq!(toys[1], Value::Int(360));
    assert_eq!(toys[2], Value::Int(3));

    // Ungrouped aggregate: one row.
    let out = db.execute("retrieve (n = count(e.salary))").unwrap();
    assert_eq!(out.rows(), [[Value::Int(5)]]);
    // ...even over an empty qualification.
    let out = db
        .execute("retrieve (n = count(e.salary)) where e.salary > 999")
        .unwrap();
    assert_eq!(out.rows(), [[Value::Int(0)]]);
    // min of an empty set is an error the user can see.
    assert!(db
        .execute("retrieve (m = min(e.salary)) where e.salary > 999")
        .is_err());
}

#[test]
fn aggregates_respect_temporal_clauses() {
    // Headcount & payroll as of different valid times — the decision-
    // support queries from the paper's introduction.
    let mut db = Database::in_memory();
    db.execute("create historical interval emp (name = c8, salary = i4)")
        .unwrap();
    db.execute(
        r#"append to emp (name = "a", salary = 10)
           valid from "1980" to "1982""#,
    )
    .unwrap();
    db.execute(
        r#"append to emp (name = "b", salary = 20)
           valid from "1981" to "forever""#,
    )
    .unwrap();
    db.execute("range of e is emp").unwrap();
    let payroll = |db: &mut Database, at: &str| -> i64 {
        db.execute(&format!(
            r#"retrieve (total = sum(e.salary)) when e overlap "{at}""#
        ))
        .unwrap()
        .rows()[0][0]
            .as_int()
            .unwrap()
    };
    assert_eq!(payroll(&mut db, "6/1/80"), 10);
    assert_eq!(payroll(&mut db, "6/1/81"), 30);
    assert_eq!(payroll(&mut db, "6/1/83"), 20);
}

#[test]
fn aggregates_are_rejected_outside_targets() {
    let mut db = Database::in_memory();
    db.execute("create static s (x = i4)").unwrap();
    db.execute("range of v is s").unwrap();
    assert!(db.execute("retrieve (v.x) where sum(v.x) > 3").is_err());
    assert!(db.execute("retrieve (v.x) where frob(v.x) > 3").is_err());
    // Aggregates cannot be combined with an explicit valid clause.
    db.execute("create historical interval h (x = i4)").unwrap();
    db.execute("range of w is h").unwrap();
    assert!(db
        .execute(
            r#"retrieve (n = count(w.x)) valid from "1980" to "forever""#
        )
        .is_err());
}

#[test]
fn secondary_index_ddl_and_planner_use() {
    let mut db = Database::in_memory();
    db.execute("create temporal interval t (id = i4, amount = i4)")
        .unwrap();
    db.execute("range of v is t").unwrap();
    for i in 1..=200 {
        db.execute(&format!("append to t (id = {i}, amount = {})", i * 7))
            .unwrap();
    }
    db.execute("modify t to hash on id where fillfactor = 100")
        .unwrap();

    // Baseline: non-key equality scans the whole file.
    let scan_cost = db
        .execute(
            r#"retrieve (v.id) where v.amount = 700 when v overlap "now""#,
        )
        .unwrap()
        .stats
        .input_pages;

    db.execute("index on t is t_amount (amount)").unwrap();
    let meta = db.relation_meta("t").unwrap();
    assert_eq!(meta.index_names, vec!["t_amount"]);

    let out = db
        .execute(
            r#"retrieve (v.id) where v.amount = 700 when v overlap "now""#,
        )
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Int(100));
    assert!(
        out.stats.input_pages < scan_cost,
        "indexed {} < scan {scan_cost}",
        out.stats.input_pages
    );
    assert!(out.stats.input_pages <= 3);

    // The index follows updates (new versions are indexed on insert).
    db.execute("replace v (amount = 123456) where v.id = 100")
        .unwrap();
    let out = db
        .execute(
            r#"retrieve (v.id) where v.amount = 123456 when v overlap "now""#,
        )
        .unwrap();
    assert_eq!(out.rows().len(), 1);
    // The superseded value no longer matches a current-version query...
    let out = db
        .execute(
            r#"retrieve (v.id) where v.amount = 700 when v overlap "now""#,
        )
        .unwrap();
    assert_eq!(out.rows().len(), 0);
    // ...but is still reachable as history through the same index.
    let out = db.execute("retrieve (v.id) where v.amount = 700").unwrap();
    assert_eq!(out.rows().len(), 1);

    // The index survives reorganization (modify rebuilds it).
    db.execute("modify t to isam on id where fillfactor = 50")
        .unwrap();
    let out = db
        .execute(
            r#"retrieve (v.id) where v.amount = 123456 when v overlap "now""#,
        )
        .unwrap();
    assert_eq!(out.rows().len(), 1);

    // destroy drops the index by name.
    db.execute("destroy t_amount").unwrap();
    assert!(db.relation_meta("t").unwrap().index_names.is_empty());
    let out = db
        .execute(
            r#"retrieve (v.id) where v.amount = 123456 when v overlap "now""#,
        )
        .unwrap();
    assert_eq!(out.rows().len(), 1); // falls back to a scan, still correct
}

#[test]
fn index_ddl_errors() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4, x = i4)").unwrap();
    db.execute("modify s to hash on id where fillfactor = 100")
        .unwrap();
    assert!(db.execute("index on nope is i1 (x)").is_err());
    assert!(db.execute("index on s is i1 (nope)").is_err());
    // Redundant index on the primary key is rejected.
    assert!(db.execute("index on s is i1 (id)").is_err());
    db.execute("index on s is i1 (x)").unwrap();
    // Duplicate names (vs. relations or other indexes) are rejected.
    assert!(db.execute("index on s is i1 (x)").is_err());
    assert!(db.execute("index on s is s (x)").is_err());
    assert!(db.execute("create static i1 (y = i4)").is_err());
    // Only one index per attribute can be used; a second on the same attr
    // is allowed but pointless — verify creation succeeds with a new name.
    db.execute("index on s is i2 (x) to heap").unwrap();
}

#[test]
fn static_updates_keep_indexes_consistent() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4, x = i4)").unwrap();
    db.execute("range of v is s").unwrap();
    for i in 1..=50 {
        db.execute(&format!("append to s (id = {i}, x = {})", i % 5))
            .unwrap();
    }
    db.execute("index on s is s_x (x)").unwrap();
    // In-place replace of an indexed attribute rebuilds the index.
    db.execute("replace v (x = 99) where v.id = 7").unwrap();
    let out = db.execute("retrieve (v.id) where v.x = 99").unwrap();
    assert_eq!(out.rows(), [[Value::Int(7)]]);
    let out = db.execute("retrieve (v.id) where v.x = 2").unwrap();
    assert_eq!(out.rows().len(), 9); // 10 ids ≡ 2 (mod 5), minus id 7
                                     // Physical delete compacts pages; the index is rebuilt.
    db.execute("delete v where v.id = 12").unwrap();
    let out = db.execute("retrieve (v.id) where v.x = 2").unwrap();
    assert_eq!(out.rows().len(), 8);
}

#[test]
fn file_backed_database_survives_reopen() {
    let dir = std::env::temp_dir()
        .join(format!("tdbms-reopen-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let final_clock;
    let second_clock;
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute(
            "create temporal interval emp (name = c12, salary = i4)",
        )
        .unwrap();
        db.execute("range of e is emp").unwrap();
        db.execute(r#"append to emp (name = "ibsen", salary = 100)"#)
            .unwrap();
        db.execute(r#"append to emp (name = "padma", salary = 200)"#)
            .unwrap();
        db.execute(r#"replace e (salary = 150) where e.name = "ibsen""#)
            .unwrap();
        db.execute("modify emp to hash on name where fillfactor = 100")
            .unwrap();
        db.execute("index on emp is emp_sal (salary)").unwrap();
        final_clock = db.clock().now();
    } // drop: "process exits"

    {
        let mut db = Database::open(&dir).unwrap();
        db.clock().advance_to(final_clock);
        let meta = db.relation_meta("emp").unwrap();
        assert_eq!(meta.class, DatabaseClass::Temporal);
        assert_eq!(meta.tuple_count, 4); // 2 appends + 2 from the replace
        assert_eq!(meta.key.as_deref(), Some("name"));
        assert_eq!(meta.index_names, vec!["emp_sal"]);
        db.execute("range of e is emp").unwrap();
        // Current state, history, and the index all survived.
        let out = db
            .execute(r#"retrieve (e.salary) when e overlap "now""#)
            .unwrap();
        let mut sal: Vec<i64> =
            out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        sal.sort_unstable();
        assert_eq!(sal, vec![150, 200]);
        let out = db
            .execute(r#"retrieve (e.name) where e.salary = 150"#)
            .unwrap();
        assert_eq!(out.rows()[0][0], Value::Str("ibsen".into()));
        // And the database remains updatable.
        db.execute(r#"delete e where e.name = "padma""#).unwrap();
        second_clock = db.clock().now();
    }
    {
        let mut db = Database::open(&dir).unwrap();
        // Advance past everything the previous session recorded (the
        // clock is session state and does not persist).
        db.clock().advance_to(second_clock);
        db.execute("range of e is emp").unwrap();
        let out = db
            .execute(r#"retrieve (e.name) when e overlap "now""#)
            .unwrap();
        assert_eq!(out.rows().len(), 1);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn three_way_joins_substitute_recursively() {
    let mut db = Database::in_memory();
    db.execute("create static a (id = i4, b_id = i4)").unwrap();
    db.execute("create static b (id = i4, c_id = i4)").unwrap();
    db.execute("create static c (id = i4, label = i4)").unwrap();
    for i in 1..=12 {
        db.execute(&format!("append to a (id = {i}, b_id = {})", 13 - i))
            .unwrap();
        db.execute(&format!(
            "append to b (id = {i}, c_id = {})",
            (i % 4) + 1
        ))
        .unwrap();
        db.execute(&format!("append to c (id = {i}, label = {})", i * 100))
            .unwrap();
    }
    db.execute("modify b to hash on id where fillfactor = 100")
        .unwrap();
    db.execute("modify c to isam on id where fillfactor = 100")
        .unwrap();
    db.execute("range of x is a").unwrap();
    db.execute("range of y is b").unwrap();
    db.execute("range of z is c").unwrap();
    let out = db
        .execute(
            "retrieve (x.id, z.label) \
             where x.b_id = y.id and y.c_id = z.id and x.id < 4",
        )
        .unwrap();
    // x.id=1 → y=12 → c_id=1 → label 100; x.id=2 → y=11 → c_id=4 → 400;
    // x.id=3 → y=10 → c_id=3 → 300.
    let mut got: Vec<(i64, i64)> = out
        .rows()
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    got.sort_unstable();
    assert_eq!(got, vec![(1, 100), (2, 400), (3, 300)]);
}

#[test]
fn retrieve_into_with_aggregates_materializes_groups() {
    let mut db = Database::in_memory();
    db.execute("create static pay (dept = c8, amount = i4)")
        .unwrap();
    for (d, a) in [("x", 10), ("x", 20), ("y", 5)] {
        db.execute(&format!(
            r#"append to pay (dept = "{d}", amount = {a})"#
        ))
        .unwrap();
    }
    db.execute("range of p is pay").unwrap();
    db.execute("retrieve into totals (p.dept, total = sum(p.amount)) ")
        .unwrap();
    let meta = db.relation_meta("totals").unwrap();
    assert_eq!(meta.class, DatabaseClass::Static);
    assert_eq!(meta.tuple_count, 2);
    db.execute("range of t is totals").unwrap();
    let out = db
        .execute(r#"retrieve (t.total) where t.dept = "x""#)
        .unwrap();
    assert_eq!(out.rows(), [[Value::Int(30)]]);
}

#[test]
fn temporal_event_relations_roll_back() {
    let mut db = Database::in_memory();
    db.execute("create temporal event ping (host = i4)")
        .unwrap();
    db.execute("range of p is ping").unwrap();
    db.execute(r#"append to ping (host = 1) valid at "1/5/80""#)
        .unwrap();
    db.execute(r#"append to ping (host = 2) valid at "2/5/80""#)
        .unwrap();
    let before_delete = db.clock().now();
    // Deleting an event on a temporal relation hides it from the current
    // record while keeping it reachable by rollback.
    db.execute("delete p where p.host = 1").unwrap();
    let out = db.execute("retrieve (p.host)").unwrap();
    assert_eq!(ints(&out, "host"), vec![2]);
    let t = before_delete.format(tdbms_kernel::Granularity::Second);
    let out = db
        .execute(&format!(r#"retrieve (p.host) as of "{t}""#))
        .unwrap();
    assert_eq!(ints(&out, "host"), vec![1, 2]);
    // Event algebra: which events precede a date?
    let out = db
        .execute(r#"retrieve (p.host) when p precede "1/20/80""#)
        .unwrap();
    assert_eq!(out.rows().len(), 0); // host 1's event was deleted
    let out = db
        .execute(&format!(
            r#"retrieve (p.host) when p precede "1/20/80" as of "{t}""#
        ))
        .unwrap();
    assert_eq!(ints(&out, "host"), vec![1]);
}

#[test]
fn sort_by_orders_results() {
    let mut db = Database::in_memory();
    db.execute("create static s (id = i4, x = i4)").unwrap();
    for (id, x) in [(3, 30), (1, 30), (2, 10)] {
        db.execute(&format!("append to s (id = {id}, x = {x})"))
            .unwrap();
    }
    db.execute("range of v is s").unwrap();
    let out = db
        .execute("retrieve (v.id, v.x) sort by x desc, id asc")
        .unwrap();
    let got: Vec<i64> =
        out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![1, 3, 2]);
    // Sorting by the implicit valid columns works on versioned relations.
    db.execute("create historical interval h (id = i4)")
        .unwrap();
    db.execute("range of w is h").unwrap();
    db.execute(r#"append to h (id = 2) valid from "1982" to "forever""#)
        .unwrap();
    db.execute(r#"append to h (id = 1) valid from "1981" to "forever""#)
        .unwrap();
    let out = db.execute("retrieve (w.id) sort by valid_from").unwrap();
    let got: Vec<i64> =
        out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![1, 2]);
    // Unknown sort columns are rejected.
    assert!(db.execute("retrieve (v.id) sort by nope").is_err());
}
