//! The clustered history file behind online reorganization.
//!
//! The paper's two-level store (Section 6, Figure 10) keeps current
//! versions in the primary file and clusters each tuple's history
//! versions into pages owned by that tuple, so a version scan reads
//! `ceil(versions / capacity)` pages instead of the whole chain.
//! [`ClusteredHistory`] is that layout as a catalog-resident sidecar of a
//! stored relation: the background compactor migrates *cold* versions
//! (transaction-time stop already stamped — immutable forever under
//! rollback semantics) out of the primary file's overflow chains and into
//! this file, then rebuilds the primary `modify`-style with only the
//! surviving rows.
//!
//! Two invariants make the migration safe under concurrent snapshot
//! readers:
//!
//! * **Pages are single-key and append-only.** Every page holds versions
//!   of exactly one key, and [`ClusteredHistory::with_migrated`] — the
//!   reorganization entry point — never appends to a page that existed
//!   before the batch. A snapshot catalog cloned before the
//!   reorganization therefore references only pages whose contents can
//!   never change; the rows it could observe are exactly the rows its
//!   cluster directory knew about.
//! * **The directory is copy-on-write.** `with_migrated` returns a *new*
//!   `ClusteredHistory` (same file) with the extended directory; the
//!   committing writer swaps the relation's `Arc` while old snapshots
//!   keep theirs.
//!
//! `max_stop` records the newest transaction-stop time ever migrated.
//! The executor skips the history file entirely when a query's
//! visibility instant is at or after it — the common "as of now" query —
//! which is what keeps retrieval page I/O bounded as versions accumulate.

use crate::disk::FileId;
use crate::key::KeySpec;
use crate::page::{page_capacity, PageKind};
use crate::pager::Pager;
use std::collections::HashMap;
use tdbms_kernel::{Error, Result, TimeVal};

/// A clustered, append-only file of cold (superseded) versions, with an
/// in-memory directory from key bytes to the pages holding that key's
/// history.
#[derive(Debug, Clone)]
pub struct ClusteredHistory {
    file: FileId,
    row_width: usize,
    key: KeySpec,
    /// Key bytes → pages holding that key's versions, in migration
    /// order. Every page belongs to exactly one key.
    clusters: HashMap<Vec<u8>, Vec<u32>>,
    rows: u64,
    /// Newest transaction-stop time among migrated versions
    /// ([`TimeVal::BEGINNING`] while empty). Queries whose visibility
    /// instant is `>= max_stop` cannot see any row here.
    max_stop: TimeVal,
}

impl ClusteredHistory {
    /// Create an empty history file.
    pub fn create(
        pager: &Pager,
        row_width: usize,
        key: KeySpec,
    ) -> Result<ClusteredHistory> {
        Ok(ClusteredHistory {
            file: pager.create_file()?,
            row_width,
            key,
            clusters: HashMap::new(),
            rows: 0,
            max_stop: TimeVal::BEGINNING,
        })
    }

    /// Rebuild the in-memory directory of an existing history file by
    /// scanning it (the catalog-reload path). Pages are single-key, so
    /// each non-empty page is assigned to the key of its first row;
    /// `max_stop` is not derivable here (the stop time's location in the
    /// row is schema knowledge the caller has), so it is passed through
    /// from the persisted catalog line.
    pub fn reopen(
        pager: &Pager,
        file: FileId,
        row_width: usize,
        key: KeySpec,
        max_stop: TimeVal,
    ) -> Result<ClusteredHistory> {
        let mut clusters: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        let mut rows = 0u64;
        let n = pager.page_count(file)?;
        for page_no in 0..n {
            let (count, first) = pager.read(file, page_no, |p| {
                let count = p.count() as u64;
                let first = if count > 0 {
                    Some(key.extract(p.row(row_width, 0)?).to_vec())
                } else {
                    None
                };
                Ok::<_, Error>((count, first))
            })??;
            rows += count;
            if let Some(kb) = first {
                clusters.entry(kb).or_default().push(page_no);
            }
        }
        Ok(ClusteredHistory {
            file,
            row_width,
            key,
            clusters,
            rows,
            max_stop,
        })
    }

    /// The underlying storage file.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Fixed row width.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Key location within a row.
    pub fn key(&self) -> KeySpec {
        self.key
    }

    /// Migrated versions held.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Newest transaction-stop time among migrated versions.
    pub fn max_stop(&self) -> TimeVal {
        self.max_stop
    }

    /// Total pages of history.
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file)
    }

    /// Pages a keyed history access would touch.
    pub fn cluster_pages(&self, key_bytes: &[u8]) -> u32 {
        self.clusters
            .get(key_bytes)
            .map(|p| p.len() as u32)
            .unwrap_or(0)
    }

    /// Row capacity per page.
    pub fn rows_per_page(&self) -> usize {
        page_capacity(self.row_width)
    }

    /// Append one version to the key's newest page if it has room, else
    /// a fresh page (the two-level store's incremental push — *not* the
    /// reorganization path, which must never touch pre-existing pages).
    pub fn push(
        &mut self,
        pager: &Pager,
        row: &[u8],
        stop: TimeVal,
    ) -> Result<()> {
        if row.len() != self.row_width {
            return Err(Error::RowSize {
                expected: self.row_width,
                got: row.len(),
            });
        }
        let kb = self.key.extract(row).to_vec();
        let pages = self.clusters.entry(kb).or_default();
        let w = self.row_width;
        let mut placed = false;
        if let Some(&last) = pages.last() {
            placed = pager.write(self.file, last, |p| {
                if p.has_room(w) {
                    p.push_row(w, row).map(|_| true)
                } else {
                    Ok(false)
                }
            })??;
        }
        if !placed {
            let page_no = pager.append_page(self.file, PageKind::Data)?;
            pages.push(page_no);
            pager.write(self.file, page_no, |p| p.push_row(w, row))??;
        }
        self.rows += 1;
        if stop > self.max_stop {
            self.max_stop = stop;
        }
        Ok(())
    }

    /// The reorganization entry point: append `rows` (each with its
    /// transaction-stop time) on **fresh pages only**, returning a new
    /// `ClusteredHistory` with the extended directory. The receiver —
    /// and any snapshot catalog holding it — is untouched: its directory
    /// references only pages whose contents never change again.
    pub fn with_migrated(
        &self,
        pager: &Pager,
        rows: &[(Vec<u8>, TimeVal)],
    ) -> Result<ClusteredHistory> {
        let mut out = self.clone();
        // Per-key tail page *within this batch* — never a pre-existing
        // page.
        let mut batch_tail: HashMap<Vec<u8>, u32> = HashMap::new();
        let w = out.row_width;
        for (row, stop) in rows {
            if row.len() != w {
                return Err(Error::RowSize {
                    expected: w,
                    got: row.len(),
                });
            }
            let kb = out.key.extract(row).to_vec();
            let mut placed = false;
            if let Some(&tail) = batch_tail.get(&kb) {
                placed = pager.write(out.file, tail, |p| {
                    if p.has_room(w) {
                        p.push_row(w, row).map(|_| true)
                    } else {
                        Ok(false)
                    }
                })??;
            }
            if !placed {
                let page_no =
                    pager.append_page(out.file, PageKind::Data)?;
                out.clusters.entry(kb.clone()).or_default().push(page_no);
                batch_tail.insert(kb, page_no);
                pager
                    .write(out.file, page_no, |p| p.push_row(w, row))??;
            }
            out.rows += 1;
            if *stop > out.max_stop {
                out.max_stop = *stop;
            }
        }
        Ok(out)
    }

    /// Visit every history version of `key_bytes`, in migration order.
    /// When batched readahead is enabled the cluster's pages are
    /// prefetched into free buffer frames first.
    pub fn for_key(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let Some(pages) = self.clusters.get(key_bytes) else {
            return Ok(());
        };
        pager.readahead(self.file, pages)?;
        for &page_no in pages {
            let rows: Vec<Vec<u8>> =
                pager.read(self.file, page_no, |p| {
                    p.rows(self.row_width)
                        .map(|(_, r)| r.to_vec())
                        .collect()
                })?;
            for row in rows {
                if self.key.compare(self.key.extract(&row), key_bytes)
                    == std::cmp::Ordering::Equal
                {
                    f(&row)?;
                }
            }
        }
        Ok(())
    }

    /// Visit every history version.
    pub fn for_all(
        &self,
        pager: &Pager,
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        let n = pager.page_count(self.file)?;
        for page_no in 0..n {
            let rows: Vec<Vec<u8>> =
                pager.read(self.file, page_no, |p| {
                    p.rows(self.row_width)
                        .map(|(_, r)| r.to_vec())
                        .collect()
                })?;
            for row in rows {
                f(&row)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyKind;

    const W: usize = 124; // 8 rows per 1024-byte page

    fn row(id: i32, tag: u8) -> Vec<u8> {
        let mut r = vec![tag; W];
        r[..4].copy_from_slice(&id.to_le_bytes());
        r
    }

    fn key() -> KeySpec {
        KeySpec {
            offset: 0,
            len: 4,
            kind: KeyKind::I4,
        }
    }

    #[test]
    fn keyed_access_reads_only_the_cluster() {
        let pager = Pager::in_memory();
        let mut h = ClusteredHistory::create(&pager, W, key()).unwrap();
        for round in 0..28u8 {
            for id in 1..=4 {
                h.push(&pager, &row(id, round), TimeVal(round.into()))
                    .unwrap();
            }
        }
        assert_eq!(h.rows(), 112);
        assert_eq!(h.max_stop(), TimeVal(27));
        assert_eq!(h.cluster_pages(&1i32.to_le_bytes()), 4);
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut n = 0;
        h.for_key(&pager, &2i32.to_le_bytes(), |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 28);
        assert_eq!(pager.stats().of(h.file_id()).reads, 4);
    }

    #[test]
    fn migration_never_touches_pre_existing_pages() {
        let pager = Pager::in_memory();
        let mut h = ClusteredHistory::create(&pager, W, key()).unwrap();
        // Seed with a partially-filled page for key 1 (3 of 8 slots).
        for i in 0..3u8 {
            h.push(&pager, &row(1, i), TimeVal(1)).unwrap();
        }
        let before_pages = h.total_pages(&pager).unwrap();
        assert_eq!(before_pages, 1);
        let snapshot = h.clone();

        let batch: Vec<(Vec<u8>, TimeVal)> =
            (0..4u8).map(|i| (row(1, 100 + i), TimeVal(5))).collect();
        let h2 = h.with_migrated(&pager, &batch).unwrap();
        // The batch went to a fresh page even though page 0 had room.
        assert_eq!(h2.total_pages(&pager).unwrap(), 2);
        assert_eq!(h2.rows(), 7);
        assert_eq!(h2.max_stop(), TimeVal(5));
        assert_eq!(h2.cluster_pages(&1i32.to_le_bytes()), 2);
        // The snapshot still sees exactly its 3 rows.
        let mut n = 0;
        snapshot
            .for_key(&pager, &1i32.to_le_bytes(), |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 3);
        let mut m = 0;
        h2.for_key(&pager, &1i32.to_le_bytes(), |_| {
            m += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(m, 7);
    }

    #[test]
    fn batch_fills_its_own_fresh_pages() {
        let pager = Pager::in_memory();
        let h = ClusteredHistory::create(&pager, W, key()).unwrap();
        // 20 versions of one key: ceil(20/8) = 3 fresh pages, not 20.
        let batch: Vec<(Vec<u8>, TimeVal)> =
            (0..20u8).map(|i| (row(7, i), TimeVal(2))).collect();
        let h2 = h.with_migrated(&pager, &batch).unwrap();
        assert_eq!(h2.total_pages(&pager).unwrap(), 3);
        assert_eq!(h2.cluster_pages(&7i32.to_le_bytes()), 3);
    }

    #[test]
    fn reopen_rebuilds_the_directory() {
        let pager = Pager::in_memory();
        let mut h = ClusteredHistory::create(&pager, W, key()).unwrap();
        for round in 0..10u8 {
            for id in 1..=3 {
                h.push(&pager, &row(id, round), TimeVal(9)).unwrap();
            }
        }
        pager.flush_all().unwrap();
        let re = ClusteredHistory::reopen(
            &pager,
            h.file_id(),
            W,
            key(),
            h.max_stop(),
        )
        .unwrap();
        assert_eq!(re.rows(), h.rows());
        assert_eq!(re.max_stop(), TimeVal(9));
        for id in 1..=3i32 {
            assert_eq!(
                re.cluster_pages(&id.to_le_bytes()),
                h.cluster_pages(&id.to_le_bytes())
            );
            let mut a = Vec::new();
            let mut b = Vec::new();
            re.for_key(&pager, &id.to_le_bytes(), |r| {
                a.push(r.to_vec());
                Ok(())
            })
            .unwrap();
            h.for_key(&pager, &id.to_le_bytes(), |r| {
                b.push(r.to_vec());
                Ok(())
            })
            .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn readahead_prefetches_cluster_pages_into_free_frames() {
        let pager = Pager::in_memory();
        let mut h = ClusteredHistory::create(&pager, W, key()).unwrap();
        for round in 0..28u8 {
            h.push(&pager, &row(1, round), TimeVal(3)).unwrap();
        }
        pager.set_buffer_frames(h.file_id(), 8).unwrap();
        pager.set_readahead(true);
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let before = pager.stats().readahead_pages();
        let mut n = 0;
        h.for_key(&pager, &1i32.to_le_bytes(), |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 28);
        let io = pager.stats().of(h.file_id());
        // 4 pages fetched once each (by the prefetch), then every
        // per-page access is a hit.
        assert_eq!(io.reads, 4);
        assert_eq!(pager.stats().readahead_pages(), before + 4);
        assert!(io.is_consistent());
        // With readahead off and one frame, same read count (the
        // sequential walk misses each page once either way).
        pager.set_readahead(false);
        pager.set_buffer_frames(h.file_id(), 1).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        h.for_key(&pager, &1i32.to_le_bytes(), |_| Ok(())).unwrap();
        assert_eq!(pager.stats().of(h.file_id()).reads, 4);
    }
}
