//! The buffer manager: per-file frame pools, eviction policies, and page
//! access accounting.
//!
//! The paper's methodology is specific about buffering: "we counted only
//! disk accesses to user relations, and allocated only 1 buffer for each
//! user relation so that a page resides in main memory only until another
//! page from the same relation is brought in." [`Pager`] reproduces that
//! as its *default* configuration — one LRU frame per file — and
//! generalizes it into a policy-driven buffer manager:
//!
//! * [`BufferConfig`] selects a global frames-per-file default, an
//!   [`EvictionPolicy`] (LRU or Clock), and optional per-file caps; the
//!   same knobs are reachable per file at runtime through
//!   [`Pager::set_buffer_frames`].
//! * Every pool — eagerly created by [`Pager::create_file`] or lazily on
//!   first access to a file restored from a persisted catalog — is built
//!   by one helper that honors the configured caps, so a relation buffers
//!   identically however its file came into view.
//! * Frames are **pinned** for the duration of a `read`/`write` callback:
//!   the eviction scan skips pinned frames, so a multi-page operation
//!   (ISAM directory descent, overflow-chain walk, a heap scan feeding a
//!   temporary) can never have the page it is looking at stolen from
//!   under it, at any cap.
//!
//! A buffer hit costs nothing, a miss fetches from the [`DiskManager`]
//! and bumps the file's read counter, and dirty frames are written back
//! on eviction or flush (bumping the write counter). [`IoStats`]
//! additionally classifies every buffered access as hit or miss and
//! counts capacity evictions, maintaining `hits + misses == accesses`.
//!
//! The pager is `Send + Sync`: every method takes `&self`, with the frame
//! tables, overlay, and disk handle behind one pager-wide `RwLock`. Page
//! accesses take the write lock and hold it across the user callback —
//! the frame stays pinned and the accounting stays exactly the
//! single-threaded sequence, so a one-thread run is bit-identical to the
//! old `&mut` pager — while pure introspection (page counts, config
//! getters, staged-page listings) shares the read lock.

use crate::bloom::Bloom;
use crate::checksum::ChecksumSet;
use crate::disk::{DiskManager, FileId, MemDisk};
use crate::iostats::IoStats;
use crate::page::{Page, PageKind};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{
    Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use tdbms_kernel::{Error, Result};

/// Default bounded retry budget for transient disk-read failures. Safe to
/// leave on: a healthy disk never errors, so the retry path costs nothing
/// until the first failure.
pub const DEFAULT_READ_RETRIES: u32 = 2;

/// Which frame a full pool gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used frame (the paper's implied policy;
    /// with one frame per file every replacement policy degenerates to
    /// this).
    #[default]
    Lru,
    /// Second-chance clock: a sweeping hand clears reference bits and
    /// evicts the first frame found unreferenced.
    Clock,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Lru => write!(f, "lru"),
            EvictionPolicy::Clock => write!(f, "clock"),
        }
    }
}

/// Buffer-manager configuration, threaded from the database layer down to
/// the [`Pager`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferConfig {
    /// Frames allotted to each file unless overridden (minimum 1).
    pub default_frames: usize,
    /// Replacement policy for every pool.
    pub policy: EvictionPolicy,
    /// Per-file frame caps, applied whenever that file's pool is created
    /// (before or after the file itself exists).
    pub per_file: Vec<(FileId, usize)>,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig::paper()
    }
}

impl BufferConfig {
    /// The paper's configuration: one LRU frame per file.
    pub fn paper() -> Self {
        BufferConfig {
            default_frames: 1,
            policy: EvictionPolicy::Lru,
            per_file: Vec::new(),
        }
    }

    /// A uniform configuration: `frames` per file under `policy`.
    pub fn uniform(frames: usize, policy: EvictionPolicy) -> Self {
        BufferConfig {
            default_frames: frames,
            policy,
            per_file: Vec::new(),
        }
    }
}

/// A file's buffer pool vanished while the file is still referenced —
/// in-memory bookkeeping no longer matches the catalog. Reported as
/// media corruption (repairable by `tdbms-check --repair`) rather than
/// panicking the process.
fn missing_pool(file: FileId) -> Error {
    Error::Corruption {
        file: Some(file.0),
        page: None,
        detail: "buffer pool missing for a live file \
                 (catalog references a dropped file?)"
            .into(),
    }
}

/// A just-installed frame is gone from its pool — same corrupt-state
/// family as [`missing_pool`], located to the page.
fn missing_frame(file: FileId, page_no: u32) -> Error {
    Error::Corruption {
        file: Some(file.0),
        page: Some(page_no),
        detail: "buffer frame missing after fault-in".into(),
    }
}

struct Frame {
    page_no: u32,
    page: Page,
    dirty: bool,
    /// Held by an in-flight `read`/`write` callback; never a victim.
    pinned: bool,
    /// Second-chance bit (Clock policy only).
    referenced: bool,
}

struct FilePool {
    cap: usize,
    /// Frame list. Under LRU it is MRU-first; under Clock it is a slot
    /// array swept by `hand`. Tiny either way (cap is 1 in the paper's
    /// benchmark), so linear search beats any fancier structure.
    frames: Vec<Frame>,
    /// Clock hand: index of the next frame the sweep inspects.
    hand: usize,
}

impl FilePool {
    fn new(cap: usize) -> Self {
        FilePool {
            cap: cap.max(1),
            frames: Vec::new(),
            hand: 0,
        }
    }

    /// Pick the frame the policy sacrifices, skipping pinned frames.
    /// `None` only when every frame is pinned.
    fn evict_index(&mut self, policy: EvictionPolicy) -> Option<usize> {
        match policy {
            EvictionPolicy::Lru => {
                self.frames.iter().rposition(|f| !f.pinned)
            }
            EvictionPolicy::Clock => {
                let n = self.frames.len();
                if n == 0 || self.frames.iter().all(|f| f.pinned) {
                    return None;
                }
                // At most two sweeps: the first clears reference bits,
                // the second must find an unreferenced, unpinned frame.
                for _ in 0..2 * n {
                    let i = self.hand % n;
                    self.hand = (i + 1) % n;
                    let frame = &mut self.frames[i];
                    if frame.pinned {
                        continue;
                    }
                    if frame.referenced {
                        frame.referenced = false;
                        continue;
                    }
                    return Some(i);
                }
                unreachable!("an unpinned frame loses its reference bit")
            }
        }
    }
}

/// Statement-scoped undo (staging mode only): first-touch snapshots of
/// everything a statement may disturb, captured lazily as the statement
/// runs so [`Pager::rollback_statement`] can put the pager back exactly
/// as it was at [`Pager::begin_statement_undo`]. Uncommitted page
/// *content* never reaches disk under staging, so the in-memory restore
/// (overlay, staged set, resize/drop bookkeeping) is infallible; only
/// file-shape changes (appended placeholder tails, in-statement
/// truncates, created files) need physical repair, which may itself hit
/// the full disk and is then deferred (see [`Deferred`]).
#[derive(Default)]
struct UndoLog {
    /// Per page key: `(prior overlay image, was staged)` at first touch.
    touched: BTreeMap<(FileId, u32), (Option<Page>, bool)>,
    /// Files first entering `resized` during the statement.
    resized_added: BTreeSet<FileId>,
    /// `pending_drops` length at statement start.
    drops_len: usize,
    /// Disk length per file at its first in-statement length change.
    lengths: BTreeMap<FileId, u32>,
    /// Pre-truncate disk images (an in-statement physical truncate
    /// destroys checkpointed pages; rollback re-appends these).
    truncated: BTreeMap<FileId, Vec<Page>>,
    /// Files created during the statement (physically dropped on
    /// rollback).
    created: Vec<FileId>,
    /// Per-file cap overrides removed by an in-statement drop.
    overrides: BTreeMap<FileId, Option<usize>>,
}

/// A physical rollback step that failed (the disk is still exhausted)
/// and waits for [`Pager::retry_deferred`]. In-memory state is already
/// rolled back; until the fix lands, the named file's on-disk shape
/// disagrees with the committed state — which is why the engine stays
/// read-only-degraded until the deferred list drains.
#[derive(Debug, Clone)]
enum Deferred {
    /// Trim the file back to `len` pages (placeholder tail from
    /// rolled-back appends).
    Shrink(FileId, u32),
    /// Re-append saved images after an in-statement physical truncate.
    Restore(FileId, Vec<Page>),
    /// Physically drop a file the rolled-back statement created.
    Drop(FileId),
}

/// Everything the pager-wide lock guards: the disk handle, the frame
/// tables, the buffering config, and the WAL staging overlay. The stats
/// ledger lives *outside* (it is internally atomic), so counter reads
/// never contend with page traffic.
struct PagerState {
    disk: Box<dyn DiskManager>,
    pools: std::collections::HashMap<FileId, FilePool>,
    default_cap: usize,
    policy: EvictionPolicy,
    /// Per-file caps that outlive the pools they configure (a pool can be
    /// created lazily long after the cap was requested).
    overrides: std::collections::HashMap<FileId, usize>,
    /// WAL staging mode: write-backs land in `overlay`, not on disk.
    staging: bool,
    /// Staged after-images shadowing the disk (staging mode only).
    overlay: BTreeMap<(FileId, u32), Page>,
    /// Pages dirtied since the last commit (keys into `overlay`).
    staged: BTreeSet<(FileId, u32)>,
    /// Files whose length changed since the last commit.
    resized: BTreeSet<FileId>,
    /// Files dropped while staging; physically dropped after commit.
    pending_drops: Vec<FileId>,
    /// Sidecar page checksums, verified on fault-in and refreshed on every
    /// real disk write. `None` (the paper default) skips both sides.
    checksums: Option<ChecksumSet>,
    /// Transient-read retry budget: a failing disk read is reissued up to
    /// this many times before the error surfaces.
    read_retries: u32,
    /// Statement undo, present between `begin_statement_undo` and
    /// `discard_statement_undo`/`rollback_statement`.
    undo: Option<UndoLog>,
    /// Physical rollback steps awaiting a recovered disk.
    deferred: Vec<Deferred>,
}

/// Buffer-managing page store over a [`DiskManager`], shareable across
/// threads.
pub struct Pager {
    state: RwLock<PagerState>,
    stats: IoStats,
    /// Per-file Bloom filters over "keys with versions on overflow
    /// pages" (see [`Bloom`]). Kept beside the state lock, not inside
    /// it: a filter probe must not contend with page traffic, and the
    /// access methods consult it *before* deciding whether to fault
    /// overflow pages in. Files without an entry (fresh catalogs
    /// reloaded from disk, heap files) simply have no guard and every
    /// chain is walked — the pre-filter behaviour.
    blooms: RwLock<std::collections::HashMap<FileId, Arc<Bloom>>>,
    /// Bloom-guard master switch. Off by default: a skipped chain walk
    /// changes a query's input-page count, and the paper benchmarks'
    /// golden figures assume every probe walks its chain. The scale
    /// workload and anything else living past the paper turns it on
    /// *before* building (filters are installed at rebuild time).
    bloom_on: AtomicBool,
    /// Batched-readahead master switch. Off by default so the paper
    /// benchmarks (and their pinned per-file I/O counts) see the
    /// one-page-at-a-time pager; the scale driver and the
    /// reorganization daemon turn it on.
    readahead_on: AtomicBool,
}

impl PagerState {
    /// Refresh a recorded checksum after the bytes were written outside
    /// the pager's own write path (no-op when verification is off).
    fn note_written(&mut self, file: FileId, page_no: u32, page: &Page) {
        if let Some(sums) = &mut self.checksums {
            sums.record(file, page_no, page);
        }
    }

    /// Fetch a page from disk with bounded retry (transient I/O and
    /// checksum failures are reissued; [`Error::NoSuchPage`] is not — a
    /// missing page will not appear on a second look) and verify it
    /// against the sidecar, adopting the sum when none is recorded.
    fn fetch_from_disk(
        &mut self,
        stats: &IoStats,
        file: FileId,
        page_no: u32,
    ) -> Result<Page> {
        let mut attempt: u32 = 0;
        loop {
            let fetched =
                self.disk.read_page(file, page_no).and_then(|p| {
                    if let Some(sums) = &self.checksums {
                        sums.verify(file, page_no, &p)?;
                    }
                    Ok(p)
                });
            match fetched {
                Ok(page) => {
                    if let Some(sums) = &mut self.checksums {
                        if sums.get(file, page_no).is_none() {
                            sums.record(file, page_no, &page);
                        }
                    }
                    return Ok(page);
                }
                Err(e @ Error::NoSuchPage(_)) => return Err(e),
                Err(e) => {
                    if attempt >= self.read_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    stats.record_retry(file);
                    // Deterministic backoff: a counted spin, doubling per
                    // attempt. No wall-clock, so fault-injection tests
                    // replay identically.
                    let mut spins = 1u64 << attempt.min(10);
                    while spins > 0 {
                        spins -= 1;
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// The one place pools are created: every path — eager
    /// [`Pager::create_file`], lazy fault-in or append on a file restored
    /// from a persisted catalog, a cap request for a not-yet-buffered
    /// file — resolves the cap the same way (per-file override, else the
    /// default).
    fn pool_mut(&mut self, file: FileId) -> &mut FilePool {
        let cap = self
            .overrides
            .get(&file)
            .copied()
            .unwrap_or(self.default_cap);
        self.pools.entry(file).or_insert_with(|| FilePool::new(cap))
    }

    /// The buffer pool for `file`, or [`Error::Corruption`] when it is
    /// missing. The pager creates pools on demand, so a vanished pool
    /// means the in-memory state no longer matches the catalog (e.g. a
    /// corrupt catalog still references a dropped file); that is a
    /// repairable condition for `tdbms-check --repair`, not a reason to
    /// abort the process.
    fn pool_of(&mut self, file: FileId) -> Result<&mut FilePool> {
        self.pools.get_mut(&file).ok_or_else(|| missing_pool(file))
    }

    /// Record a page key's prior overlay/staged state at first touch
    /// (no-op without an active statement undo).
    fn undo_touch(&mut self, key: (FileId, u32)) {
        if self.undo.is_none() {
            return;
        }
        let img = self.overlay.get(&key).cloned();
        let was = self.staged.contains(&key);
        let u = self.undo.as_mut().expect("checked above");
        u.touched.entry(key).or_insert((img, was));
    }

    /// Record a file's disk length and `resized` membership before its
    /// first in-statement length change.
    fn undo_resize(&mut self, file: FileId) -> Result<()> {
        if self.undo.is_none() {
            return Ok(());
        }
        let created = self
            .undo
            .as_ref()
            .expect("checked above")
            .created
            .contains(&file);
        let known = self
            .undo
            .as_ref()
            .expect("checked above")
            .lengths
            .contains_key(&file);
        let len = if known || created {
            None
        } else {
            Some(self.disk.page_count(file)?)
        };
        let was_resized = self.resized.contains(&file);
        let u = self.undo.as_mut().expect("checked above");
        if !was_resized {
            u.resized_added.insert(file);
        }
        if let Some(l) = len {
            u.lengths.insert(file, l);
        }
        Ok(())
    }

    /// Apply one deferred physical rollback step. Idempotent: every
    /// branch re-checks the disk before acting, so a step that half
    /// completed (or already completed) can be reissued safely.
    fn apply_fix(&mut self, fix: &Deferred) -> Result<()> {
        match fix {
            Deferred::Drop(f) => {
                if self.disk.page_count(*f).is_ok() {
                    self.disk.drop_file(*f)?;
                }
                if let Some(sums) = &mut self.checksums {
                    sums.drop_file(*f);
                }
                Ok(())
            }
            Deferred::Shrink(f, len) => {
                let Ok(cur) = self.disk.page_count(*f) else {
                    return Ok(());
                };
                if cur <= *len {
                    return Ok(());
                }
                let keep: Vec<Page> = (0..*len)
                    .map(|p| self.disk.read_page(*f, p))
                    .collect::<Result<_>>()?;
                self.restore_file(*f, &keep)
            }
            Deferred::Restore(f, pages) => self.restore_file(*f, pages),
        }
    }

    /// Truncate `file` and re-append `pages` (the trait only truncates
    /// to zero), refreshing the checksum sidecar as it goes.
    fn restore_file(&mut self, file: FileId, pages: &[Page]) -> Result<()> {
        if self.disk.page_count(file).is_err() {
            return Ok(());
        }
        self.disk.truncate(file)?;
        if let Some(sums) = &mut self.checksums {
            sums.truncate(file, 0);
        }
        for (i, p) in pages.iter().enumerate() {
            self.disk.append_page(file, p)?;
            self.note_written(file, i as u32, p);
        }
        Ok(())
    }

    fn write_back(
        &mut self,
        stats: &IoStats,
        file: FileId,
        frame: Frame,
    ) -> Result<()> {
        if frame.dirty {
            if self.staging {
                self.undo_touch((file, frame.page_no));
                self.overlay.insert((file, frame.page_no), frame.page);
                self.staged.insert((file, frame.page_no));
            } else {
                self.disk.write_page(file, frame.page_no, &frame.page)?;
                self.note_written(file, frame.page_no, &frame.page);
            }
            stats.record_write(file);
        }
        Ok(())
    }

    /// Make room in `file`'s pool (evicting by policy, with accounting)
    /// and install `frame`, returning its index.
    fn install_frame(
        &mut self,
        stats: &IoStats,
        file: FileId,
        frame: Frame,
    ) -> Result<usize> {
        let policy = self.policy;
        let victim = {
            let pool = self.pool_mut(file);
            if pool.frames.len() >= pool.cap {
                let idx = pool.evict_index(policy).ok_or_else(|| {
                    Error::Internal(
                        "buffer pool exhausted: every frame is pinned"
                            .into(),
                    )
                })?;
                Some((idx, pool.frames.remove(idx)))
            } else {
                None
            }
        };
        let vacated_idx = match victim {
            Some((idx, old)) => {
                stats.record_eviction(file);
                self.write_back(stats, file, old)?;
                Some(idx)
            }
            None => None,
        };
        let policy = self.policy;
        let pool = self.pool_of(file)?;
        let at = match policy {
            // MRU position.
            EvictionPolicy::Lru => 0,
            // The vacated slot (keeps other frames' sweep order), else the
            // next free slot.
            EvictionPolicy::Clock => vacated_idx
                .unwrap_or(pool.frames.len())
                .min(pool.frames.len()),
        };
        pool.frames.insert(at, frame);
        Ok(at)
    }

    /// Position the frame for (`file`, `page_no`) in the pool, fetching
    /// from disk on a miss, and return its index. Every *successful*
    /// call is one buffered page access — a hit or a miss — recorded
    /// together with its hit/read half so the ledger identity
    /// `hits + reads == accesses` survives a fetch that errors out
    /// (stale snapshot reads against a concurrently reorganized file do
    /// that in normal operation).
    fn fault_in(
        &mut self,
        stats: &IoStats,
        file: FileId,
        page_no: u32,
    ) -> Result<usize> {
        let policy = self.policy;
        let pool = self.pool_mut(file);
        if let Some(pos) =
            pool.frames.iter().position(|f| f.page_no == page_no)
        {
            let at = match policy {
                EvictionPolicy::Lru => {
                    // Hit: move to MRU position.
                    let frame = pool.frames.remove(pos);
                    pool.frames.insert(0, frame);
                    0
                }
                EvictionPolicy::Clock => {
                    pool.frames[pos].referenced = true;
                    pos
                }
            };
            stats.record_access(file);
            stats.record_hit(file);
            return Ok(at);
        }
        // Miss: fetch (the staging overlay shadows the disk; disk reads
        // are checksum-verified with bounded retry), then install
        // (evicting as needed).
        let page = match self.overlay.get(&(file, page_no)) {
            Some(p) => p.clone(),
            None => self.fetch_from_disk(stats, file, page_no)?,
        };
        let at = self.install_frame(
            stats,
            file,
            Frame {
                page_no,
                page,
                dirty: false,
                pinned: false,
                referenced: false,
            },
        )?;
        stats.record_access(file);
        stats.record_read(file);
        Ok(at)
    }
}

impl Pager {
    /// A pager over the given disk with the paper's 1-frame-per-file LRU
    /// buffering.
    pub fn new(disk: Box<dyn DiskManager>) -> Self {
        Pager::with_config(disk, BufferConfig::paper())
    }

    /// A pager with an explicit buffer configuration.
    pub fn with_config(
        disk: Box<dyn DiskManager>,
        config: BufferConfig,
    ) -> Self {
        Pager {
            state: RwLock::new(PagerState {
                disk,
                pools: std::collections::HashMap::new(),
                default_cap: config.default_frames.max(1),
                policy: config.policy,
                overrides: config
                    .per_file
                    .into_iter()
                    .map(|(f, cap)| (f, cap.max(1)))
                    .collect(),
                staging: false,
                overlay: BTreeMap::new(),
                staged: BTreeSet::new(),
                resized: BTreeSet::new(),
                pending_drops: Vec::new(),
                checksums: None,
                read_retries: DEFAULT_READ_RETRIES,
                undo: None,
                deferred: Vec::new(),
            }),
            stats: IoStats::new(),
            blooms: RwLock::new(std::collections::HashMap::new()),
            bloom_on: AtomicBool::new(false),
            readahead_on: AtomicBool::new(false),
        }
    }

    /// In-memory pager (the benchmark configuration).
    pub fn in_memory() -> Self {
        Pager::new(Box::new(MemDisk::new()))
    }

    /// In-memory pager with an explicit buffer configuration.
    pub fn in_memory_with_config(config: BufferConfig) -> Self {
        Pager::with_config(Box::new(MemDisk::new()), config)
    }

    /// The exclusive guard over the pager state, tolerant of panics in
    /// earlier page callbacks (the state is a consistent snapshot at
    /// every await-free suspension point; poisoning adds nothing here).
    fn st(&self) -> RwLockWriteGuard<'_, PagerState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared guard, for pure introspection.
    fn st_read(&self) -> RwLockReadGuard<'_, PagerState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Change the default buffer frames allotted to files without a
    /// per-file override. Applies to pools created from now on; existing
    /// pools keep their caps (use [`Pager::set_buffer_frames`] to resize
    /// one).
    pub fn set_default_buffer_frames(&self, cap: usize) {
        self.st().default_cap = cap.max(1);
    }

    /// The default frames-per-file cap.
    pub fn default_buffer_frames(&self) -> usize {
        self.st_read().default_cap
    }

    /// Change the eviction policy for every pool. Reference bits and the
    /// clock hand carry over untouched; with the paper's single-frame
    /// pools the policies are indistinguishable.
    pub fn set_eviction_policy(&self, policy: EvictionPolicy) {
        self.st().policy = policy;
    }

    /// The active eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.st_read().policy
    }

    /// Change the buffer frames allotted to one file, evicting (with
    /// write-back accounting) as needed. The cap survives pool
    /// destruction and re-creation.
    pub fn set_buffer_frames(
        &self,
        file: FileId,
        cap: usize,
    ) -> Result<()> {
        let cap = cap.max(1);
        let st = &mut *self.st();
        st.overrides.insert(file, cap);
        let policy = st.policy;
        st.pool_mut(file).cap = cap;
        // Shed overflowing frames through the normal eviction path.
        loop {
            let pool = st.pool_of(file)?;
            if pool.frames.len() <= cap {
                break;
            }
            let idx = pool.evict_index(policy).ok_or_else(|| {
                Error::Internal(
                    "cannot shrink pool: all frames pinned".into(),
                )
            })?;
            let frame = pool.frames.remove(idx);
            self.stats.record_eviction(file);
            st.write_back(&self.stats, file, frame)?;
        }
        Ok(())
    }

    /// The access counters. Recording and reading are both `&self`; the
    /// ledger is internally atomic.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Open a named accounting phase (see [`IoStats::begin_phase`]).
    pub fn begin_phase(&self, name: &str) {
        self.stats.begin_phase(name);
    }

    /// Close the open accounting phase, if any.
    pub fn end_phase(&self) {
        self.stats.end_phase();
    }

    /// Zero the access counters (done by the harness before each query).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    // --- Overflow-chain Bloom guards ------------------------------------

    fn bloom_map(
        &self,
    ) -> RwLockWriteGuard<'_, std::collections::HashMap<FileId, Arc<Bloom>>>
    {
        self.blooms.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enable/disable the overflow-chain Bloom guards (off by default —
    /// a skipped chain walk changes input-page counts, and paper mode
    /// pins those). Installation happens at file rebuild time, so
    /// enable *before* building; turning the switch off leaves
    /// installed filters dormant ([`Pager::bloom_check`] answers
    /// `None`) and turning it back on revives them.
    pub fn set_bloom_guards(&self, on: bool) {
        self.bloom_on.store(on, Ordering::Relaxed);
    }

    /// Are the overflow-chain Bloom guards enabled?
    pub fn bloom_guards_enabled(&self) -> bool {
        self.bloom_on.load(Ordering::Relaxed)
    }

    /// Install (or replace) the overflow-chain guard for `file`. The
    /// access methods install one at build time seeded with the keys
    /// that spilled during the bulk load. A no-op while the guards are
    /// disabled (paper mode pays neither the memory nor the hashing).
    pub fn bloom_install(&self, file: FileId, bloom: Bloom) {
        if !self.bloom_guards_enabled() {
            return;
        }
        self.bloom_map().insert(file, Arc::new(bloom));
    }

    /// Remove `file`'s guard (dropped/truncated files; also the reload
    /// path, where a fresh process has no filter until the next
    /// rebuild). Without a guard every chain is walked.
    pub fn bloom_drop(&self, file: FileId) {
        self.bloom_map().remove(&file);
    }

    /// Does `file` have an overflow-chain guard installed?
    pub fn bloom_active(&self, file: FileId) -> bool {
        self.blooms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&file)
    }

    /// Record that a version of `key_bytes` was placed on an overflow
    /// page of `file`. No-op when the file has no guard.
    pub fn bloom_note_overflow(&self, file: FileId, key_bytes: &[u8]) {
        let guard = self
            .blooms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&file)
            .cloned();
        if let Some(b) = guard {
            b.add(key_bytes);
        }
    }

    /// Consult `file`'s guard before walking its overflow chain.
    /// `Some(false)` is a definite miss — the chain holds no version of
    /// the key and the walk can be skipped (counted as a bloom skip);
    /// `Some(true)` means maybe (counted as a bloom hit, walk as
    /// usual); `None` means no guard is installed or the switch is off
    /// (walk, uncounted).
    pub fn bloom_check(
        &self,
        file: FileId,
        key_bytes: &[u8],
    ) -> Option<bool> {
        if !self.bloom_guards_enabled() {
            return None;
        }
        let guard = self
            .blooms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&file)
            .cloned()?;
        let maybe = guard.maybe_contains(key_bytes);
        if maybe {
            self.stats.record_bloom_hit();
        } else {
            self.stats.record_bloom_skip();
        }
        Some(maybe)
    }

    // --- Batched readahead ----------------------------------------------

    /// Enable/disable batched readahead (off by default; see
    /// [`Pager::readahead`]).
    pub fn set_readahead(&self, on: bool) {
        self.readahead_on.store(on, Ordering::Relaxed);
    }

    /// Is batched readahead enabled?
    pub fn readahead_enabled(&self) -> bool {
        self.readahead_on.load(Ordering::Relaxed)
    }

    /// Prefetch `pages` of `file` into free buffer frames, returning how
    /// many were actually fetched. A no-op (returning 0) when readahead
    /// is disabled. Prefetching is strictly opportunistic: it fills only
    /// *free* capacity — it never evicts a resident frame — so with the
    /// paper's one-frame pools it does nothing and the pinned per-file
    /// I/O counts are untouched. Each fetched page is accounted as one
    /// access + one read (a later real access of it is then a buffer
    /// hit, preserving both the ledger identity and the total read
    /// count), plus the monotone readahead counter.
    pub fn readahead(&self, file: FileId, pages: &[u32]) -> Result<u32> {
        if !self.readahead_enabled() {
            return Ok(0);
        }
        let st = &mut *self.st();
        let mut fetched = 0u32;
        for &page_no in pages {
            let pool = st.pool_mut(file);
            if pool.frames.len() >= pool.cap {
                break;
            }
            if pool.frames.iter().any(|f| f.page_no == page_no) {
                continue;
            }
            let page = match st.overlay.get(&(file, page_no)) {
                Some(p) => p.clone(),
                None => {
                    match st.fetch_from_disk(&self.stats, file, page_no) {
                        Ok(p) => p,
                        // A page that vanished mid-batch (concurrent
                        // truncate) ends the prefetch; the demand path
                        // will surface any real error.
                        Err(_) => break,
                    }
                }
            };
            self.stats.record_access(file);
            self.stats.record_read(file);
            let pool = st.pool_mut(file);
            pool.frames.push(Frame {
                page_no,
                page,
                dirty: false,
                pinned: false,
                referenced: false,
            });
            fetched += 1;
        }
        if fetched > 0 {
            self.stats.record_readahead(u64::from(fetched));
        }
        Ok(fetched)
    }

    // --- Corruption defense ---------------------------------------------

    /// Install a checksum sidecar (or `None` to turn verification off,
    /// the paper default). Pages with no recorded sum are adopted on
    /// first read, so enabling with an empty [`ChecksumSet`] over an
    /// existing database is safe.
    pub fn set_checksums(&self, sums: Option<ChecksumSet>) {
        self.st().checksums = sums;
    }

    /// Turn on checksum verification with an empty sidecar
    /// (adopt-on-first-read over whatever is already on disk).
    pub fn enable_checksums(&self) {
        let mut st = self.st();
        if st.checksums.is_none() {
            st.checksums = Some(ChecksumSet::new());
        }
    }

    /// Is checksum verification on?
    pub fn checksums_enabled(&self) -> bool {
        self.st_read().checksums.is_some()
    }

    /// A snapshot of the live checksum sidecar, if verification is on.
    pub fn checksums_snapshot(&self) -> Option<ChecksumSet> {
        self.st_read().checksums.clone()
    }

    /// Set the transient-read retry budget (0 disables retries).
    pub fn set_read_retries(&self, budget: u32) {
        self.st().read_retries = budget;
    }

    /// The transient-read retry budget.
    pub fn read_retries(&self) -> u32 {
        self.st_read().read_retries
    }

    /// Read a page straight from the disk: no buffer, no checksum
    /// verification, no retry. This is the scrubber's view — it must be
    /// able to look at a page the verified path would refuse to return.
    /// Counted as one access + one read so scrub I/O is visible in the
    /// ledger without breaking its `hits + reads == accesses` identity.
    pub fn read_page_raw(
        &self,
        file: FileId,
        page_no: u32,
    ) -> Result<Page> {
        let page = self.st().disk.read_page(file, page_no)?;
        self.stats.record_access(file);
        self.stats.record_read(file);
        Ok(page)
    }

    /// Write a page image straight to disk, refreshing its sidecar sum
    /// and discarding any stale buffered frame (the raw image is now the
    /// truth). This is the repair path: salvage installs a WAL image or a
    /// reinitialized page wholesale.
    pub fn write_page_raw(
        &self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        let st = &mut *self.st();
        st.disk.write_page(file, page_no, page)?;
        self.stats.record_write(file);
        st.note_written(file, page_no, page);
        st.overlay.remove(&(file, page_no));
        st.staged.remove(&(file, page_no));
        if let Some(pool) = st.pools.get_mut(&file) {
            pool.frames.retain(|f| f.page_no != page_no);
            pool.hand = 0;
        }
        Ok(())
    }

    /// Drop every buffered frame (writing dirty ones back) so the next
    /// access of each page is a cold read. The harness calls this between
    /// queries so each query starts with cold buffers, as a fresh query
    /// would in the prototype. Flushes are not evictions: the eviction
    /// counter is untouched.
    pub fn invalidate_buffers(&self) -> Result<()> {
        let st = &mut *self.st();
        let files: Vec<FileId> = st.pools.keys().copied().collect();
        for f in files {
            let pool = st.pool_of(f)?;
            pool.hand = 0;
            let frames = std::mem::take(&mut pool.frames);
            for frame in frames {
                st.write_back(&self.stats, f, frame)?;
            }
        }
        Ok(())
    }

    /// Create a new empty file.
    pub fn create_file(&self) -> Result<FileId> {
        let st = &mut *self.st();
        let id = st.disk.create_file()?;
        st.pool_mut(id);
        if let Some(u) = st.undo.as_mut() {
            u.created.push(id);
        }
        Ok(id)
    }

    /// Delete a file, its pages, its buffers, and its cap override. Like
    /// [`Pager::truncate`], pending (dirty) writes are intentionally
    /// discarded without write-back accounting — the data they would have
    /// persisted is being destroyed.
    pub fn drop_file(&self, file: FileId) -> Result<()> {
        self.bloom_drop(file);
        let st = &mut *self.st();
        if st.staging && st.undo.is_some() {
            // Capture before anything is removed: the prior cap
            // override and every overlay/staged entry this drop purges.
            let keys: Vec<(FileId, u32)> = st
                .overlay
                .keys()
                .filter(|(f, _)| *f == file)
                .copied()
                .collect();
            for key in keys {
                st.undo_touch(key);
            }
            let prior = st.overrides.get(&file).copied();
            let u = st.undo.as_mut().expect("checked above");
            u.overrides.entry(file).or_insert(prior);
        }
        st.pools.remove(&file);
        st.overrides.remove(&file);
        if let Some(sums) = &mut st.checksums {
            sums.drop_file(file);
        }
        if st.staging {
            // Defer the physical drop until the commit that logs it is
            // durable: a crash in between must not have destroyed pages
            // a committed state still references.
            st.overlay.retain(|(f, _), _| *f != file);
            st.staged.retain(|(f, _)| *f != file);
            st.resized.remove(&file);
            st.pending_drops.push(file);
            return Ok(());
        }
        st.disk.drop_file(file)
    }

    /// Truncate a file to zero pages. The pool (and any configured cap)
    /// survives, but its frames are discarded: pending dirty writes are
    /// intentionally dropped *without* write-back accounting, exactly as
    /// [`Pager::drop_file`] drops them — pages that no longer exist cost
    /// no output. Neither counts evictions.
    pub fn truncate(&self, file: FileId) -> Result<()> {
        self.bloom_drop(file);
        let st = &mut *self.st();
        if st.staging && st.undo.is_some() {
            // A physical truncate destroys checkpointed pages, so undo
            // must save the on-disk images (the only destructive disk
            // write a staged statement can make) plus every overlay
            // entry about to be purged. Capture happens before any
            // mutation: a failed capture leaves the file untouched.
            st.undo_resize(file)?;
            if !st
                .undo
                .as_ref()
                .expect("checked above")
                .truncated
                .contains_key(&file)
            {
                let n = st.disk.page_count(file)?;
                let pages: Vec<Page> = (0..n)
                    .map(|p| st.disk.read_page(file, p))
                    .collect::<Result<_>>()?;
                st.undo
                    .as_mut()
                    .expect("checked above")
                    .truncated
                    .insert(file, pages);
            }
            let keys: Vec<(FileId, u32)> = st
                .overlay
                .keys()
                .filter(|(f, _)| *f == file)
                .copied()
                .collect();
            for key in keys {
                st.undo_touch(key);
            }
        }
        if let Some(pool) = st.pools.get_mut(&file) {
            pool.frames.clear();
            pool.hand = 0;
        }
        if let Some(sums) = &mut st.checksums {
            sums.truncate(file, 0);
        }
        if st.staging {
            st.overlay.retain(|(f, _), _| *f != file);
            st.staged.retain(|(f, _)| *f != file);
            st.resized.insert(file);
        }
        st.disk.truncate(file)
    }

    /// Number of pages in `file`.
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        self.st_read().disk.page_count(file)
    }

    /// Read access to a page through the buffer. The frame is pinned (and
    /// the pager lock held) for the duration of the callback.
    pub fn read<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        let st = &mut *self.st();
        let idx = st.fault_in(&self.stats, file, page_no)?;
        let frame = st
            .pool_of(file)?
            .frames
            .get_mut(idx)
            .ok_or_else(|| missing_frame(file, page_no))?;
        frame.pinned = true;
        let r = f(&frame.page);
        frame.pinned = false;
        Ok(r)
    }

    /// Write access to a page through the buffer; marks the frame dirty.
    /// The frame is pinned (and the pager lock held) for the duration of
    /// the callback.
    pub fn write<R>(
        &self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        let st = &mut *self.st();
        let idx = st.fault_in(&self.stats, file, page_no)?;
        let frame = st
            .pool_of(file)?
            .frames
            .get_mut(idx)
            .ok_or_else(|| missing_frame(file, page_no))?;
        frame.dirty = true;
        frame.pinned = true;
        let r = f(&mut frame.page);
        frame.pinned = false;
        Ok(r)
    }

    /// Append a fresh page of the given kind to `file`, placing it in the
    /// buffer dirty. The write is counted once, when the frame is evicted
    /// or flushed — so bulk-loading a page counts one output page, exactly
    /// as the paper's output-cost accounting expects. Materializing a new
    /// page is not a buffered page access (no hit, no miss).
    pub fn append_page(&self, file: FileId, kind: PageKind) -> Result<u32> {
        let st = &mut *self.st();
        let page = Page::new(kind);
        // Capture the pre-append disk length first: rollback trims the
        // placeholder tail back to it.
        st.undo_resize(file)?;
        let page_no = st.disk.append_page(file, &page)?;
        st.note_written(file, page_no, &page);
        if st.staging {
            // The file grows on disk immediately, but only with this
            // empty page: the content arrives through the buffer, whose
            // dirty frame (installed below) stages an after-image. The
            // commit logs the new length so recovery can trim an
            // uncommitted tail.
            st.resized.insert(file);
        }
        st.install_frame(
            &self.stats,
            file,
            Frame {
                page_no,
                page,
                dirty: true,
                pinned: false,
                referenced: false,
            },
        )?;
        Ok(page_no)
    }

    /// Write all dirty frames of `file` back to disk.
    pub fn flush_file(&self, file: FileId) -> Result<()> {
        let st = &mut *self.st();
        if let Some(pool) = st.pools.get_mut(&file) {
            let mut dirty = Vec::new();
            for frame in pool.frames.iter_mut() {
                if frame.dirty {
                    frame.dirty = false;
                    dirty.push((frame.page_no, frame.page.clone()));
                }
            }
            for (page_no, page) in dirty {
                if st.staging {
                    st.undo_touch((file, page_no));
                    st.overlay.insert((file, page_no), page);
                    st.staged.insert((file, page_no));
                } else {
                    st.disk.write_page(file, page_no, &page)?;
                    st.note_written(file, page_no, &page);
                }
                self.stats.record_write(file);
            }
        }
        Ok(())
    }

    /// Write all dirty frames of all files back to disk.
    pub fn flush_all(&self) -> Result<()> {
        let files: Vec<FileId> =
            self.st_read().pools.keys().copied().collect();
        for f in files {
            self.flush_file(f)?;
        }
        Ok(())
    }

    // --- WAL staging ----------------------------------------------------
    //
    // In staging mode the pager never writes data-page *content* to disk
    // on its own: every dirty write-back (eviction or flush) lands in an
    // in-memory overlay that shadows the disk for subsequent reads,
    // accumulating the transaction's after-images. The WAL commits by
    // logging those images; a checkpoint later writes the overlay
    // through. Appends and truncations still size the file on disk
    // immediately — only ever with empty pages, content arrives through
    // buffered writes — so `page_count` stays truthful, and the commit
    // logs each changed length so recovery can trim uncommitted tails.

    /// Switch staging mode (see above). Turn it on at open, before any
    /// writes; it is not meant to be toggled mid-transaction.
    pub fn set_staging(&self, on: bool) {
        self.st().staging = on;
    }

    /// Is the pager staging write-backs in the overlay?
    pub fn staging(&self) -> bool {
        self.st_read().staging
    }

    /// The `(file, page)` pairs dirtied since the last
    /// [`Pager::clear_staged`], sorted. After a `flush_all` each has its
    /// after-image in the overlay, ready to be logged.
    pub fn staged_pages(&self) -> Vec<(FileId, u32)> {
        self.st_read().staged.iter().copied().collect()
    }

    /// Forget the staged-page set (the commit that logged it is durable).
    pub fn clear_staged(&self) {
        self.st().staged.clear();
    }

    /// Stamp `lsn` into the overlay image of (`file`, `page_no`) — and
    /// into any resident frame of the same page — returning a copy of the
    /// stamped image for the log. Errors if the page is not staged
    /// (commit must flush first).
    pub fn stamp_overlay_lsn(
        &self,
        file: FileId,
        page_no: u32,
        lsn: u32,
    ) -> Result<Page> {
        let st = &mut *self.st();
        let page =
            st.overlay.get_mut(&(file, page_no)).ok_or_else(|| {
                Error::Internal(format!(
                    "page {page_no} of {file:?} is not staged"
                ))
            })?;
        page.set_lsn(lsn);
        let copy = page.clone();
        if let Some(pool) = st.pools.get_mut(&file) {
            if let Some(f) =
                pool.frames.iter_mut().find(|f| f.page_no == page_no)
            {
                f.page.set_lsn(lsn);
            }
        }
        Ok(copy)
    }

    /// Drain the files whose length changed since the last call, paired
    /// with their current length (the commit's file-length records).
    pub fn take_resized(&self) -> Result<Vec<(FileId, u32)>> {
        let st = &mut *self.st();
        let files = std::mem::take(&mut st.resized);
        files
            .into_iter()
            .map(|f| Ok((f, st.disk.page_count(f)?)))
            .collect()
    }

    /// Drain the files whose drop was deferred by staging mode, to be
    /// physically dropped once the commit that logs them is durable.
    pub fn take_pending_drops(&self) -> Vec<FileId> {
        std::mem::take(&mut self.st().pending_drops)
    }

    /// Physically drop a file whose drop was deferred by staging mode.
    /// Idempotent: a file already gone (a retried drop after a partial
    /// failure) is success, not an error.
    pub fn execute_drop(&self, file: FileId) -> Result<()> {
        let st = &mut *self.st();
        if st.disk.page_count(file).is_err() {
            return Ok(());
        }
        st.disk.drop_file(file)
    }

    /// Park a physical drop that the disk refused (out of space, device
    /// error) so `retry_deferred` completes it once the disk recovers.
    /// The drop is already logged as committed, so it must eventually
    /// happen — but nothing reads the file meanwhile, so deferring is
    /// safe.
    pub fn defer_drop(&self, file: FileId) {
        self.st().deferred.push(Deferred::Drop(file));
    }

    /// Write every overlay page through to the disk (counting one write
    /// per page — attribute it to a phase if it should be visible as
    /// checkpoint cost) and clear the overlay. Returns the files touched,
    /// sorted, so the caller can sync them.
    pub fn materialize_overlay(&self) -> Result<Vec<FileId>> {
        let st = &mut *self.st();
        // Iterate without consuming: a mid-loop failure (disk full
        // during a checkpoint) must not lose the committed images not
        // yet written. The overlay is cleared only once every page
        // landed; page writes are idempotent, so a retried checkpoint
        // simply re-writes them all.
        let PagerState {
            disk,
            overlay,
            checksums,
            ..
        } = &mut *st;
        let mut files: Vec<FileId> = Vec::new();
        for ((file, page_no), page) in overlay.iter() {
            disk.write_page(*file, *page_no, page)?;
            if let Some(sums) = checksums {
                sums.record(*file, *page_no, page);
            }
            self.stats.record_write(*file);
            if files.last() != Some(file) {
                files.push(*file);
            }
        }
        st.overlay.clear();
        Ok(files)
    }

    // --- Statement undo -------------------------------------------------
    //
    // Staging mode keeps uncommitted page *content* off the disk, so a
    // statement that dies mid-flight (disk full, fsync failure) has
    // polluted only in-memory state — plus, at worst, a file's *shape*
    // (appended placeholder tails, an in-statement truncate, a created
    // file). `begin_statement_undo` arms lazy first-touch capture of
    // both; `rollback_statement` restores the in-memory state exactly
    // (infallible) and repairs the shapes, deferring any repair the
    // still-exhausted disk refuses until `retry_deferred` succeeds.

    /// Arm statement undo: from now until `discard_statement_undo` or
    /// `rollback_statement`, every overlay/staged/resize/drop mutation
    /// snapshots its prior state at first touch.
    pub fn begin_statement_undo(&self) {
        let st = &mut *self.st();
        let drops_len = st.pending_drops.len();
        st.undo = Some(UndoLog {
            drops_len,
            ..UndoLog::default()
        });
    }

    /// The statement committed: forget the captured undo state.
    pub fn discard_statement_undo(&self) {
        self.st().undo = None;
    }

    /// Put the pager back as it was at `begin_statement_undo` (no-op
    /// without one armed). The in-memory restore cannot fail; physical
    /// repairs that the disk refuses (it may still be full) are parked
    /// on the deferred list — see [`Pager::retry_deferred`] — and the
    /// caller must hold writes until the list drains.
    ///
    /// Runs under the pager-wide lock in one critical section, so
    /// concurrent snapshot readers never observe a half-rolled-back
    /// pager.
    pub fn rollback_statement(&self) {
        let st = &mut *self.st();
        let Some(u) = st.undo.take() else { return };
        // Discard the buffered frames of every file the statement
        // touched WITHOUT write-back: dirty frames hold the dead
        // statement's content and must not re-pollute the overlay.
        // Pools of untouched files cache only committed pages — the
        // warm cache stays.
        let mut polluted: BTreeSet<FileId> = BTreeSet::new();
        polluted.extend(u.touched.keys().map(|(f, _)| *f));
        polluted.extend(u.resized_added.iter().copied());
        polluted.extend(u.lengths.keys().copied());
        polluted.extend(u.truncated.keys().copied());
        polluted.extend(u.created.iter().copied());
        for f in &polluted {
            if let Some(pool) = st.pools.get_mut(f) {
                pool.frames.clear();
                pool.hand = 0;
            }
        }
        for (key, (img, was_staged)) in &u.touched {
            match img {
                Some(p) => {
                    st.overlay.insert(*key, p.clone());
                }
                None => {
                    st.overlay.remove(key);
                }
            }
            if *was_staged {
                st.staged.insert(*key);
            } else {
                st.staged.remove(key);
            }
        }
        for f in &u.resized_added {
            st.resized.remove(f);
        }
        st.pending_drops.truncate(u.drops_len);
        for (f, prior) in &u.overrides {
            match prior {
                Some(cap) => {
                    st.overrides.insert(*f, *cap);
                }
                None => {
                    st.overrides.remove(f);
                }
            }
        }
        // Physical shape repairs, most destructive wins per file:
        // created files are dropped outright; truncated files get
        // their saved images back (trimmed to the pre-statement
        // length — the tail of the capture may be this statement's
        // own placeholders); grown files are trimmed.
        let mut fixes: Vec<Deferred> = Vec::new();
        for f in &u.created {
            fixes.push(Deferred::Drop(*f));
        }
        for (f, pages) in u.truncated {
            if u.created.contains(&f) {
                continue;
            }
            let keep = u
                .lengths
                .get(&f)
                .map(|l| *l as usize)
                .unwrap_or(pages.len())
                .min(pages.len());
            let mut pages = pages;
            pages.truncate(keep);
            fixes.push(Deferred::Restore(f, pages));
        }
        for (f, len) in &u.lengths {
            if u.created.contains(f)
                || fixes
                    .iter()
                    .any(|x| matches!(x, Deferred::Restore(g, _) if g == f))
            {
                continue;
            }
            fixes.push(Deferred::Shrink(*f, *len));
        }
        for fix in fixes {
            if st.apply_fix(&fix).is_err() {
                st.deferred.push(fix);
            }
        }
    }

    /// Re-attempt every deferred physical rollback step, stopping at
    /// the first that still fails (steps are idempotent, so a partial
    /// pass is safe to repeat). Empty list == on-disk shapes agree
    /// with the committed state again.
    pub fn retry_deferred(&self) -> Result<()> {
        let st = &mut *self.st();
        while let Some(fix) = st.deferred.first().cloned() {
            st.apply_fix(&fix)?;
            st.deferred.remove(0);
        }
        Ok(())
    }

    /// Are physical rollback repairs still outstanding?
    pub fn has_deferred(&self) -> bool {
        !self.st_read().deferred.is_empty()
    }

    /// Force one file's pages to stable storage.
    pub fn sync_file(&self, file: FileId) -> Result<()> {
        self.st().disk.sync(file)
    }

    /// Force every live file's pages to stable storage.
    pub fn sync_all(&self) -> Result<()> {
        let st = &mut *self.st();
        for f in st.disk.files() {
            st.disk.sync(f)?;
        }
        Ok(())
    }

    /// Current length of every live disk file, sorted (the checkpoint's
    /// file-length snapshot).
    pub fn file_lengths(&self) -> Result<Vec<(FileId, u32)>> {
        let st = self.st_read();
        st.disk
            .files()
            .into_iter()
            .map(|f| Ok((f, st.disk.page_count(f)?)))
            .collect()
    }

    /// Test hook: force a frame's pin bit, bypassing the callback
    /// discipline, to exercise the all-pinned eviction guard.
    #[cfg(test)]
    fn force_pin(&self, file: FileId, idx: usize, on: bool) {
        let st = &mut *self.st();
        if let Some(frame) = st
            .pools
            .get_mut(&file)
            .and_then(|pool| pool.frames.get_mut(idx))
        {
            frame.pinned = on;
        }
    }

    /// Test hook: remove a file's buffer pool behind the pager's back,
    /// simulating the corrupt-catalog state where in-memory bookkeeping
    /// no longer covers a file the catalog still references.
    #[cfg(test)]
    fn corrupt_drop_pool(&self, file: FileId) {
        self.st().pools.remove(&file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the interior-locking rewrite.
    #[test]
    fn pager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pager>();
        assert_send_sync::<IoStats>();
    }

    fn two_page_file(pager: &Pager) -> FileId {
        let f = pager.create_file().unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        pager.flush_file(f).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        f
    }

    #[test]
    fn vanished_pool_is_corruption_not_a_panic() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager.read(f, 0, |_| ()).unwrap();
        // Corrupt the in-memory bookkeeping: the pool disappears while
        // the file (and its buffered frame) is still live.
        pager.corrupt_drop_pool(f);
        let err = match pager.st().pool_of(f) {
            Err(e) => e,
            Ok(_) => panic!("pool_of found a pool we just removed"),
        };
        assert!(
            matches!(err, Error::Corruption { file: Some(id), .. }
                if id == f.0),
            "want located corruption, got {err}"
        );
        // Public entry points recover by recreating the pool on demand
        // instead of aborting the process.
        pager.read(f, 0, |_| ()).unwrap();
        pager.set_buffer_frames(f, 2).unwrap();
        pager.invalidate_buffers().unwrap();
    }

    #[test]
    fn repeated_access_to_resident_page_is_free() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        for _ in 0..10 {
            pager.read(f, 0, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 1);
        assert_eq!(pager.stats().of(f).hits, 9);
        assert_eq!(pager.stats().of(f).accesses, 10);
        assert!(pager.stats().is_consistent());
    }

    #[test]
    fn single_frame_alternation_thrashes() {
        // With 1 buffer per file, alternating between two pages costs one
        // read per access — the degradation the paper's setup makes visible.
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 10);
        assert_eq!(pager.stats().of(f).hits, 0);
        // Every miss after the first evicts the resident page.
        assert_eq!(pager.stats().of(f).evictions, 9);
    }

    #[test]
    fn two_frames_stop_the_thrash() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager.set_buffer_frames(f, 2).unwrap();
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 2);
        assert_eq!(pager.stats().of(f).hits, 8);
        assert_eq!(pager.stats().of(f).evictions, 0);
    }

    #[test]
    fn files_have_independent_buffers() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        let g = two_page_file(&pager);
        pager.reset_stats();
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(g, 0, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 1);
        assert_eq!(pager.stats().of(g).reads, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_once() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager
            .write(f, 0, |p| p.push_row(4, &[1, 2, 3, 4]).unwrap())
            .unwrap();
        // Evict page 0 by touching page 1.
        pager.read(f, 1, |_| ()).unwrap();
        assert_eq!(pager.stats().of(f).writes, 1);
        assert_eq!(pager.stats().of(f).evictions, 1);
        // The mutation survived the round trip.
        pager
            .read(f, 0, |p| assert_eq!(p.row(4, 0).unwrap(), &[1, 2, 3, 4]))
            .unwrap();
    }

    #[test]
    fn appended_page_counts_one_write_when_flushed() {
        let pager = Pager::in_memory();
        let f = pager.create_file().unwrap();
        pager.reset_stats();
        let p = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p, |pg| pg.push_row(4, &[0; 4]).unwrap())
            .unwrap();
        pager
            .write(f, p, |pg| pg.push_row(4, &[1; 4]).unwrap())
            .unwrap();
        pager.flush_file(f).unwrap();
        assert_eq!(pager.stats().of(f).writes, 1);
        assert_eq!(pager.stats().of(f).reads, 0);
        // Appending is not a buffered access; the two writes both hit.
        assert_eq!(pager.stats().of(f).accesses, 2);
        assert_eq!(pager.stats().of(f).hits, 2);
        assert!(pager.stats().is_consistent());
    }

    #[test]
    fn truncate_clears_buffers_and_pages() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager.read(f, 1, |_| ()).unwrap();
        pager.truncate(f).unwrap();
        assert_eq!(pager.page_count(f).unwrap(), 0);
        assert!(pager.read(f, 0, |_| ()).is_err());
    }

    #[test]
    fn truncate_and_drop_discard_pending_writes_identically() {
        // Satellite bugfix 2: truncation intentionally drops dirty frames
        // with no write-back accounting, matching drop_file, and the
        // hit/miss/access ledger stays consistent through both.
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        let g = two_page_file(&pager);
        pager.reset_stats();
        pager
            .write(f, 0, |p| p.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        pager
            .write(g, 0, |p| p.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        pager.truncate(f).unwrap();
        pager.drop_file(g).unwrap();
        assert_eq!(
            pager.stats().of(f).writes,
            0,
            "truncate drops the write"
        );
        assert_eq!(
            pager.stats().of(g).writes,
            0,
            "drop_file drops the write"
        );
        assert_eq!(pager.stats().of(f).evictions, 0);
        assert_eq!(pager.stats().of(g).evictions, 0);
        assert!(pager.stats().is_consistent());
        assert_eq!(pager.page_count(f).unwrap(), 0);
        // The truncated file's pool (and any cap) survives for reuse.
        pager.append_page(f, PageKind::Data).unwrap();
        pager.read(f, 0, |_| ()).unwrap();
    }

    #[test]
    fn invalidate_buffers_forces_cold_reads() {
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager.read(f, 0, |_| ()).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        pager.read(f, 0, |_| ()).unwrap();
        assert_eq!(pager.stats().of(f).reads, 1);
    }

    #[test]
    fn lazy_pools_honor_the_configured_default() {
        // Satellite bugfix 1: a file opened from a persisted catalog (so
        // never passed through create_file on this pager) must still get
        // the configured default frames when its pool is created lazily by
        // a fault-in or an append.
        let dir = tdbms_kernel::tmpdir::fresh_dir("pager-lazycap");
        let f;
        {
            let pager = Pager::new(Box::new(
                crate::disk::FileDisk::open(&dir).unwrap(),
            ));
            f = two_page_file(&pager);
            pager.flush_all().unwrap();
        }
        // Reopen: the pager has never seen `f`; its pool will be created
        // lazily by the first read.
        let pager = Pager::new(Box::new(
            crate::disk::FileDisk::open(&dir).unwrap(),
        ));
        pager.set_default_buffer_frames(2);
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
        }
        // With the bug (lazy pools hard-wired to cap 1) this thrashes: 10
        // reads. With 2 frames both pages stay resident.
        assert_eq!(pager.stats().of(f).reads, 2);
        // The lazy append path resolves the cap the same way.
        pager.append_page(f, PageKind::Data).unwrap();
        pager.read(f, 0, |_| ()).unwrap();
        assert_eq!(
            pager.stats().of(f).reads,
            3,
            "page 0 was evicted by the \
             append only because the pool is at its configured cap of 2"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_file_config_overrides_the_default() {
        let pager = Pager::in_memory_with_config(BufferConfig {
            default_frames: 1,
            policy: EvictionPolicy::Lru,
            // MemDisk hands out FileId(0) first.
            per_file: vec![(FileId(0), 2)],
        });
        let f = two_page_file(&pager);
        assert_eq!(f, FileId(0));
        let g = two_page_file(&pager);
        pager.reset_stats();
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
            pager.read(g, 0, |_| ()).unwrap();
            pager.read(g, 1, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 2, "override: 2 frames");
        assert_eq!(pager.stats().of(g).reads, 10, "default: 1 frame");
    }

    #[test]
    fn clock_policy_gives_second_chances() {
        let pager = Pager::in_memory_with_config(BufferConfig::uniform(
            2,
            EvictionPolicy::Clock,
        ));
        let f = pager.create_file().unwrap();
        for _ in 0..3 {
            pager.append_page(f, PageKind::Data).unwrap();
        }
        pager.flush_file(f).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();

        pager.read(f, 0, |_| ()).unwrap(); // miss: [0]
        pager.read(f, 0, |_| ()).unwrap(); // hit, reference bit set
        pager.read(f, 1, |_| ()).unwrap(); // miss: [0, 1]
                                           // Miss at capacity: the hand clears 0's reference bit, then evicts
                                           // 1 (unreferenced) — the recently re-read page 0 survives.
        pager.read(f, 2, |_| ()).unwrap();
        pager.read(f, 0, |_| ()).unwrap(); // still resident: hit
        let io = pager.stats().of(f);
        assert_eq!(io.reads, 3);
        assert_eq!(io.hits, 2);
        assert_eq!(io.evictions, 1);
        assert!(pager.stats().is_consistent());
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        // The eviction scan must skip pinned frames; with every frame
        // pinned, faulting another page is an error rather than a stolen
        // frame (the situation cannot arise through the closure API, which
        // unpins on return — this exercises the guard directly).
        let pager = Pager::in_memory();
        let f = two_page_file(&pager);
        pager.read(f, 0, |_| ()).unwrap();
        pager.force_pin(f, 0, true);
        assert!(
            pager.read(f, 1, |_| ()).is_err(),
            "sole frame is pinned: nothing to evict"
        );
        pager.force_pin(f, 0, false);
        pager.read(f, 1, |_| ()).unwrap();
    }

    #[test]
    fn staging_holds_writes_in_the_overlay() {
        let pager = Pager::in_memory();
        pager.set_staging(true);
        let f = pager.create_file().unwrap();
        let p = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p, |pg| pg.push_row(4, &[7; 4]).unwrap())
            .unwrap();
        pager.flush_all().unwrap();
        assert_eq!(pager.staged_pages(), vec![(f, p)]);
        // The overlay shadows the (still empty) on-disk page for reads.
        pager.invalidate_buffers().unwrap();
        pager
            .read(f, p, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[7; 4]))
            .unwrap();
        // Commit stamps the LSN into the image; checkpoint materializes.
        let img = pager.stamp_overlay_lsn(f, p, 42).unwrap();
        assert_eq!(img.lsn(), 42);
        pager.clear_staged();
        assert!(pager.staged_pages().is_empty());
        assert_eq!(pager.materialize_overlay().unwrap(), vec![f]);
        pager.invalidate_buffers().unwrap();
        pager
            .read(f, p, |pg| {
                assert_eq!(pg.lsn(), 42);
                assert_eq!(pg.row(4, 0).unwrap(), &[7; 4]);
            })
            .unwrap();
    }

    #[test]
    fn staging_defers_drops_and_tracks_lengths() {
        let pager = Pager::in_memory();
        pager.set_staging(true);
        let f = pager.create_file().unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        assert_eq!(pager.take_resized().unwrap(), vec![(f, 2)]);
        assert!(pager.take_resized().unwrap().is_empty(), "drained");
        pager.drop_file(f).unwrap();
        // Still on disk until the commit executes the deferred drop.
        assert_eq!(pager.page_count(f).unwrap(), 2);
        assert_eq!(pager.take_pending_drops(), vec![f]);
        pager.execute_drop(f).unwrap();
        assert!(pager.page_count(f).is_err());
    }

    #[test]
    fn corruption_error_round_trips_through_the_pager() {
        // Satellite 1: flip a byte under the pager's feet; the verified
        // read path must surface Error::Corruption locating the page —
        // and a clean page on the same file must still read fine.
        use crate::fault::SharedMemDisk;
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        pager.enable_checksums();
        let f = two_page_file(&pager);
        pager
            .write(f, 0, |p| p.push_row(4, &[7; 4]).unwrap())
            .unwrap();
        pager.flush_file(f).unwrap();
        pager.invalidate_buffers().unwrap();
        // Corrupt page 0 behind the pager's back.
        let mut raw = shared.clone();
        use crate::disk::DiskManager;
        let mut bytes = Box::new(*raw.read_page(f, 0).unwrap().as_bytes());
        bytes[500] ^= 0x01;
        raw.write_page(f, 0, &Page::from_bytes(bytes)).unwrap();
        let err = pager.read(f, 0, |_| ()).unwrap_err();
        match err {
            Error::Corruption { file, page, .. } => {
                assert_eq!(file, Some(f.0));
                assert_eq!(page, Some(0));
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        // The retry budget was spent on the (persistent) mismatch.
        assert_eq!(
            pager.stats().of(f).retries,
            DEFAULT_READ_RETRIES as u64
        );
        // Page 1 is untouched and still readable.
        pager.read(f, 1, |_| ()).unwrap();
    }

    #[test]
    fn transient_read_failures_are_retried_within_budget() {
        use crate::fault::{FaultDisk, FaultPlan};
        let mut inner = MemDisk::new();
        let f = inner.create_file().unwrap();
        let mut page = Page::new(PageKind::Data);
        page.push_row(4, &[3; 4]).unwrap();
        inner.append_page(f, &page).unwrap();
        let mut fault =
            FaultDisk::new(Box::new(inner), FaultPlan::new(None));
        // Read ops 1 and 2 fail once each: the budget of 2 covers both.
        fault.set_transient_reads([1, 2]);
        let pager = Pager::new(Box::new(fault));
        pager
            .read(f, 0, |p| assert_eq!(p.row(4, 0).unwrap(), &[3; 4]))
            .unwrap();
        assert_eq!(pager.stats().of(f).retries, 2);
        assert_eq!(pager.stats().of(f).reads, 1, "one page read, retried");
        assert_eq!(pager.stats().total_retries(), 2);
        assert!(pager.stats().is_consistent());
    }

    #[test]
    fn transient_failures_beyond_the_budget_surface() {
        use crate::fault::{FaultDisk, FaultPlan};
        let mut inner = MemDisk::new();
        let f = inner.create_file().unwrap();
        inner.append_page(f, &Page::new(PageKind::Data)).unwrap();
        let mut fault =
            FaultDisk::new(Box::new(inner), FaultPlan::new(None));
        fault.set_transient_reads([1, 2, 3]);
        let pager = Pager::new(Box::new(fault));
        pager.set_read_retries(2);
        assert!(
            pager.read(f, 0, |_| ()).is_err(),
            "3 consecutive failures exceed a budget of 2"
        );
        assert_eq!(pager.stats().of(f).retries, 2, "budget fully spent");
        // The media has recovered by now; the next access succeeds.
        pager.read(f, 0, |_| ()).unwrap();
    }

    #[test]
    fn raw_write_repairs_a_checksum_failure() {
        use crate::fault::SharedMemDisk;
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        pager.enable_checksums();
        pager.set_read_retries(0);
        let f = two_page_file(&pager);
        pager
            .write(f, 0, |p| p.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        pager.flush_file(f).unwrap();
        pager.invalidate_buffers().unwrap();
        let good = pager.read_page_raw(f, 0).unwrap();
        // Corrupt, observe the failure, repair with the saved image.
        use crate::disk::DiskManager;
        let mut raw = shared.clone();
        let mut bytes = Box::new(*good.as_bytes());
        bytes[13] ^= 0xff;
        raw.write_page(f, 0, &Page::from_bytes(bytes)).unwrap();
        assert!(pager.read(f, 0, |_| ()).is_err());
        pager.write_page_raw(f, 0, &good).unwrap();
        pager
            .read(f, 0, |p| assert_eq!(p.row(4, 0).unwrap(), &[9; 4]))
            .unwrap();
    }

    #[test]
    fn policies_agree_at_cap_one() {
        // The paper's configuration is policy-independent: a single frame
        // leaves nothing for a policy to choose between.
        let mut costs = Vec::new();
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let pager = Pager::in_memory_with_config(
                BufferConfig::uniform(1, policy),
            );
            let f = two_page_file(&pager);
            for _ in 0..4 {
                pager.read(f, 0, |_| ()).unwrap();
                pager.read(f, 1, |_| ()).unwrap();
                pager.read(f, 1, |_| ()).unwrap();
            }
            costs.push(pager.stats().of(f).reads);
        }
        assert_eq!(costs[0], costs[1]);
        assert_eq!(costs[0], 8);
    }

    /// Stage some committed state the way the durable engine does:
    /// content flushed to the overlay, then the commit drains the
    /// staged set and the resize records.
    fn committed_staging_file(pager: &Pager) -> FileId {
        let f = pager.create_file().unwrap();
        let p0 = pager.append_page(f, PageKind::Data).unwrap();
        let p1 = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p0, |pg| pg.push_row(4, &[1; 4]).unwrap())
            .unwrap();
        pager
            .write(f, p1, |pg| pg.push_row(4, &[2; 4]).unwrap())
            .unwrap();
        pager.flush_all().unwrap();
        pager.clear_staged();
        pager.take_resized().unwrap();
        f
    }

    #[test]
    fn statement_rollback_restores_overlay_and_shapes() {
        let pager = Pager::in_memory();
        pager.set_staging(true);
        let f = committed_staging_file(&pager);

        pager.begin_statement_undo();
        // The doomed statement: overwrite a committed page, grow the
        // file, and create a whole new file with content.
        pager
            .write(f, 0, |pg| pg.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        let p2 = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p2, |pg| pg.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        let g = pager.create_file().unwrap();
        pager.append_page(g, PageKind::Data).unwrap();
        pager.flush_all().unwrap();
        pager.rollback_statement();
        assert!(!pager.has_deferred(), "healthy disk repairs inline");

        // Committed overlay images are back, the dead statement's
        // second row is gone, and the shapes match the commit.
        pager
            .read(f, 0, |pg| {
                assert_eq!(pg.row(4, 0).unwrap(), &[1; 4]);
                assert!(pg.row(4, 1).is_err(), "statement row rolled back");
            })
            .unwrap();
        pager
            .read(f, 1, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[2; 4]))
            .unwrap();
        assert_eq!(pager.page_count(f).unwrap(), 2, "tail trimmed");
        assert!(pager.page_count(g).is_err(), "created file dropped");
        assert!(pager.staged_pages().is_empty(), "staged set drained");
        assert!(pager.take_resized().unwrap().is_empty());
    }

    #[test]
    fn rollback_keeps_untouched_files_warm_cache() {
        let pager = Pager::in_memory_with_config(BufferConfig::uniform(
            4,
            EvictionPolicy::Lru,
        ));
        pager.set_staging(true);
        let f = committed_staging_file(&pager);
        let g = committed_staging_file(&pager);
        pager.materialize_overlay().unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        // Warm f's pool, then roll back a statement that only dirties g.
        pager.read(f, 0, |_| ()).unwrap();
        assert_eq!(pager.stats().of(f).reads, 1);

        pager.begin_statement_undo();
        pager
            .write(g, 0, |pg| pg.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        pager.rollback_statement();

        // f never appeared in the undo log, so its frames survive the
        // rollback: the re-read is a buffer hit, not a disk read. Only
        // the touched file's potentially-polluted frames are discarded.
        pager.read(f, 0, |_| ()).unwrap();
        let io = pager.stats().of(f);
        assert_eq!(io.reads, 1, "untouched file's warm cache survives");
        assert_eq!(io.hits, 1);
    }

    #[test]
    fn statement_rollback_restores_a_truncated_file() {
        let pager = Pager::in_memory();
        pager.set_staging(true);
        let f = committed_staging_file(&pager);
        // Checkpoint: the committed content reaches the disk.
        pager.materialize_overlay().unwrap();

        pager.begin_statement_undo();
        pager.truncate(f).unwrap();
        let p = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p, |pg| pg.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        pager.flush_all().unwrap();
        pager.rollback_statement();
        assert!(!pager.has_deferred());

        assert_eq!(pager.page_count(f).unwrap(), 2);
        pager
            .read(f, 0, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[1; 4]))
            .unwrap();
        pager
            .read(f, 1, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[2; 4]))
            .unwrap();
    }

    #[test]
    fn rollback_defers_repairs_until_the_disk_recovers() {
        use crate::fault::{FaultDisk, FaultPlan, SharedMemDisk};
        let shared = SharedMemDisk::new();
        let plan = FaultPlan::new(None);
        let pager = Pager::new(Box::new(FaultDisk::new(
            Box::new(shared),
            plan.clone(),
        )));
        pager.set_staging(true);
        let f = committed_staging_file(&pager);

        pager.begin_statement_undo();
        let p2 = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p2, |pg| pg.push_row(4, &[9; 4]).unwrap())
            .unwrap();
        // Disk fills up; the statement dies; rollback cannot trim the
        // placeholder tail yet.
        plan.set_enospc(true);
        pager.rollback_statement();
        assert!(pager.has_deferred(), "trim deferred: disk still full");
        assert!(pager.retry_deferred().is_err(), "still full");
        assert!(pager.has_deferred());
        // In-memory state is already rolled back: the committed images
        // are intact and readable throughout.
        pager
            .read(f, 0, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[1; 4]))
            .unwrap();
        // Space recovers; the deferred trim drains and shapes agree.
        plan.set_enospc(false);
        pager.retry_deferred().unwrap();
        assert!(!pager.has_deferred());
        assert_eq!(pager.page_count(f).unwrap(), 2);
    }

    #[test]
    fn discard_keeps_the_statement_effects() {
        let pager = Pager::in_memory();
        pager.set_staging(true);
        let f = committed_staging_file(&pager);
        pager.begin_statement_undo();
        let p2 = pager.append_page(f, PageKind::Data).unwrap();
        pager
            .write(f, p2, |pg| pg.push_row(4, &[7; 4]).unwrap())
            .unwrap();
        pager.flush_all().unwrap();
        pager.discard_statement_undo();
        pager.rollback_statement(); // no-op: nothing armed
        assert_eq!(pager.page_count(f).unwrap(), 3);
        pager
            .read(f, p2, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[7; 4]))
            .unwrap();
    }

    #[test]
    fn failed_materialize_keeps_the_overlay_for_retry() {
        use crate::fault::{FaultDisk, FaultPlan, SharedMemDisk};
        let shared = SharedMemDisk::new();
        let plan = FaultPlan::new(None);
        let pager = Pager::new(Box::new(FaultDisk::new(
            Box::new(shared),
            plan.clone(),
        )));
        pager.set_staging(true);
        let f = committed_staging_file(&pager);
        plan.set_enospc(true);
        assert!(pager.materialize_overlay().is_err());
        // Nothing was consumed: the same checkpoint succeeds whole once
        // space returns, and the content reads back from disk.
        plan.set_enospc(false);
        assert_eq!(pager.materialize_overlay().unwrap(), vec![f]);
        pager.invalidate_buffers().unwrap();
        pager
            .read(f, 0, |pg| assert_eq!(pg.row(4, 0).unwrap(), &[1; 4]))
            .unwrap();
    }

    /// Concurrent readers over disjoint files: every thread's accounting
    /// lands, the ledger identity holds, and nobody deadlocks.
    #[test]
    fn concurrent_reads_account_exactly() {
        use std::sync::Arc;
        let pager = Arc::new(Pager::in_memory());
        let files: Vec<FileId> =
            (0..4).map(|_| two_page_file(&pager)).collect();
        pager.reset_stats();
        std::thread::scope(|s| {
            for &f in &files {
                let pager = Arc::clone(&pager);
                s.spawn(move || {
                    for _ in 0..25 {
                        pager.read(f, 0, |_| ()).unwrap();
                        pager.read(f, 1, |_| ()).unwrap();
                    }
                });
            }
        });
        for &f in &files {
            let io = pager.stats().of(f);
            assert_eq!(io.accesses, 50);
            assert_eq!(io.hits + io.reads, 50);
        }
        assert!(pager.stats().is_consistent());
    }
}
