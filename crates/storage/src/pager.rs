//! The pager: buffer management plus access accounting.
//!
//! The paper's methodology is specific about buffering: "we counted only
//! disk accesses to user relations, and allocated only 1 buffer for each
//! user relation so that a page resides in main memory only until another
//! page from the same relation is brought in." [`Pager`] reproduces that:
//! each file gets its own small frame pool (default **one** frame), a
//! buffer hit is free, a miss fetches from the [`DiskManager`] and bumps
//! the file's read counter, and dirty frames are written back on eviction
//! or flush (bumping the write counter).

use crate::disk::{DiskManager, FileId, MemDisk};
use crate::iostats::IoStats;
use crate::page::{Page, PageKind};
use tdbms_kernel::Result;

struct Frame {
    page_no: u32,
    page: Page,
    dirty: bool,
}

struct FilePool {
    cap: usize,
    /// MRU-first frame list; tiny (cap is 1 in the benchmark), so linear
    /// search beats any fancier structure.
    frames: Vec<Frame>,
}

/// Buffer-managing page store over a [`DiskManager`].
pub struct Pager {
    disk: Box<dyn DiskManager>,
    pools: std::collections::HashMap<FileId, FilePool>,
    stats: IoStats,
    default_cap: usize,
}

impl Pager {
    /// A pager over the given disk with the paper's 1-frame-per-file
    /// buffering.
    pub fn new(disk: Box<dyn DiskManager>) -> Self {
        Pager {
            disk,
            pools: std::collections::HashMap::new(),
            stats: IoStats::new(),
            default_cap: 1,
        }
    }

    /// In-memory pager (the benchmark configuration).
    pub fn in_memory() -> Self {
        Pager::new(Box::new(MemDisk::new()))
    }

    /// Change the default buffer frames allotted to newly created files.
    pub fn set_default_buffer_frames(&mut self, cap: usize) {
        self.default_cap = cap.max(1);
    }

    /// Change the buffer frames allotted to one file, evicting as needed.
    pub fn set_buffer_frames(&mut self, file: FileId, cap: usize) -> Result<()> {
        let cap = cap.max(1);
        // Evict overflowing frames (LRU end first).
        loop {
            let pool = self.pools.entry(file).or_insert(FilePool {
                cap,
                frames: Vec::new(),
            });
            pool.cap = cap;
            if pool.frames.len() <= cap {
                break;
            }
            let frame = pool.frames.pop().expect("nonempty");
            self.write_back(file, frame)?;
        }
        Ok(())
    }

    /// The access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Zero the access counters (done by the harness before each query).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop every buffered frame (writing dirty ones back) so the next
    /// access of each page is a cold read. The harness calls this between
    /// queries so each query starts with cold buffers, as a fresh query
    /// would in the prototype.
    pub fn invalidate_buffers(&mut self) -> Result<()> {
        let files: Vec<FileId> = self.pools.keys().copied().collect();
        for f in files {
            let frames = std::mem::take(
                &mut self.pools.get_mut(&f).expect("present").frames,
            );
            for frame in frames {
                self.write_back(f, frame)?;
            }
        }
        Ok(())
    }

    /// Create a new empty file.
    pub fn create_file(&mut self) -> Result<FileId> {
        let id = self.disk.create_file()?;
        self.pools
            .insert(id, FilePool { cap: self.default_cap, frames: Vec::new() });
        Ok(id)
    }

    /// Delete a file and all its pages and buffers.
    pub fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.pools.remove(&file);
        self.disk.drop_file(file)
    }

    /// Truncate a file to zero pages (dropping its buffers).
    pub fn truncate(&mut self, file: FileId) -> Result<()> {
        if let Some(pool) = self.pools.get_mut(&file) {
            pool.frames.clear();
        }
        self.disk.truncate(file)
    }

    /// Number of pages in `file`.
    pub fn page_count(&self, file: FileId) -> Result<u32> {
        self.disk.page_count(file)
    }

    fn write_back(&mut self, file: FileId, frame: Frame) -> Result<()> {
        if frame.dirty {
            self.disk.write_page(file, frame.page_no, &frame.page)?;
            self.stats.record_write(file);
        }
        Ok(())
    }

    /// Position the frame for (`file`, `page_no`) at the MRU slot, fetching
    /// from disk on a miss. Returns the pool index (always 0 after this).
    fn fault_in(&mut self, file: FileId, page_no: u32) -> Result<()> {
        let pool =
            self.pools.entry(file).or_insert_with(|| FilePool {
                cap: 1,
                frames: Vec::new(),
            });
        if let Some(pos) =
            pool.frames.iter().position(|f| f.page_no == page_no)
        {
            // Hit: move to MRU position.
            let frame = pool.frames.remove(pos);
            pool.frames.insert(0, frame);
            return Ok(());
        }
        // Miss: evict if full, then fetch.
        let evicted = if pool.frames.len() >= pool.cap {
            pool.frames.pop()
        } else {
            None
        };
        if let Some(frame) = evicted {
            self.write_back(file, frame)?;
        }
        let page = self.disk.read_page(file, page_no)?;
        self.stats.record_read(file);
        let pool = self.pools.get_mut(&file).expect("present");
        pool.frames.insert(0, Frame { page_no, page, dirty: false });
        Ok(())
    }

    /// Read access to a page through the buffer.
    pub fn read<R>(
        &mut self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        self.fault_in(file, page_no)?;
        let frame = &self.pools.get(&file).expect("present").frames[0];
        Ok(f(&frame.page))
    }

    /// Write access to a page through the buffer; marks the frame dirty.
    pub fn write<R>(
        &mut self,
        file: FileId,
        page_no: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        self.fault_in(file, page_no)?;
        let frame =
            &mut self.pools.get_mut(&file).expect("present").frames[0];
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Append a fresh page of the given kind to `file`, placing it in the
    /// buffer dirty. The write is counted once, when the frame is evicted
    /// or flushed — so bulk-loading a page counts one output page, exactly
    /// as the paper's output-cost accounting expects.
    pub fn append_page(&mut self, file: FileId, kind: PageKind) -> Result<u32> {
        let page = Page::new(kind);
        let page_no = self.disk.append_page(file, &page)?;
        // Install as the MRU frame, dirty, evicting as needed.
        let pool = self.pools.entry(file).or_insert_with(|| FilePool {
            cap: 1,
            frames: Vec::new(),
        });
        let evicted = if pool.frames.len() >= pool.cap {
            pool.frames.pop()
        } else {
            None
        };
        if let Some(frame) = evicted {
            self.write_back(file, frame)?;
        }
        let pool = self.pools.get_mut(&file).expect("present");
        pool.frames.insert(0, Frame { page_no, page, dirty: true });
        Ok(page_no)
    }

    /// Write all dirty frames of `file` back to disk.
    pub fn flush_file(&mut self, file: FileId) -> Result<()> {
        if let Some(pool) = self.pools.get_mut(&file) {
            let mut dirty = Vec::new();
            for frame in pool.frames.iter_mut() {
                if frame.dirty {
                    frame.dirty = false;
                    dirty.push((frame.page_no, frame.page.clone()));
                }
            }
            for (page_no, page) in dirty {
                self.disk.write_page(file, page_no, &page)?;
                self.stats.record_write(file);
            }
        }
        Ok(())
    }

    /// Write all dirty frames of all files back to disk.
    pub fn flush_all(&mut self) -> Result<()> {
        let files: Vec<FileId> = self.pools.keys().copied().collect();
        for f in files {
            self.flush_file(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_page_file(pager: &mut Pager) -> FileId {
        let f = pager.create_file().unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        pager.append_page(f, PageKind::Data).unwrap();
        pager.flush_file(f).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        f
    }

    #[test]
    fn repeated_access_to_resident_page_is_free() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        for _ in 0..10 {
            pager.read(f, 0, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 1);
    }

    #[test]
    fn single_frame_alternation_thrashes() {
        // With 1 buffer per file, alternating between two pages costs one
        // read per access — the degradation the paper's setup makes visible.
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 10);
    }

    #[test]
    fn two_frames_stop_the_thrash() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        pager.set_buffer_frames(f, 2).unwrap();
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(f, 1, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 2);
    }

    #[test]
    fn files_have_independent_buffers() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        let g = two_page_file(&mut pager);
        pager.reset_stats();
        for _ in 0..5 {
            pager.read(f, 0, |_| ()).unwrap();
            pager.read(g, 0, |_| ()).unwrap();
        }
        assert_eq!(pager.stats().of(f).reads, 1);
        assert_eq!(pager.stats().of(g).reads, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_once() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        pager.write(f, 0, |p| p.push_row(4, &[1, 2, 3, 4]).unwrap()).unwrap();
        // Evict page 0 by touching page 1.
        pager.read(f, 1, |_| ()).unwrap();
        assert_eq!(pager.stats().of(f).writes, 1);
        // The mutation survived the round trip.
        pager
            .read(f, 0, |p| assert_eq!(p.row(4, 0).unwrap(), &[1, 2, 3, 4]))
            .unwrap();
    }

    #[test]
    fn appended_page_counts_one_write_when_flushed() {
        let mut pager = Pager::in_memory();
        let f = pager.create_file().unwrap();
        pager.reset_stats();
        let p = pager.append_page(f, PageKind::Data).unwrap();
        pager.write(f, p, |pg| pg.push_row(4, &[0; 4]).unwrap()).unwrap();
        pager.write(f, p, |pg| pg.push_row(4, &[1; 4]).unwrap()).unwrap();
        pager.flush_file(f).unwrap();
        assert_eq!(pager.stats().of(f).writes, 1);
        assert_eq!(pager.stats().of(f).reads, 0);
    }

    #[test]
    fn truncate_clears_buffers_and_pages() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        pager.read(f, 1, |_| ()).unwrap();
        pager.truncate(f).unwrap();
        assert_eq!(pager.page_count(f).unwrap(), 0);
        assert!(pager.read(f, 0, |_| ()).is_err());
    }

    #[test]
    fn invalidate_buffers_forces_cold_reads() {
        let mut pager = Pager::in_memory();
        let f = two_page_file(&mut pager);
        pager.read(f, 0, |_| ()).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        pager.read(f, 0, |_| ()).unwrap();
        assert_eq!(pager.stats().of(f).reads, 1);
    }
}
