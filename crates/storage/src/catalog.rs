//! The catalog of stored relations.
//!
//! The prototype keeps its system relations outside the benchmark's
//! accounting ("disk accesses to system relations ... are outside the scope
//! of this paper"), so the catalog here is a plain in-memory registry —
//! functionally the system relation, without charging page I/O for it.

use crate::hash::HashFile;
use crate::heap::HeapFile;
use crate::isam::IsamFile;
use crate::key::{HashFn, KeySpec};
use crate::pager::Pager;
use crate::relfile::{AccessMethod, RelFile};
use crate::secondary::{IndexStructure, SecondaryIndex};
use crate::tuple::TupleId;
use std::collections::HashMap;
use tdbms_kernel::{Error, Result, RowCodec, Schema};

/// Stable handle to a cataloged relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelId(pub usize);

/// A registered secondary index on one attribute of a relation.
#[derive(Debug, Clone)]
pub struct NamedIndex {
    /// The index's name (global namespace, like Ingres index relations).
    pub name: String,
    /// The indexed stored-attribute position.
    pub attr: usize,
    /// The index structure itself.
    pub index: SecondaryIndex,
}

/// Everything the system knows about one stored relation.
///
/// `Clone` copies only the metadata (schema, codec, file descriptors,
/// index descriptors) — never page data — so a cloned [`Catalog`] is a
/// cheap, self-contained snapshot of "what relations exist and where".
#[derive(Debug, Clone)]
pub struct StoredRelation {
    /// Relation name (lower-cased).
    pub name: String,
    /// The schema, including implicit time attributes.
    pub schema: Schema,
    /// Row encoder/decoder for the schema.
    pub codec: RowCodec,
    /// The storage file and its organization.
    pub file: RelFile,
    /// Which attribute the file is keyed on (`None` for heaps).
    pub key_attr: Option<usize>,
    /// Fill factor the file was last built with (percent).
    pub fillfactor: u8,
    /// Stored row count (all versions, not just current ones).
    pub tuple_count: u64,
    /// True for temporaries created during query processing.
    pub temporary: bool,
    /// Secondary indexes maintained on this relation.
    pub indexes: Vec<NamedIndex>,
    /// The clustered history sidecar holding cold versions migrated out
    /// of the primary file by online reorganization (`None` until the
    /// first migration). Behind an `Arc` so a cloned catalog snapshot
    /// shares the copy-on-write directory instead of deep-copying it.
    pub history: Option<std::sync::Arc<crate::history::ClusteredHistory>>,
}

impl StoredRelation {
    /// Insert a row, maintaining every secondary index and the stored
    /// tuple count. All user-relation inserts go through here.
    pub fn insert_row(
        &mut self,
        pager: &Pager,
        row: &[u8],
    ) -> Result<TupleId> {
        let tid = self.file.insert(pager, row)?;
        for ix in &mut self.indexes {
            ix.index.insert_entry(pager, row, tid)?;
        }
        self.tuple_count += 1;
        Ok(tid)
    }

    /// Create and register a secondary index over the current contents.
    pub fn create_index(
        &mut self,
        pager: &Pager,
        name: &str,
        attr: usize,
        structure: IndexStructure,
    ) -> Result<()> {
        let name = name.to_ascii_lowercase();
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(Error::DuplicateRelation(name));
        }
        let key = crate::key::KeySpec::for_attr(&self.codec, attr);
        let index = SecondaryIndex::build(
            pager,
            &self.file,
            key,
            structure,
            100,
            |_| true,
        )?;
        self.indexes.push(NamedIndex { name, attr, index });
        Ok(())
    }

    /// Drop the named index; true if it existed.
    pub fn drop_index(
        &mut self,
        pager: &Pager,
        name: &str,
    ) -> Result<bool> {
        let name = name.to_ascii_lowercase();
        if let Some(pos) =
            self.indexes.iter().position(|ix| ix.name == name)
        {
            let ix = self.indexes.remove(pos);
            pager.drop_file(ix.index.file_id())?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Rebuild every index from scratch (after `modify` reorganizes the
    /// base file and invalidates all tuple addresses, or after a physical
    /// delete compacted a page).
    pub fn rebuild_indexes(&mut self, pager: &Pager) -> Result<()> {
        for ix in &mut self.indexes {
            let key = crate::key::KeySpec::for_attr(&self.codec, ix.attr);
            let structure = ix.index.structure();
            pager.truncate(ix.index.file_id())?;
            ix.index = SecondaryIndex::build_into(
                pager,
                ix.index.file_id(),
                &self.file,
                key,
                structure,
                100,
                |_| true,
            )?;
        }
        Ok(())
    }

    /// The index covering `attr`, if any.
    pub fn index_on(&self, attr: usize) -> Option<&NamedIndex> {
        self.indexes.iter().find(|ix| ix.attr == attr)
    }

    /// Reorganize the relation: collect every stored row, build the
    /// requested organization in a *fresh* file, swap the relation onto
    /// it, and drop the old file. This is the `modify` statement.
    ///
    /// Building aside and swapping (rather than truncating and rebuilding
    /// in place) closes a crash window: the original pages are intact on
    /// disk until the fully-built replacement takes over, so a crash at
    /// any point leaves a readable relation. Under WAL staging the swap
    /// is logged — the old file's physical drop is deferred until the
    /// commit that records the new file is durable. Reorganization I/O is
    /// charged like any other access (the benchmark resets counters
    /// afterwards).
    pub fn modify(
        &mut self,
        pager: &Pager,
        method: AccessMethod,
        key_attr: Option<usize>,
        fillfactor: u8,
        hashfn: HashFn,
    ) -> Result<()> {
        let mut rows = Vec::with_capacity(self.tuple_count as usize);
        let mut cur = self.file.scan();
        while let Some((_, row)) = cur.next(pager, &self.file)? {
            rows.push(row);
        }
        let old_id = self.file.file_id();
        let new_id = pager.create_file()?;
        let width = self.schema.row_width();
        self.file = match method {
            AccessMethod::Heap => {
                let heap = HeapFile::attach(new_id, width);
                for row in &rows {
                    heap.insert(pager, row)?;
                }
                pager.flush_file(new_id)?;
                RelFile::Heap(heap)
            }
            AccessMethod::Hash => {
                let attr = key_attr.ok_or_else(|| {
                    Error::Semantic("modify to hash needs a key".into())
                })?;
                let key = KeySpec::for_attr(&self.codec, attr);
                RelFile::Hash(HashFile::build_into(
                    pager, new_id, &rows, width, key, hashfn, fillfactor,
                )?)
            }
            AccessMethod::Isam => {
                let attr = key_attr.ok_or_else(|| {
                    Error::Semantic("modify to isam needs a key".into())
                })?;
                let key = KeySpec::for_attr(&self.codec, attr);
                RelFile::Isam(IsamFile::build_into(
                    pager, new_id, &rows, width, key, fillfactor,
                )?)
            }
        };
        pager.drop_file(old_id)?;
        self.key_attr = match method {
            AccessMethod::Heap => None,
            _ => key_attr,
        };
        self.fillfactor = fillfactor;
        self.rebuild_indexes(pager)
    }

    /// Rebuild the primary file around an explicit surviving row set,
    /// keeping the current organization, key, and fill factor. This is
    /// the online reorganizer's half of a migration: the cold versions
    /// have already been appended to the history sidecar, and the
    /// survivors move into a fresh file that replaces the old one (the
    /// same build-aside-and-swap crash discipline as
    /// [`StoredRelation::modify`]).
    pub fn rebuild_with_rows(
        &mut self,
        pager: &Pager,
        rows: &[Vec<u8>],
    ) -> Result<()> {
        let old_id = self.file.file_id();
        let hashfn = match &self.file {
            RelFile::Hash(h) => h.hashfn,
            _ => HashFn::Mod,
        };
        let new_id = pager.create_file()?;
        let width = self.schema.row_width();
        self.file = match (self.file.method(), self.key_attr) {
            (AccessMethod::Heap, _) | (_, None) => {
                let heap = HeapFile::attach(new_id, width);
                for row in rows {
                    heap.insert(pager, row)?;
                }
                pager.flush_file(new_id)?;
                RelFile::Heap(heap)
            }
            (AccessMethod::Hash, Some(attr)) => {
                let key = KeySpec::for_attr(&self.codec, attr);
                RelFile::Hash(HashFile::build_into(
                    pager,
                    new_id,
                    rows,
                    width,
                    key,
                    hashfn,
                    self.fillfactor,
                )?)
            }
            (AccessMethod::Isam, Some(attr)) => {
                let key = KeySpec::for_attr(&self.codec, attr);
                RelFile::Isam(IsamFile::build_into(
                    pager,
                    new_id,
                    rows,
                    width,
                    key,
                    self.fillfactor,
                )?)
            }
        };
        pager.drop_file(old_id)?;
        self.tuple_count = rows.len() as u64;
        self.rebuild_indexes(pager)
    }
}

/// Registry mapping names to stored relations.
///
/// Relations live in a slab so that two of them can be borrowed mutably at
/// once (a join reads one relation while materializing into another).
/// `Clone` yields a metadata snapshot usable for lock-free reads: the
/// clone resolves names and file locations exactly as the original did
/// at clone time, while the page store itself stays shared.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    rels: Vec<Option<StoredRelation>>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a relation as a heap and register it.
    pub fn create_relation(
        &mut self,
        pager: &Pager,
        name: &str,
        schema: Schema,
    ) -> Result<RelId> {
        self.create_relation_inner(pager, name, schema, false)
    }

    /// Create an unnamed temporary relation (heap). Temporaries are
    /// registered under an invented unique name.
    pub fn create_temporary(
        &mut self,
        pager: &Pager,
        schema: Schema,
    ) -> Result<RelId> {
        let name = format!("_temp_{}", self.rels.len());
        self.create_relation_inner(pager, &name, schema, true)
    }

    fn create_relation_inner(
        &mut self,
        pager: &Pager,
        name: &str,
        schema: Schema,
        temporary: bool,
    ) -> Result<RelId> {
        let lower = name.to_ascii_lowercase();
        if self.by_name.contains_key(&lower)
            || self.index_owner(&lower).is_some()
        {
            return Err(Error::DuplicateRelation(lower));
        }
        let max_row = crate::page::PAGE_SIZE - crate::page::PAGE_HEADER;
        if schema.row_width() > max_row {
            return Err(Error::Semantic(format!(
                "row width {} exceeds the page capacity of {max_row} bytes \
                 (including {} bytes of implicit time attributes)",
                schema.row_width(),
                4 * schema.implicit_attrs().len(),
            )));
        }
        let codec = RowCodec::new(&schema);
        let heap = HeapFile::create(pager, schema.row_width())?;
        let rel = StoredRelation {
            name: lower.clone(),
            schema,
            codec,
            file: RelFile::Heap(heap),
            key_attr: None,
            fillfactor: 100,
            tuple_count: 0,
            temporary,
            indexes: Vec::new(),
            history: None,
        };
        let idx = self.rels.len();
        self.rels.push(Some(rel));
        self.by_name.insert(lower, idx);
        Ok(RelId(idx))
    }

    /// Drop a relation, its file, and its indexes.
    pub fn destroy(&mut self, pager: &Pager, id: RelId) -> Result<()> {
        let rel =
            self.rels.get_mut(id.0).and_then(Option::take).ok_or_else(
                || Error::Internal(format!("stale RelId {id:?}")),
            )?;
        self.by_name.remove(&rel.name);
        for ix in &rel.indexes {
            pager.drop_file(ix.index.file_id())?;
        }
        if let Some(h) = &rel.history {
            pager.drop_file(h.file_id())?;
        }
        pager.drop_file(rel.file.file_id())
    }

    /// Register an externally constructed relation (catalog reload).
    pub fn adopt(&mut self, rel: StoredRelation) -> Result<RelId> {
        if self.by_name.contains_key(&rel.name)
            || self.index_owner(&rel.name).is_some()
        {
            return Err(Error::DuplicateRelation(rel.name));
        }
        let idx = self.rels.len();
        self.by_name.insert(rel.name.clone(), idx);
        self.rels.push(Some(rel));
        Ok(RelId(idx))
    }

    /// Find the relation owning an index of this name, if any.
    pub fn index_owner(&self, index_name: &str) -> Option<RelId> {
        let lower = index_name.to_ascii_lowercase();
        self.iter()
            .find(|(_, r)| r.indexes.iter().any(|ix| ix.name == lower))
            .map(|(id, _)| id)
    }

    /// Handle for a name, if registered.
    pub fn id_of(&self, name: &str) -> Option<RelId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|i| RelId(*i))
    }

    /// Resolve a name or error with [`Error::NoSuchRelation`].
    pub fn require(&self, name: &str) -> Result<RelId> {
        self.id_of(name)
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Borrow a relation.
    pub fn get(&self, id: RelId) -> &StoredRelation {
        self.rels[id.0].as_ref().expect("live RelId")
    }

    /// Mutably borrow a relation.
    pub fn get_mut(&mut self, id: RelId) -> &mut StoredRelation {
        self.rels[id.0].as_mut().expect("live RelId")
    }

    /// Mutably borrow two distinct relations at once.
    pub fn get_pair_mut(
        &mut self,
        a: RelId,
        b: RelId,
    ) -> (&mut StoredRelation, &mut StoredRelation) {
        assert_ne!(a.0, b.0, "get_pair_mut needs distinct relations");
        let (lo, hi, swap) = if a.0 < b.0 {
            (a.0, b.0, false)
        } else {
            (b.0, a.0, true)
        };
        let (left, right) = self.rels.split_at_mut(hi);
        let x = left[lo].as_mut().expect("live RelId");
        let y = right[0].as_mut().expect("live RelId");
        if swap {
            (y, x)
        } else {
            (x, y)
        }
    }

    /// Iterate over live `(id, relation)` pairs.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (RelId, &StoredRelation)> + '_ {
        self.rels
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (RelId(i), r)))
    }

    /// Names of non-temporary relations, sorted.
    pub fn user_relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .iter()
            .filter(|(_, r)| !r.temporary)
            .map(|(_, r)| r.name.clone())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{
        AttrDef, DatabaseClass, Domain, TemporalKind, Value,
    };

    fn schema() -> Schema {
        Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("pad", Domain::Char(104)),
            ],
            DatabaseClass::Static,
            TemporalKind::Interval,
        )
        .unwrap()
    }

    #[test]
    fn create_lookup_destroy() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "Emp", schema()).unwrap();
        assert_eq!(cat.id_of("emp"), Some(id));
        assert_eq!(cat.id_of("EMP"), Some(id));
        assert!(cat.id_of("dept").is_none());
        assert!(cat.require("dept").is_err());
        assert!(matches!(
            cat.create_relation(&pager, "EMP", schema()),
            Err(Error::DuplicateRelation(_))
        ));
        cat.destroy(&pager, id).unwrap();
        assert!(cat.id_of("emp").is_none());
    }

    #[test]
    fn modify_reorganizes_and_preserves_rows() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "r", schema()).unwrap();
        {
            let rel = cat.get_mut(id);
            for i in 1..=100i64 {
                let row = rel
                    .codec
                    .encode(&[Value::Int(i), Value::Str("x".into())])
                    .unwrap();
                rel.file.insert(&pager, &row).unwrap();
                rel.tuple_count += 1;
            }
        }
        for (method, key) in [
            (AccessMethod::Hash, Some(0)),
            (AccessMethod::Isam, Some(0)),
            (AccessMethod::Heap, None),
        ] {
            let rel = cat.get_mut(id);
            rel.modify(&pager, method, key, 100, HashFn::Mod).unwrap();
            assert_eq!(rel.file.method(), method);
            assert_eq!(rel.key_attr, key);
            let mut n = 0;
            let mut sum = 0i64;
            let mut cur = rel.file.scan();
            while let Some((_, row)) = cur.next(&pager, &rel.file).unwrap()
            {
                n += 1;
                sum += rel.codec.get_i4(&row, 0) as i64;
            }
            assert_eq!(n, 100, "after modify to {method:?}");
            assert_eq!(sum, 5050);
        }
    }

    #[test]
    fn modify_builds_aside_and_drops_the_old_file() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "r", schema()).unwrap();
        let rel = cat.get_mut(id);
        let row = rel
            .codec
            .encode(&[Value::Int(1), Value::Str("x".into())])
            .unwrap();
        rel.file.insert(&pager, &row).unwrap();
        rel.tuple_count += 1;
        let old = rel.file.file_id();
        rel.modify(&pager, AccessMethod::Hash, Some(0), 100, HashFn::Mod)
            .unwrap();
        let new = rel.file.file_id();
        assert_ne!(old, new, "reorganization swaps onto a fresh file");
        assert!(
            pager.page_count(old).is_err(),
            "the superseded file is dropped"
        );
    }

    #[test]
    fn modify_to_keyed_without_key_errors() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "r", schema()).unwrap();
        let rel = cat.get_mut(id);
        assert!(rel
            .modify(&pager, AccessMethod::Hash, None, 100, HashFn::Mod)
            .is_err());
    }

    #[test]
    fn pair_borrow_is_order_correct() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let a = cat.create_relation(&pager, "a", schema()).unwrap();
        let b = cat.create_relation(&pager, "b", schema()).unwrap();
        let (ra, rb) = cat.get_pair_mut(a, b);
        assert_eq!(ra.name, "a");
        assert_eq!(rb.name, "b");
        let (rb, ra) = cat.get_pair_mut(b, a);
        assert_eq!(ra.name, "a");
        assert_eq!(rb.name, "b");
    }

    #[test]
    fn temporaries_are_hidden_from_user_listing() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        cat.create_relation(&pager, "z", schema()).unwrap();
        cat.create_relation(&pager, "a", schema()).unwrap();
        cat.create_temporary(&pager, schema()).unwrap();
        assert_eq!(cat.user_relation_names(), vec!["a", "z"]);
    }
}
