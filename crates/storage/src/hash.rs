//! Static hash files.
//!
//! `modify R to hash on k where fillfactor = F` builds one: the number of
//! primary pages (buckets) is fixed at build time from the tuple count and
//! fill factor; rows hash to a bucket and live on its primary page or on
//! the overflow pages chained behind it. Because all versions of a tuple
//! share the same key, every update lengthens its bucket's chain — the
//! degradation mechanism at the center of the paper's analysis. Keyed
//! access reads the whole chain (the prototype cannot stop early: versions
//! are unordered); a full scan reads every page once.

use crate::bloom::Bloom;
use crate::disk::FileId;
use crate::key::{HashFn, KeySpec};
use crate::page::{page_capacity, PageKind, NO_PAGE};
use crate::pager::Pager;
use crate::tuple::TupleId;
use std::cmp::Ordering;
use tdbms_kernel::{Error, Result};

/// A static hash file of fixed-width rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFile {
    /// The underlying storage file.
    pub file: FileId,
    /// Fixed row width in bytes.
    pub row_width: usize,
    /// Number of primary (bucket) pages — pages `0..nbuckets`.
    pub nbuckets: u32,
    /// Where the key lives in a row.
    pub key: KeySpec,
    /// The bucket function.
    pub hashfn: HashFn,
}

/// Rows a primary page receives at build time for fill factor `ff` (in
/// percent): `floor(capacity * ff / 100)`, at least 1.
pub fn rows_per_page_at_fill(row_width: usize, fillfactor: u8) -> usize {
    (page_capacity(row_width) * fillfactor.clamp(1, 100) as usize / 100)
        .max(1)
}

impl HashFile {
    /// Build a hash file over a fresh storage file from `rows`.
    ///
    /// The bucket count is `ceil(n / rows_per_page_at_fill)` so that a
    /// uniform distribution fills each primary page to the fill factor.
    /// Buckets that receive more rows than a page holds spill to overflow
    /// pages immediately (this happens with [`HashFn::Multiplicative`] —
    /// the collision overhead the paper observed).
    pub fn build(
        pager: &Pager,
        rows: &[Vec<u8>],
        row_width: usize,
        key: KeySpec,
        hashfn: HashFn,
        fillfactor: u8,
    ) -> Result<HashFile> {
        let file = pager.create_file()?;
        Self::build_into(
            pager, file, rows, row_width, key, hashfn, fillfactor,
        )
    }

    /// Build into an existing (truncated) file — used by `modify`, which
    /// reorganizes a relation in place.
    pub fn build_into(
        pager: &Pager,
        file: FileId,
        rows: &[Vec<u8>],
        row_width: usize,
        key: KeySpec,
        hashfn: HashFn,
        fillfactor: u8,
    ) -> Result<HashFile> {
        if pager.page_count(file)? != 0 {
            return Err(Error::Internal(
                "hash build requires an empty file".into(),
            ));
        }
        let per_page = rows_per_page_at_fill(row_width, fillfactor);
        let nbuckets = rows.len().div_ceil(per_page).max(1) as u32;

        // Group rows by bucket.
        let mut buckets: Vec<Vec<&[u8]>> =
            vec![Vec::new(); nbuckets as usize];
        for row in rows {
            if row.len() != row_width {
                return Err(Error::RowSize {
                    expected: row_width,
                    got: row.len(),
                });
            }
            let b = hashfn.bucket(key.kind, key.extract(row), nbuckets);
            buckets[b as usize].push(row);
        }

        // Primary pages first (page number == bucket number), filled to
        // physical capacity; spill is chained afterwards.
        let cap = page_capacity(row_width);
        for _ in 0..nbuckets {
            pager.append_page(file, PageKind::Data)?;
        }
        let mut spill: Vec<(u32, Vec<&[u8]>)> = Vec::new();
        for (b, bucket_rows) in buckets.iter().enumerate() {
            let (fit, rest) =
                bucket_rows.split_at(bucket_rows.len().min(cap));
            for row in fit {
                pager.write(file, b as u32, |p| {
                    p.push_row(row_width, row)
                })??;
            }
            if !rest.is_empty() {
                spill.push((b as u32, rest.to_vec()));
            }
        }
        // A rebuild resets every chain, so the chain guard is rebuilt
        // with it: only the keys that spill right now are in the filter.
        let bloom = Bloom::sized_for(rows.len().max(16), u64::from(file.0));
        for (bucket, rest) in spill {
            let mut tail = bucket;
            for chunk in rest.chunks(cap) {
                let of = pager.append_page(file, PageKind::Overflow)?;
                pager.write(file, tail, |p| p.set_overflow(of))?;
                for row in chunk {
                    pager.write(file, of, |p| {
                        p.push_row(row_width, row)
                    })??;
                    bloom.add(key.extract(row));
                }
                tail = of;
            }
        }
        pager.bloom_install(file, bloom);
        pager.flush_file(file)?;
        Ok(HashFile {
            file,
            row_width,
            nbuckets,
            key,
            hashfn,
        })
    }

    /// The bucket (primary page) a key belongs to.
    pub fn bucket_of(&self, key_bytes: &[u8]) -> u32 {
        self.hashfn.bucket(self.key.kind, key_bytes, self.nbuckets)
    }

    /// Insert a row: walk its bucket's chain and place it in the first page
    /// with room, appending a new overflow page if the chain is full.
    pub fn insert(&self, pager: &Pager, row: &[u8]) -> Result<TupleId> {
        if row.len() != self.row_width {
            return Err(Error::RowSize {
                expected: self.row_width,
                got: row.len(),
            });
        }
        let primary = self.bucket_of(self.key.extract(row));
        let mut page_no = primary;
        loop {
            let w = self.row_width;
            let (slot, next) = pager.write(self.file, page_no, |p| {
                if p.has_room(w) {
                    (Some(p.push_row(w, row)), NO_PAGE)
                } else {
                    (None, p.overflow())
                }
            })?;
            if let Some(slot) = slot {
                if page_no != primary {
                    pager.bloom_note_overflow(
                        self.file,
                        self.key.extract(row),
                    );
                }
                return Ok(TupleId::new(page_no, slot?));
            }
            if next == NO_PAGE {
                let of =
                    pager.append_page(self.file, PageKind::Overflow)?;
                // Appending evicted `page_no` from the 1-frame buffer; the
                // link-up below faults it back in, which is faithful: the
                // prototype also re-touches the chain tail to link a new
                // overflow page.
                pager.write(self.file, page_no, |p| p.set_overflow(of))?;
                let slot = pager.write(self.file, of, |p| {
                    p.push_row(self.row_width, row)
                })??;
                pager.bloom_note_overflow(self.file, self.key.extract(row));
                return Ok(TupleId::new(of, slot));
            }
            page_no = next;
        }
    }

    /// Read the row at `tid`.
    pub fn get(&self, pager: &Pager, tid: TupleId) -> Result<Vec<u8>> {
        pager.read(self.file, tid.page, |p| {
            p.row(self.row_width, tid.slot).map(|r| r.to_vec())
        })?
    }

    /// Overwrite the row at `tid` in place (logical deletion stamps a stop
    /// time this way).
    pub fn update(
        &self,
        pager: &Pager,
        tid: TupleId,
        row: &[u8],
    ) -> Result<()> {
        pager.write(self.file, tid.page, |p| {
            p.write_row(self.row_width, tid.slot, row)
        })?
    }

    /// Begin a keyed lookup: yields every row in the key's bucket chain
    /// whose key equals `key_bytes` (all versions — the caller applies any
    /// version predicate).
    pub fn lookup(&self, key_bytes: &[u8]) -> HashLookup {
        HashLookup {
            key: key_bytes.to_vec(),
            page: self.bucket_of(key_bytes),
            slot: 0,
            done: false,
        }
    }

    /// Begin a full scan (bucket 0's chain, then bucket 1's, ...).
    pub fn scan(&self) -> HashScan {
        HashScan {
            bucket: 0,
            page: 0,
            slot: 0,
        }
    }

    /// Total pages (primary + overflow).
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file)
    }
}

/// Cursor over the matching rows of one bucket chain.
#[derive(Debug, Clone)]
pub struct HashLookup {
    key: Vec<u8>,
    page: u32,
    slot: u16,
    done: bool,
}

impl HashLookup {
    /// Advance to the next version with the sought key.
    pub fn next(
        &mut self,
        pager: &Pager,
        hash: &HashFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        while !self.done {
            let page_no = self.page;
            let start = self.slot;
            let key = &self.key;
            // Scan the resident page from `start`; report either a hit
            // (slot + row) or the chain's next page.
            let step = pager.read(hash.file, page_no, |p| {
                let mut s = start;
                while (s as usize) < p.count() {
                    let row = p.row(hash.row_width, s)?;
                    if hash.key.compare(hash.key.extract(row), key)
                        == Ordering::Equal
                    {
                        return Ok::<_, Error>(Err((s, row.to_vec())));
                    }
                    s += 1;
                }
                Ok(Ok(p.overflow()))
            })??;
            match step {
                Err((slot, row)) => {
                    self.slot = slot + 1;
                    return Ok(Some((TupleId::new(page_no, slot), row)));
                }
                Ok(next) => {
                    self.slot = 0;
                    if next == NO_PAGE {
                        self.done = true;
                    } else if page_no == hash.bucket_of(&self.key)
                        && pager.bloom_check(hash.file, &self.key)
                            == Some(false)
                    {
                        // Leaving the primary page: the chain guard says
                        // no version of this key ever spilled, so the
                        // whole overflow walk would find nothing.
                        self.done = true;
                    } else {
                        self.page = next;
                    }
                }
            }
        }
        Ok(None)
    }
}

/// Cursor over every row of the file, bucket chain by bucket chain.
#[derive(Debug, Clone)]
pub struct HashScan {
    bucket: u32,
    page: u32,
    slot: u16,
}

impl HashScan {
    /// Advance; `None` once every chain is exhausted.
    pub fn next(
        &mut self,
        pager: &Pager,
        hash: &HashFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        while self.bucket < hash.nbuckets {
            let got = pager.read(hash.file, self.page, |p| {
                if (self.slot as usize) < p.count() {
                    Some(
                        p.row(hash.row_width, self.slot)
                            .map(|r| r.to_vec()),
                    )
                } else {
                    self.slot = 0;
                    let next = p.overflow();
                    if next == NO_PAGE {
                        self.bucket += 1;
                        self.page = self.bucket;
                    } else {
                        self.page = next;
                    }
                    None
                }
            })?;
            if let Some(row) = got {
                let tid = TupleId::new(self.page, self.slot);
                self.slot += 1;
                return Ok(Some((tid, row?)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{AttrDef, Domain, RowCodec, Schema, Value};

    fn make_rows(n: i32) -> (RowCodec, Vec<Vec<u8>>) {
        let s = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("pad", Domain::Char(104)),
        ])
        .unwrap();
        let codec = RowCodec::new(&s);
        let rows = (1..=n)
            .map(|i| {
                codec
                    .encode(&[Value::Int(i as i64), Value::Str("x".into())])
                    .unwrap()
            })
            .collect();
        (codec, rows)
    }

    fn key_of(codec: &RowCodec) -> KeySpec {
        KeySpec::for_attr(codec, 0)
    }

    #[test]
    fn build_produces_paper_bucket_counts() {
        // 1024 rows of width 108 → 9/page; at 100 % fill: ceil(1024/9) = 114
        // buckets; mod hash on sequential ids ⇒ no overflow at load.
        let (codec, rows) = make_rows(1024);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        assert_eq!(h.nbuckets, 114);
        assert_eq!(h.total_pages(&pager).unwrap(), 114);

        // At 50 % fill: ceil(1024/4) = 256 buckets.
        let h50 = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            50,
        )
        .unwrap();
        assert_eq!(h50.nbuckets, 256);
        assert_eq!(h50.total_pages(&pager).unwrap(), 256);
    }

    #[test]
    fn multiplicative_hash_overflows_at_load() {
        // The Ingres-like hash gives Poisson loads, so some buckets spill —
        // total pages exceed the bucket count (the paper's 166 vs 114).
        let (codec, rows) = make_rows(1024);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Multiplicative,
            100,
        )
        .unwrap();
        let total = h.total_pages(&pager).unwrap();
        assert!(total > 114, "expected overflow pages, got {total}");
        assert!(total < 250, "distribution should not be degenerate");
    }

    #[test]
    fn lookup_finds_all_versions_of_a_key() {
        let (codec, rows) = make_rows(64);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        // Insert 20 more versions of id 7.
        let extra = codec
            .encode(&[Value::Int(7), Value::Str("v".into())])
            .unwrap();
        for _ in 0..20 {
            h.insert(&pager, &extra).unwrap();
        }
        let keyb = 7i32.to_le_bytes();
        let mut cur = h.lookup(&keyb);
        let mut n = 0;
        while let Some((_, row)) = cur.next(&pager, &h).unwrap() {
            assert_eq!(codec.get_i4(&row, 0), 7);
            n += 1;
        }
        assert_eq!(n, 21);
        // A different key in the same bucket is not returned.
        let mut cur = h.lookup(&(999_999i32).to_le_bytes());
        assert!(cur.next(&pager, &h).unwrap().is_none());
    }

    #[test]
    fn lookup_cost_is_chain_length() {
        // Reproduces the Q01 pattern: cost = 1 + overflow pages of the
        // bucket, independent of everything else.
        let (codec, rows) = make_rows(72); // 8 buckets of 9 at width 108
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        assert_eq!(h.nbuckets, 8);
        // 9 new versions of id 3 → exactly one new overflow page for its
        // bucket.
        let v = codec
            .encode(&[Value::Int(3), Value::Str("v".into())])
            .unwrap();
        for _ in 0..9 {
            h.insert(&pager, &v).unwrap();
        }
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let keyb = 3i32.to_le_bytes();
        let mut cur = h.lookup(&keyb);
        while cur.next(&pager, &h).unwrap().is_some() {}
        assert_eq!(pager.stats().of(h.file).reads, 2); // primary + 1 overflow

        // An untouched bucket still costs 1.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let keyb = 4i32.to_le_bytes();
        let mut cur = h.lookup(&keyb);
        while cur.next(&pager, &h).unwrap().is_some() {}
        assert_eq!(pager.stats().of(h.file).reads, 1);
    }

    #[test]
    fn bloom_guard_skips_absent_key_chain_walk() {
        let (codec, rows) = make_rows(72); // 8 buckets of 9 at width 108
        let pager = Pager::in_memory();
        pager.set_bloom_guards(true);
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        // Overflow bucket 3 with versions of id 3 only.
        let v = codec
            .encode(&[Value::Int(3), Value::Str("v".into())])
            .unwrap();
        for _ in 0..9 {
            h.insert(&pager, &v).unwrap();
        }
        // id 75 hashes to bucket 3 too but is absent: the guard stops
        // the lookup at the primary page.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let skips_before = pager.stats().bloom_skips();
        let mut cur = h.lookup(&75i32.to_le_bytes());
        assert!(cur.next(&pager, &h).unwrap().is_none());
        assert_eq!(pager.stats().of(h.file).reads, 1);
        assert_eq!(pager.stats().bloom_skips(), skips_before + 1);
        // The spilled key is a filter hit and walks the chain as before.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let hits_before = pager.stats().bloom_hits();
        let mut cur = h.lookup(&3i32.to_le_bytes());
        let mut n = 0;
        while cur.next(&pager, &h).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(pager.stats().of(h.file).reads, 2);
        assert_eq!(pager.stats().bloom_hits(), hits_before + 1);
        // Dropping the guard restores the unguarded walk.
        pager.bloom_drop(h.file);
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut cur = h.lookup(&75i32.to_le_bytes());
        assert!(cur.next(&pager, &h).unwrap().is_none());
        assert_eq!(pager.stats().of(h.file).reads, 2);
    }

    #[test]
    fn scan_visits_every_row_once_at_page_cost() {
        let (codec, rows) = make_rows(100);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            50,
        )
        .unwrap();
        let v = codec
            .encode(&[Value::Int(5), Value::Str("v".into())])
            .unwrap();
        for _ in 0..30 {
            h.insert(&pager, &v).unwrap();
        }
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut seen = 0;
        let mut scan = h.scan();
        while scan.next(&pager, &h).unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 130);
        assert_eq!(
            pager.stats().of(h.file).reads as u32,
            h.total_pages(&pager).unwrap()
        );
    }

    #[test]
    fn update_in_place_preserves_location() {
        let (codec, rows) = make_rows(16);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &rows,
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        let keyb = 5i32.to_le_bytes();
        let mut cur = h.lookup(&keyb);
        let (tid, mut row) = cur.next(&pager, &h).unwrap().unwrap();
        codec
            .put(&mut row, 1, &Value::Str("updated".into()))
            .unwrap();
        h.update(&pager, tid, &row).unwrap();
        assert_eq!(h.get(&pager, tid).unwrap(), row);
    }

    #[test]
    fn empty_build_is_one_empty_bucket() {
        let (codec, _) = make_rows(0);
        let pager = Pager::in_memory();
        let h = HashFile::build(
            &pager,
            &[],
            108,
            key_of(&codec),
            HashFn::Mod,
            100,
        )
        .unwrap();
        assert_eq!(h.nbuckets, 1);
        let mut scan = h.scan();
        assert!(scan.next(&pager, &h).unwrap().is_none());
    }
}
