//! Bloom filters guarding overflow chains.
//!
//! The paper's degradation mechanism is the overflow chain: every update
//! of a key appends a version behind its bucket (hash) or data page
//! (ISAM), and a keyed lookup must walk the whole chain because versions
//! are unordered. At paper scale (1024 tuples, ≤15 updates) that walk is
//! the measurement; at 10⁴–10⁶ versions it is the bottleneck. A [`Bloom`]
//! in front of each chain answers "did any version of key *k* ever land
//! on an overflow page of this file?" — a definite **no** lets the lookup
//! stop at the primary page instead of walking the chain for nothing.
//!
//! The filter is add-only over the file's lifetime (rebuilt wholesale by
//! `modify`/reorganization, which reset the chains anyway), so it can
//! never return a false negative: a key that reached an overflow page is
//! always reported *maybe present* and the chain is walked exactly as
//! before. False positives only cost the walk the engine would have done
//! without the filter. That asymmetry is what keeps the paper's figures
//! byte-identical: every probe of a *present* key is a filter hit, so its
//! page I/O is unchanged; only probes of keys that never spilled are
//! allowed to get cheaper.
//!
//! The bit array is `AtomicU64` words, so concurrent inserts from the
//! engine's writer and the reorganization daemon's rebuilds never need a
//! lock; `Relaxed` ordering suffices because losing *no* set bit is
//! guaranteed by `fetch_or` and readers tolerate stale views (a stale
//! *unset* bit can only occur for a key whose insert has not yet
//! committed, which no reader is allowed to observe anyway).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits per expected key. 10 bits/key with 7 probes gives a false-positive
/// rate under 1 % — cheap insurance against a pointless chain walk.
const BITS_PER_KEY: usize = 10;

/// Number of hash probes per key (≈ `BITS_PER_KEY · ln 2`).
const PROBES: u32 = 7;

/// 64-bit FNV-1a offset basis and prime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, folded with `seed` so two filters over the same
/// key population set different bits.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A concurrent, add-only Bloom filter over key byte strings.
#[derive(Debug)]
pub struct Bloom {
    bits: Vec<AtomicU64>,
    nbits: u64,
    seed: u64,
    /// Keys added (not distinct keys — re-adding is idempotent on the
    /// bits but counted here, so the figure is "overflow placements").
    adds: AtomicU64,
}

impl Bloom {
    /// A filter sized for `expected` distinct keys (at least 64 bits).
    pub fn sized_for(expected: usize, seed: u64) -> Bloom {
        let nbits = (expected * BITS_PER_KEY).max(64) as u64;
        let words = nbits.div_ceil(64) as usize;
        Bloom {
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
            nbits: words as u64 * 64,
            seed,
            adds: AtomicU64::new(0),
        }
    }

    /// The two double-hashing bases for `key`: `h1` picks the first bit,
    /// `h2` (forced odd, so it is coprime with the power-of-two word
    /// span) strides the rest.
    fn bases(&self, key: &[u8]) -> (u64, u64) {
        let h1 = fnv1a(self.seed, key);
        let h2 = fnv1a(self.seed ^ 0x9e37_79b9_7f4a_7c15, key) | 1;
        (h1, h2)
    }

    /// Record that some version of `key` lives on an overflow page.
    pub fn add(&self, key: &[u8]) {
        let (h1, h2) = self.bases(key);
        for i in 0..u64::from(PROBES) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 64) as usize]
                .fetch_or(1 << (bit % 64), Ordering::Relaxed);
        }
        self.adds.fetch_add(1, Ordering::Relaxed);
    }

    /// `false` means **no** version of `key` ever reached an overflow
    /// page (definite); `true` means "maybe" and the chain must be
    /// walked.
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.bases(key);
        for i in 0..u64::from(PROBES) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            if self.bits[(bit / 64) as usize].load(Ordering::Relaxed)
                & (1 << (bit % 64))
                == 0
            {
                return false;
            }
        }
        true
    }

    /// Overflow placements recorded so far.
    pub fn adds(&self) -> u64 {
        self.adds.load(Ordering::Relaxed)
    }

    /// Size of the bit array.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_rejects_everything() {
        let b = Bloom::sized_for(100, 1);
        assert!(!b.maybe_contains(b"anything"));
        assert_eq!(b.adds(), 0);
    }

    #[test]
    fn added_keys_are_always_maybe_present() {
        let b = Bloom::sized_for(1000, 42);
        for i in 0..1000i64 {
            b.add(&i.to_le_bytes());
        }
        for i in 0..1000i64 {
            assert!(
                b.maybe_contains(&i.to_le_bytes()),
                "false negative for {i}"
            );
        }
        assert_eq!(b.adds(), 1000);
    }

    #[test]
    fn minimum_size_is_one_word() {
        let b = Bloom::sized_for(0, 7);
        assert_eq!(b.nbits(), 64);
        b.add(b"k");
        assert!(b.maybe_contains(b"k"));
    }

    #[test]
    fn concurrent_adds_lose_no_keys() {
        let b = std::sync::Arc::new(Bloom::sized_for(4000, 3));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let b = std::sync::Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..1000i64 {
                        b.add(&(t * 1000 + i).to_le_bytes());
                    }
                });
            }
        });
        for i in 0..4000i64 {
            assert!(b.maybe_contains(&i.to_le_bytes()));
        }
        assert_eq!(b.adds(), 4000);
    }
}
