//! Page checksums, kept out-of-band.
//!
//! Every page's FNV-1a 64 checksum lives in a *sidecar* map (persisted as
//! `sums.tdbms` next to the page files), never inside the page itself. An
//! in-page checksum would eat slot space: the 12-byte header plus 9 rows of
//! 108 bytes fills 984 of 1024 bytes, and the paper's space and I/O figures
//! (fig5–fig10) depend on exactly 9/8/8 tuples per page. Out-of-band sums
//! leave the page format — and therefore every golden number — untouched.
//!
//! The FNV-1a 64 function here is the same one the WAL uses to frame log
//! records; `tdbms-wal` re-exports it from this module so both layers are
//! guaranteed to agree on the polynomial.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use tdbms_kernel::{Error, Result};

use crate::disk::FileId;
use crate::page::Page;

/// File name of the persisted checksum sidecar, stored in the same
/// directory as the `f<N>.pages` files and the catalog.
pub const SUMS_FILE: &str = "sums.tdbms";

const MAGIC: &str = "tdbms-sums 1";

/// FNV-1a 64-bit hash (also the WAL's record checksum).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sidecar: per-file maps of page number → FNV-1a 64 checksum of the
/// full 1024-byte page image.
///
/// A page with no recorded sum verifies trivially (adopt-on-first-read):
/// the sidecar may postdate the data files, and an absent entry carries no
/// evidence either way. Only a *recorded* sum that disagrees with the bytes
/// on disk is corruption.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChecksumSet {
    sums: BTreeMap<u32, BTreeMap<u32, u64>>,
}

impl ChecksumSet {
    pub fn new() -> ChecksumSet {
        ChecksumSet::default()
    }

    /// The recorded sum for a page, if any.
    pub fn get(&self, file: FileId, page_no: u32) -> Option<u64> {
        self.sums
            .get(&file.0)
            .and_then(|m| m.get(&page_no))
            .copied()
    }

    /// Record the sum of `page` as the truth for `(file, page_no)`.
    pub fn record(&mut self, file: FileId, page_no: u32, page: &Page) {
        self.sums
            .entry(file.0)
            .or_default()
            .insert(page_no, fnv64(page.as_bytes()));
    }

    /// Check `page` against the recorded sum. Absent entries pass; a
    /// recorded sum that disagrees is [`Error::Corruption`].
    pub fn verify(
        &self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        match self.get(file, page_no) {
            None => Ok(()),
            Some(want) => {
                let got = fnv64(page.as_bytes());
                if got == want {
                    Ok(())
                } else {
                    Err(Error::Corruption {
                        file: Some(file.0),
                        page: Some(page_no),
                        detail: format!(
                            "page checksum mismatch: stored {want:016x}, \
                             computed {got:016x}"
                        ),
                    })
                }
            }
        }
    }

    /// Drop sums for pages at or beyond the new length of `file`.
    pub fn truncate(&mut self, file: FileId, n_pages: u32) {
        if let Some(m) = self.sums.get_mut(&file.0) {
            m.retain(|&p, _| p < n_pages);
        }
    }

    /// Drop every sum recorded for `file`.
    pub fn drop_file(&mut self, file: FileId) {
        self.sums.remove(&file.0);
    }

    /// Total number of recorded page sums.
    pub fn len(&self) -> usize {
        self.sums.values().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render as the line-oriented sidecar text format.
    pub fn encode(&self) -> String {
        let mut out = String::from(MAGIC);
        out.push('\n');
        for (file, pages) in &self.sums {
            if pages.is_empty() {
                continue;
            }
            out.push_str(&format!("file {file}\n"));
            for (page, sum) in pages {
                out.push_str(&format!("page {page} {sum:016x}\n"));
            }
        }
        out
    }

    /// Parse the sidecar text format.
    pub fn decode(text: &str) -> Result<ChecksumSet> {
        let bad = |why: &str| Error::Corruption {
            file: None,
            page: None,
            detail: format!("malformed checksum sidecar: {why}"),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("missing magic"));
        }
        let mut set = ChecksumSet::new();
        let mut cur: Option<u32> = None;
        for line in lines {
            let mut words = line.split_whitespace();
            match words.next() {
                Some("file") => {
                    let id = words
                        .next()
                        .and_then(|w| w.parse::<u32>().ok())
                        .ok_or_else(|| bad("bad file line"))?;
                    cur = Some(id);
                }
                Some("page") => {
                    let file =
                        cur.ok_or_else(|| bad("page before file"))?;
                    let page = words
                        .next()
                        .and_then(|w| w.parse::<u32>().ok())
                        .ok_or_else(|| bad("bad page number"))?;
                    let sum = words
                        .next()
                        .and_then(|w| u64::from_str_radix(w, 16).ok())
                        .ok_or_else(|| bad("bad page sum"))?;
                    set.sums.entry(file).or_default().insert(page, sum);
                }
                None => {}
                Some(other) => {
                    return Err(bad(&format!(
                        "unknown directive {other:?}"
                    )))
                }
            }
        }
        Ok(set)
    }

    /// Write the sidecar to `dir/sums.tdbms` atomically (tmp + fsync +
    /// rename, like the catalog).
    pub fn save(&self, dir: &Path) -> Result<()> {
        let tmp = dir.join(format!("{SUMS_FILE}.tmp"));
        let dst = dir.join(SUMS_FILE);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.encode().as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &dst)?;
        Ok(())
    }

    /// Load `dir/sums.tdbms`; `Ok(None)` when no sidecar exists yet.
    pub fn load(dir: &Path) -> Result<Option<ChecksumSet>> {
        let path = dir.join(SUMS_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(ChecksumSet::decode(&text)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn verify_adopts_unknown_and_rejects_mismatch() {
        let file = FileId(3);
        let mut set = ChecksumSet::new();
        let mut page = Page::new(PageKind::Data);
        page.push_row(4, &[1, 2, 3, 4]).unwrap();
        // Unknown page: passes without a recorded sum.
        set.verify(file, 0, &page).unwrap();
        set.record(file, 0, &page);
        set.verify(file, 0, &page).unwrap();
        // Flip one byte: recorded sum now disagrees.
        let mut raw = Box::new(*page.as_bytes());
        raw[20] ^= 0x40;
        let bad = Page::from_bytes(raw);
        let err = set.verify(file, 0, &bad).unwrap_err();
        assert!(matches!(
            err,
            Error::Corruption {
                file: Some(3),
                page: Some(0),
                ..
            }
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut set = ChecksumSet::new();
        let page = Page::new(PageKind::Overflow);
        set.record(FileId(1), 0, &page);
        set.record(FileId(1), 7, &page);
        set.record(FileId(5), 2, &page);
        let back = ChecksumSet::decode(&set.encode()).unwrap();
        assert_eq!(set, back);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn truncate_and_drop_narrow_the_set() {
        let mut set = ChecksumSet::new();
        let page = Page::new(PageKind::Data);
        for p in 0..4 {
            set.record(FileId(1), p, &page);
        }
        set.record(FileId(2), 0, &page);
        set.truncate(FileId(1), 2);
        assert!(set.get(FileId(1), 1).is_some());
        assert!(set.get(FileId(1), 2).is_none());
        set.drop_file(FileId(2));
        assert!(set.get(FileId(2), 0).is_none());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ChecksumSet::decode("not a sidecar").is_err());
        assert!(ChecksumSet::decode("tdbms-sums 1\npage 0 aa\n").is_err());
        assert!(ChecksumSet::decode("tdbms-sums 1\nfile x\n").is_err());
    }
}
