//! Disk managers: where pages actually live.
//!
//! The benchmark's metric is *page accesses*, not device latency, so the
//! default [`MemDisk`] keeps every file as a vector of page images and the
//! pager counts accesses. [`FileDisk`] stores each relation file as a real
//! file on disk for durable use of the library.

use crate::page::{Page, PAGE_SIZE};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use tdbms_kernel::{Error, Result};

/// Identifies one storage file (one relation, index, or temporary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Abstract page-granularity storage. `Send + Sync` is part of the
/// contract: a disk manager is only ever driven from behind the pager's
/// lock, but the pager itself must be shareable across threads.
pub trait DiskManager: Send + Sync {
    /// Create a new, empty file and return its id.
    fn create_file(&mut self) -> Result<FileId>;
    /// Delete a file and free its pages.
    fn drop_file(&mut self, file: FileId) -> Result<()>;
    /// Number of pages currently in `file`.
    fn page_count(&self, file: FileId) -> Result<u32>;
    /// Read page `page_no` of `file`.
    fn read_page(&mut self, file: FileId, page_no: u32) -> Result<Page>;
    /// Write page `page_no` of `file` (must already exist).
    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()>;
    /// Append a new page at the end of `file`; returns its page number.
    fn append_page(&mut self, file: FileId, page: &Page) -> Result<u32>;
    /// Truncate `file` to zero pages (used by `modify` reorganization).
    fn truncate(&mut self, file: FileId) -> Result<()>;
    /// Force `file`'s pages to stable storage. A real fsync for
    /// [`FileDisk`]; a no-op (beyond existence checking) for [`MemDisk`].
    /// Durability paths call this before any metadata that references the
    /// file is written, so a crash never leaves the catalog pointing at
    /// pages the device has not seen.
    fn sync(&mut self, file: FileId) -> Result<()>;
    /// Every live file id, sorted (checkpoint snapshots and recovery
    /// sweeps iterate the whole disk).
    fn files(&self) -> Vec<FileId>;
}

/// In-memory disk: deterministic, allocation-cheap, and fast enough to run
/// the paper's full update-count sweep in seconds.
#[derive(Default)]
pub struct MemDisk {
    files: HashMap<FileId, Vec<[u8; PAGE_SIZE]>>,
    next_id: u32,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    fn file(&self, file: FileId) -> Result<&Vec<[u8; PAGE_SIZE]>> {
        self.files.get(&file).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })
    }

    fn file_mut(
        &mut self,
        file: FileId,
    ) -> Result<&mut Vec<[u8; PAGE_SIZE]>> {
        self.files.get_mut(&file).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })
    }
}

impl DiskManager for MemDisk {
    fn create_file(&mut self) -> Result<FileId> {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, Vec::new());
        Ok(id)
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.files.remove(&file).map(|_| ()).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        Ok(self.file(file)?.len() as u32)
    }

    fn read_page(&mut self, file: FileId, page_no: u32) -> Result<Page> {
        let pages = self.file(file)?;
        let bytes = pages
            .get(page_no as usize)
            .ok_or(Error::NoSuchPage(page_no))?;
        Ok(Page::from_bytes(Box::new(*bytes)))
    }

    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        let pages = self.file_mut(file)?;
        let slot = pages
            .get_mut(page_no as usize)
            .ok_or(Error::NoSuchPage(page_no))?;
        slot.copy_from_slice(page.as_bytes());
        Ok(())
    }

    fn append_page(&mut self, file: FileId, page: &Page) -> Result<u32> {
        let pages = self.file_mut(file)?;
        pages.push(*page.as_bytes());
        Ok(pages.len() as u32 - 1)
    }

    fn truncate(&mut self, file: FileId) -> Result<()> {
        self.file_mut(file)?.clear();
        Ok(())
    }

    fn sync(&mut self, file: FileId) -> Result<()> {
        self.file(file).map(|_| ())
    }

    fn files(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self.files.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// File-backed disk: each [`FileId`] is `<dir>/f<N>.pages`, a flat array of
/// 1024-byte pages.
pub struct FileDisk {
    dir: PathBuf,
    handles: HashMap<FileId, File>,
    next_id: u32,
}

impl FileDisk {
    /// Open (creating if needed) a directory-backed disk. Existing
    /// `f<N>.pages` files are re-attached, so a database directory can be
    /// reopened across processes.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut handles = HashMap::new();
        let mut next_id = 0;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name
                .strip_prefix('f')
                .and_then(|s| s.strip_suffix(".pages"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                let fh = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(entry.path())?;
                handles.insert(FileId(n), fh);
                next_id = next_id.max(n + 1);
            }
        }
        Ok(FileDisk {
            dir,
            handles,
            next_id,
        })
    }

    fn path(&self, file: FileId) -> PathBuf {
        self.dir.join(format!("f{}.pages", file.0))
    }

    fn handle(&mut self, file: FileId) -> Result<&mut File> {
        self.handles.get_mut(&file).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })
    }
}

impl DiskManager for FileDisk {
    fn create_file(&mut self) -> Result<FileId> {
        let id = FileId(self.next_id);
        self.next_id += 1;
        let fh = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.path(id))?;
        self.handles.insert(id, fh);
        Ok(id)
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.handles.remove(&file).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })?;
        std::fs::remove_file(self.path(file))?;
        Ok(())
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        let fh = self.handles.get(&file).ok_or_else(|| {
            Error::Internal(format!("no such file {file:?}"))
        })?;
        Ok((fh.metadata()?.len() / PAGE_SIZE as u64) as u32)
    }

    fn read_page(&mut self, file: FileId, page_no: u32) -> Result<Page> {
        let n = self.page_count(file)?;
        if page_no >= n {
            return Err(Error::NoSuchPage(page_no));
        }
        let fh = self.handle(file)?;
        fh.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        fh.read_exact(&mut buf[..])?;
        Ok(Page::from_bytes(buf))
    }

    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        let n = self.page_count(file)?;
        if page_no >= n {
            return Err(Error::NoSuchPage(page_no));
        }
        let fh = self.handle(file)?;
        fh.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        fh.write_all(page.as_bytes())?;
        Ok(())
    }

    fn append_page(&mut self, file: FileId, page: &Page) -> Result<u32> {
        let n = self.page_count(file)?;
        let fh = self.handle(file)?;
        fh.seek(SeekFrom::End(0))?;
        fh.write_all(page.as_bytes())?;
        Ok(n)
    }

    fn truncate(&mut self, file: FileId) -> Result<()> {
        let fh = self.handle(file)?;
        fh.set_len(0)?;
        Ok(())
    }

    fn sync(&mut self, file: FileId) -> Result<()> {
        self.handle(file)?.sync_all()?;
        Ok(())
    }

    fn files(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self.handles.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn exercise(disk: &mut dyn DiskManager) {
        let f = disk.create_file().unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 0);
        let mut p = Page::new(PageKind::Data);
        p.push_row(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(disk.append_page(f, &p).unwrap(), 0);
        assert_eq!(disk.append_page(f, &p).unwrap(), 1);
        assert_eq!(disk.page_count(f).unwrap(), 2);

        let got = disk.read_page(f, 0).unwrap();
        assert_eq!(got.row(4, 0).unwrap(), &[1, 2, 3, 4]);

        let mut p2 = Page::new(PageKind::Overflow);
        p2.push_row(4, &[9, 9, 9, 9]).unwrap();
        disk.write_page(f, 1, &p2).unwrap();
        let got = disk.read_page(f, 1).unwrap();
        assert_eq!(got.kind().unwrap(), PageKind::Overflow);

        disk.sync(f).unwrap();
        assert!(disk.sync(FileId(9999)).is_err(), "sync checks existence");
        assert_eq!(disk.files(), vec![f]);

        assert!(disk.read_page(f, 7).is_err());
        assert!(disk.write_page(f, 7, &p).is_err());

        disk.truncate(f).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 0);

        let g = disk.create_file().unwrap();
        assert_ne!(f, g);
        disk.drop_file(f).unwrap();
        assert!(disk.read_page(f, 0).is_err());
        assert!(disk.drop_file(f).is_err());
    }

    #[test]
    fn mem_disk_contract() {
        exercise(&mut MemDisk::new());
    }

    #[test]
    fn file_disk_contract() {
        let dir = tdbms_kernel::tmpdir::fresh_dir("disk-test");
        exercise(&mut FileDisk::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_disk_reopens_existing_files() {
        let dir = tdbms_kernel::tmpdir::fresh_dir("disk-reopen");
        let f;
        {
            let mut disk = FileDisk::open(&dir).unwrap();
            f = disk.create_file().unwrap();
            let mut p = Page::new(PageKind::Data);
            p.push_row(2, &[7, 7]).unwrap();
            disk.append_page(f, &p).unwrap();
        }
        {
            let mut disk = FileDisk::open(&dir).unwrap();
            assert_eq!(disk.page_count(f).unwrap(), 1);
            let p = disk.read_page(f, 0).unwrap();
            assert_eq!(p.row(2, 0).unwrap(), &[7, 7]);
            // New files do not collide with re-attached ones.
            let g = disk.create_file().unwrap();
            assert!(g.0 > f.0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
