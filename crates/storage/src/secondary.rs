//! Secondary indexing on non-key attributes (Section 6).
//!
//! An index entry is `[attribute value][page u32][slot u16]` — ten bytes
//! for a 4-byte attribute, so 101 entries fit a 1024-byte page, matching
//! the paper's sizing ("can store 101 entries in a page"). The index may
//! be kept
//!
//! * as a **heap** — a query scans the whole index — or as a **hash** file
//!   on the indexed attribute — a query reads one bucket chain; and
//! * at **one level** (entries for every version of the relation) or at
//!   **two levels** (a small index over the primary store's current
//!   versions plus a separate index over the history store), which is what
//!   turns the paper's Q07 from 3717 page reads into 2.

use crate::disk::FileId;
use crate::hash::HashFile;
use crate::heap::HeapFile;
use crate::key::{HashFn, KeyKind, KeySpec};
use crate::page::page_capacity;
use crate::pager::Pager;
use crate::relfile::RelFile;
use crate::tuple::TupleId;
use tdbms_kernel::{Error, Result};

/// The storage structure of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexStructure {
    /// Entries in arrival order; lookups scan the whole index.
    Heap,
    /// Entries hashed on the indexed attribute; lookups read one chain.
    Hash,
}

/// A secondary index over one attribute of a stored file.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    /// The index file itself (entries are fixed-width rows).
    file: RelFile,
    /// Where the indexed attribute lives in *target* rows.
    target_attr: KeySpec,
    /// Entry width: attribute + 6-byte tuple address.
    entry_width: usize,
    /// The structure the index was built with.
    structure: IndexStructure,
}

fn encode_entry(attr: &[u8], tid: TupleId) -> Vec<u8> {
    let mut e = Vec::with_capacity(attr.len() + 6);
    e.extend_from_slice(attr);
    e.extend_from_slice(&tid.page.to_le_bytes());
    e.extend_from_slice(&tid.slot.to_le_bytes());
    e
}

fn decode_tid(entry: &[u8], attr_len: usize) -> TupleId {
    let page = u32::from_le_bytes(
        entry[attr_len..attr_len + 4].try_into().expect("4 bytes"),
    );
    let slot = u16::from_le_bytes(
        entry[attr_len + 4..attr_len + 6]
            .try_into()
            .expect("2 bytes"),
    );
    TupleId::new(page, slot)
}

impl SecondaryIndex {
    /// Build an index over every row of `target` that passes `include`
    /// (pass `|_| true` for a 1-level index; a currency predicate yields
    /// the *current* index of a 2-level scheme).
    pub fn build(
        pager: &Pager,
        target: &RelFile,
        target_attr: KeySpec,
        structure: IndexStructure,
        fillfactor: u8,
        include: impl FnMut(&[u8]) -> bool,
    ) -> Result<SecondaryIndex> {
        let file = pager.create_file()?;
        Self::build_into(
            pager,
            file,
            target,
            target_attr,
            structure,
            fillfactor,
            include,
        )
    }

    /// Build into an existing (truncated) file — used when rebuilding an
    /// index after its base relation was reorganized.
    pub fn build_into(
        pager: &Pager,
        file_id: FileId,
        target: &RelFile,
        target_attr: KeySpec,
        structure: IndexStructure,
        fillfactor: u8,
        mut include: impl FnMut(&[u8]) -> bool,
    ) -> Result<SecondaryIndex> {
        let entry_width = target_attr.len + 6;
        let mut entries: Vec<Vec<u8>> = Vec::new();
        let mut cur = target.scan();
        while let Some((tid, row)) = cur.next(pager, target)? {
            if include(&row) {
                entries.push(encode_entry(target_attr.extract(&row), tid));
            }
        }
        let index_key = KeySpec {
            offset: 0,
            len: target_attr.len,
            kind: target_attr.kind,
        };
        let file = match structure {
            IndexStructure::Heap => {
                let heap = HeapFile::attach(file_id, entry_width);
                for e in &entries {
                    heap.insert(pager, e)?;
                }
                RelFile::Heap(heap)
            }
            IndexStructure::Hash => RelFile::Hash(HashFile::build_into(
                pager,
                file_id,
                &entries,
                entry_width,
                index_key,
                HashFn::Mod,
                fillfactor,
            )?),
        };
        pager.flush_all()?;
        Ok(SecondaryIndex {
            file,
            target_attr,
            entry_width,
            structure,
        })
    }

    /// Re-attach a previously built index from its persisted descriptor
    /// (catalog reload; no I/O).
    pub fn attach(
        file: RelFile,
        target_attr: KeySpec,
        entry_width: usize,
        structure: IndexStructure,
    ) -> SecondaryIndex {
        SecondaryIndex {
            file,
            target_attr,
            entry_width,
            structure,
        }
    }

    /// The index's own storage file descriptor.
    pub fn file(&self) -> &RelFile {
        &self.file
    }

    /// The structure the index was built with.
    pub fn structure(&self) -> IndexStructure {
        self.structure
    }

    /// The indexed attribute's location in target rows.
    pub fn target_attr(&self) -> KeySpec {
        self.target_attr
    }

    /// Pages the index occupies.
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        self.file.total_pages(pager)
    }

    /// The index's own file id (for I/O accounting).
    pub fn file_id(&self) -> FileId {
        self.file.file_id()
    }

    /// Register a newly inserted target row.
    pub fn insert_entry(
        &mut self,
        pager: &Pager,
        row: &[u8],
        tid: TupleId,
    ) -> Result<()> {
        let e = encode_entry(self.target_attr.extract(row), tid);
        self.file.insert(pager, &e)?;
        Ok(())
    }

    /// The addresses of every indexed version whose attribute equals
    /// `attr_bytes`. Heap structure scans the whole index; hash reads one
    /// bucket chain.
    pub fn lookup_tids(
        &self,
        pager: &Pager,
        attr_bytes: &[u8],
    ) -> Result<Vec<TupleId>> {
        if attr_bytes.len() != self.target_attr.len {
            return Err(Error::BadValue(format!(
                "index key must be {} bytes, got {}",
                self.target_attr.len,
                attr_bytes.len()
            )));
        }
        let mut out = Vec::new();
        let attr_len = self.target_attr.len;
        match &self.file {
            RelFile::Heap(_) => {
                let mut cur = self.file.scan();
                while let Some((_, e)) = cur.next(pager, &self.file)? {
                    if self.target_attr.compare(&e[..attr_len], attr_bytes)
                        == std::cmp::Ordering::Equal
                    {
                        out.push(decode_tid(&e, attr_len));
                    }
                }
            }
            _ => {
                let mut cur = self
                    .file
                    .lookup_eq(pager, attr_bytes)?
                    .ok_or_else(|| Error::Internal("keyed index".into()))?;
                while let Some((_, e)) = cur.next(pager, &self.file)? {
                    out.push(decode_tid(&e, attr_len));
                }
            }
        }
        Ok(out)
    }

    /// Full indexed lookup: fetch the matching rows from `target`.
    pub fn fetch(
        &self,
        pager: &Pager,
        target: &RelFile,
        attr_bytes: &[u8],
    ) -> Result<Vec<(TupleId, Vec<u8>)>> {
        let tids = self.lookup_tids(pager, attr_bytes)?;
        let mut out = Vec::with_capacity(tids.len());
        for tid in tids {
            out.push((tid, target.get(pager, tid)?));
        }
        Ok(out)
    }

    /// Entries per index page (for sizing reports).
    pub fn entries_per_page(&self) -> usize {
        page_capacity(self.entry_width)
    }
}

/// Convenience: the canonical 4-byte integer attribute spec at a given
/// row offset.
pub fn i4_attr(offset: usize) -> KeySpec {
    KeySpec {
        offset,
        len: 4,
        kind: KeyKind::I4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{AttrDef, Domain, RowCodec, Schema, Value};

    /// 108-byte benchmark-like rows: id, amount, padding.
    fn target_file(pager: &Pager, n: i64) -> (RowCodec, RelFile, KeySpec) {
        let schema = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("amount", Domain::I4),
            AttrDef::new("pad", Domain::Char(100)),
        ])
        .unwrap();
        let codec = RowCodec::new(&schema);
        let rows: Vec<Vec<u8>> = (1..=n)
            .map(|i| {
                codec
                    .encode(&[
                        Value::Int(i),
                        Value::Int((i % 10) * 100),
                        Value::Str("x".into()),
                    ])
                    .unwrap()
            })
            .collect();
        let key = KeySpec::for_attr(&codec, 0);
        let hash =
            HashFile::build(pager, &rows, 108, key, HashFn::Mod, 100)
                .unwrap();
        let amount = KeySpec::for_attr(&codec, 1);
        (codec, RelFile::Hash(hash), amount)
    }

    #[test]
    fn entry_sizing_matches_the_paper() {
        let pager = Pager::in_memory();
        let (_, target, amount) = target_file(&pager, 101);
        let idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Heap,
            100,
            |_| true,
        )
        .unwrap();
        assert_eq!(idx.entries_per_page(), 101);
        assert_eq!(idx.total_pages(&pager).unwrap(), 1);
    }

    #[test]
    fn heap_and_hash_indexes_agree_with_a_scan() {
        let pager = Pager::in_memory();
        let (codec, target, amount) = target_file(&pager, 200);
        let heap_idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Heap,
            100,
            |_| true,
        )
        .unwrap();
        let hash_idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Hash,
            100,
            |_| true,
        )
        .unwrap();
        let want = 300i32.to_le_bytes();
        let mut expect: Vec<i32> = Vec::new();
        let mut cur = target.scan();
        while let Some((_, row)) = cur.next(&pager, &target).unwrap() {
            if codec.get_i4(&row, 1) == 300 {
                expect.push(codec.get_i4(&row, 0));
            }
        }
        expect.sort_unstable();
        for idx in [&heap_idx, &hash_idx] {
            let mut got: Vec<i32> = idx
                .fetch(&pager, &target, &want)
                .unwrap()
                .iter()
                .map(|(_, row)| codec.get_i4(row, 0))
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
        assert_eq!(expect.len(), 20); // ids ≡ 3 (mod 10)
    }

    #[test]
    fn hash_index_lookup_is_cheaper_than_heap() {
        let pager = Pager::in_memory();
        // Distinct amounts so the mod-hashed index spreads across buckets.
        let schema = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("amount", Domain::I4),
            AttrDef::new("pad", Domain::Char(100)),
        ])
        .unwrap();
        let codec = RowCodec::new(&schema);
        let rows: Vec<Vec<u8>> = (1..=1000i64)
            .map(|i| {
                codec
                    .encode(&[
                        Value::Int(i),
                        Value::Int(i),
                        Value::Str("x".into()),
                    ])
                    .unwrap()
            })
            .collect();
        let key = KeySpec::for_attr(&codec, 0);
        let target = RelFile::Hash(
            HashFile::build(&pager, &rows, 108, key, HashFn::Mod, 100)
                .unwrap(),
        );
        let amount = KeySpec::for_attr(&codec, 1);
        let heap_idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Heap,
            100,
            |_| true,
        )
        .unwrap();
        let hash_idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Hash,
            100,
            |_| true,
        )
        .unwrap();
        let key = 700i32.to_le_bytes();

        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        heap_idx.lookup_tids(&pager, &key).unwrap();
        let heap_cost = pager.stats().of(heap_idx.file_id()).reads;

        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        hash_idx.lookup_tids(&pager, &key).unwrap();
        let hash_cost = pager.stats().of(hash_idx.file_id()).reads;

        // 1000 entries = 10 heap pages scanned vs. one bucket chain.
        assert_eq!(heap_cost, 10);
        assert!(hash_cost <= 2, "hash index cost {hash_cost}");
    }

    #[test]
    fn filtered_build_gives_a_current_only_index() {
        let pager = Pager::in_memory();
        let (codec, target, amount) = target_file(&pager, 100);
        // Pretend versions with odd ids are "history": exclude them.
        let idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Heap,
            100,
            |row| codec.get_i4(row, 0) % 2 == 0,
        )
        .unwrap();
        let rows =
            idx.fetch(&pager, &target, &500i32.to_le_bytes()).unwrap();
        // amounts of 500: ids ≡ 5 (mod 10) — all odd, all excluded.
        assert!(rows.is_empty());
        let rows =
            idx.fetch(&pager, &target, &400i32.to_le_bytes()).unwrap();
        assert_eq!(rows.len(), 10); // ids ≡ 4 (mod 10), all even
    }

    #[test]
    fn maintenance_inserts_are_visible() {
        let pager = Pager::in_memory();
        let (codec, target, amount) = target_file(&pager, 50);
        let mut idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Hash,
            100,
            |_| true,
        )
        .unwrap();
        let new_row = codec
            .encode(&[
                Value::Int(999),
                Value::Int(12345),
                Value::Str("new".into()),
            ])
            .unwrap();
        let tid = target.insert(&pager, &new_row).unwrap();
        idx.insert_entry(&pager, &new_row, tid).unwrap();
        let got =
            idx.fetch(&pager, &target, &12345i32.to_le_bytes()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(codec.get_i4(&got[0].1, 0), 999);
    }

    #[test]
    fn wrong_key_width_is_rejected() {
        let pager = Pager::in_memory();
        let (_, target, amount) = target_file(&pager, 10);
        let idx = SecondaryIndex::build(
            &pager,
            &target,
            amount,
            IndexStructure::Heap,
            100,
            |_| true,
        )
        .unwrap();
        assert!(idx.lookup_tids(&pager, &[1, 2]).is_err());
    }
}
