//! Page-access accounting.
//!
//! The paper's benchmark "focused solely on the number of disk accesses per
//! query at a granularity of a page", counting only accesses to *user*
//! relations. [`IoStats`] tallies, per file, the pages fetched from disk
//! (buffer misses) and pages written back, so a harness can reset the
//! counters before a query and read off exactly the paper's metric
//! afterwards.

use crate::disk::FileId;
use std::collections::HashMap;

/// Per-file read/write page counters.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    counters: HashMap<FileId, FileIo>,
}

/// Counters for one file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileIo {
    /// Pages fetched from disk (buffer misses).
    pub reads: u64,
    /// Pages written back to disk.
    pub writes: u64,
}

impl IoStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&mut self, file: FileId) {
        self.counters.entry(file).or_default().reads += 1;
    }

    pub(crate) fn record_write(&mut self, file: FileId) {
        self.counters.entry(file).or_default().writes += 1;
    }

    /// Counters for one file (zero if never touched).
    pub fn of(&self, file: FileId) -> FileIo {
        self.counters.get(&file).copied().unwrap_or_default()
    }

    /// Total page reads across all files.
    pub fn total_reads(&self) -> u64 {
        self.counters.values().map(|c| c.reads).sum()
    }

    /// Total page writes across all files.
    pub fn total_writes(&self) -> u64 {
        self.counters.values().map(|c| c.writes).sum()
    }

    /// Total page reads across a set of files.
    pub fn reads_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).reads).sum()
    }

    /// Total page writes across a set of files.
    pub fn writes_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).writes).sum()
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        self.counters.clear();
    }

    /// Iterate over `(file, counters)` for files that were touched.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, FileIo)> + '_ {
        self.counters.iter().map(|(f, c)| (*f, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut s = IoStats::new();
        let a = FileId(1);
        let b = FileId(2);
        s.record_read(a);
        s.record_read(a);
        s.record_write(a);
        s.record_read(b);
        assert_eq!(s.of(a), FileIo { reads: 2, writes: 1 });
        assert_eq!(s.of(b), FileIo { reads: 1, writes: 0 });
        assert_eq!(s.of(FileId(99)), FileIo::default());
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.total_writes(), 1);
        assert_eq!(s.reads_of(&[a, b]), 3);
        assert_eq!(s.writes_of(&[a, b]), 1);
        s.reset();
        assert_eq!(s.total_reads(), 0);
    }
}
