//! Page-access accounting.
//!
//! The paper's benchmark "focused solely on the number of disk accesses per
//! query at a granularity of a page", counting only accesses to *user*
//! relations. [`IoStats`] tallies, per file, the pages fetched from disk
//! (buffer misses) and pages written back, so a harness can reset the
//! counters before a query and read off exactly the paper's metric
//! afterwards.
//!
//! Version 2 widens the ledger beyond the paper's two columns: every
//! buffered page access is classified as a **hit** or a **miss** (a miss
//! is a disk fetch, i.e. a `read`), capacity-pressure **evictions** are
//! counted separately from explicit flushes, and the whole ledger can be
//! sliced into **named phases** (`begin_phase` / `end_phase`) so a query
//! processor can attribute I/O to, say, decomposition vs. tuple
//! substitution. The structural invariant `hits + misses == accesses`
//! holds per file and in total; `accesses` is counted at the access site
//! and `hits`/`reads` at the classification sites, so the identity is a
//! real cross-check, not a tautology.
//!
//! Version 3 makes the ledger shareable: per-file counters are atomics
//! behind an `RwLock`'d directory and the phase ledger sits behind a
//! `Mutex`, so recording is `&self` and `IoStats` is `Send + Sync`. A
//! counter bump is a single relaxed `fetch_add`; concurrent recorders
//! never lose increments, and the hit/miss/access identity still holds at
//! every quiescent point (each access site performs its access and
//! classification bumps before returning).

use crate::disk::FileId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Per-file read/write page counters, safely shareable across threads.
#[derive(Debug, Default)]
pub struct IoStats {
    counters: RwLock<HashMap<FileId, Arc<FileCounters>>>,
    phases: Mutex<PhaseLedger>,
    /// Lifetime counters for the chain-guard machinery. Unlike the
    /// per-file ledger these are **monotone**: `reset` (which the
    /// benchmark harness calls before every query) does not clear them,
    /// so the server's `Stats` reply and the planner's statistics see
    /// cumulative figures. They sit outside the per-file ledger so the
    /// paper's `hits + misses == accesses` identity is untouched.
    bloom_hits: AtomicU64,
    bloom_skips: AtomicU64,
    readahead: AtomicU64,
}

/// The atomic cell behind one file's [`FileIo`] snapshot.
#[derive(Debug, Default)]
struct FileCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    accesses: AtomicU64,
    retries: AtomicU64,
}

impl FileCounters {
    fn snapshot(&self) -> FileIo {
        FileIo {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            accesses: self.accesses.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// Counters for one file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileIo {
    /// Pages fetched from disk (buffer misses).
    pub reads: u64,
    /// Pages written back to disk.
    pub writes: u64,
    /// Buffered accesses satisfied without a disk fetch.
    pub hits: u64,
    /// Frames evicted under capacity pressure (explicit flushes and
    /// invalidations are not evictions).
    pub evictions: u64,
    /// Buffered page accesses (every access is either a hit or a miss;
    /// a miss is exactly one `read`).
    pub accesses: u64,
    /// Disk reads retried after a transient failure. Retries are not
    /// extra `reads`: a fetch that succeeds on its second attempt is
    /// still one page read, with one retry on the side.
    pub retries: u64,
}

impl FileIo {
    /// Buffer misses (identical to `reads`; named for the invariant).
    pub fn misses(&self) -> u64 {
        self.reads
    }

    /// The v2 ledger invariant: every access was classified exactly once.
    pub fn is_consistent(&self) -> bool {
        self.hits + self.reads == self.accesses
    }
}

/// Aggregate totals at one instant (phase baselines).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Totals {
    reads: u64,
    writes: u64,
    hits: u64,
    evictions: u64,
}

/// The phase slices of the ledger, guarded as one unit.
#[derive(Debug, Default)]
struct PhaseLedger {
    closed: Vec<PhaseIo>,
    open: Option<(String, Totals)>,
}

/// The I/O attributed to one named phase of a statement.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PhaseIo {
    /// Phase name (e.g. `"decomposition"`, `"substitution"`).
    pub name: String,
    /// Pages fetched from disk during the phase.
    pub reads: u64,
    /// Pages written back during the phase.
    pub writes: u64,
    /// Buffer hits during the phase.
    pub hits: u64,
    /// Capacity evictions during the phase.
    pub evictions: u64,
}

impl IoStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared atomic cell for `file`, creating it on first touch.
    /// The common path is a read-lock lookup; only a file's very first
    /// counter bump takes the directory write lock.
    fn cell(&self, file: FileId) -> Arc<FileCounters> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&file)
        {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(file)
                .or_default(),
        )
    }

    pub(crate) fn record_read(&self, file: FileId) {
        self.cell(file).reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, file: FileId) {
        self.cell(file).writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self, file: FileId) {
        self.cell(file).hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self, file: FileId) {
        self.cell(file).evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_access(&self, file: FileId) {
        self.cell(file).accesses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self, file: FileId) {
        self.cell(file).retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total transient-read retries across all files.
    pub fn total_retries(&self) -> u64 {
        self.sum(|c| c.retries)
    }

    pub(crate) fn record_bloom_hit(&self) {
        self.bloom_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_bloom_skip(&self) {
        self.bloom_skips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_readahead(&self, n: u64) {
        self.readahead.fetch_add(n, Ordering::Relaxed);
    }

    /// Lifetime count of bloom-filter consultations that answered
    /// "maybe present" (the chain was walked as usual). Monotone —
    /// `reset` does not clear it.
    pub fn bloom_hits(&self) -> u64 {
        self.bloom_hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of chain walks skipped because the filter answered
    /// "definitely absent". Monotone — `reset` does not clear it.
    pub fn bloom_skips(&self) -> u64 {
        self.bloom_skips.load(Ordering::Relaxed)
    }

    /// Lifetime count of pages prefetched by [`crate::Pager::readahead`].
    /// Monotone — `reset` does not clear it.
    pub fn readahead_pages(&self) -> u64 {
        self.readahead.load(Ordering::Relaxed)
    }

    /// Charge `n` page writes against `file` from outside the pager. The
    /// WAL uses this to account its log appends (to a pseudo file id) in
    /// the same ledger as data-page I/O, so `QueryStats` phases can show
    /// the durability cost next to the paper's metric.
    pub fn add_writes(&self, file: FileId, n: u64) {
        self.cell(file).writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Counters for one file (zero if never touched).
    pub fn of(&self, file: FileId) -> FileIo {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&file)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    fn sum(&self, pick: impl Fn(&FileIo) -> u64) -> u64 {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|c| pick(&c.snapshot()))
            .sum()
    }

    /// Total page reads across all files.
    pub fn total_reads(&self) -> u64 {
        self.sum(|c| c.reads)
    }

    /// Total page writes across all files.
    pub fn total_writes(&self) -> u64 {
        self.sum(|c| c.writes)
    }

    /// Total buffer hits across all files.
    pub fn total_hits(&self) -> u64 {
        self.sum(|c| c.hits)
    }

    /// Total capacity evictions across all files.
    pub fn total_evictions(&self) -> u64 {
        self.sum(|c| c.evictions)
    }

    /// Total buffered page accesses across all files.
    pub fn total_accesses(&self) -> u64 {
        self.sum(|c| c.accesses)
    }

    /// The ledger invariant over every file: `hits + misses == accesses`.
    /// Meaningful at quiescent points (no recorder mid-access).
    pub fn is_consistent(&self) -> bool {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .all(|c| c.snapshot().is_consistent())
    }

    /// Total page reads across a set of files.
    pub fn reads_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).reads).sum()
    }

    /// Total page writes across a set of files.
    pub fn writes_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).writes).sum()
    }

    /// Zero every counter and drop all recorded phases.
    pub fn reset(&self) {
        // Take the phase lock first (same order as begin/end_phase) and
        // hold both so no recorder can slip between the two wipes.
        let mut ledger =
            self.phases.lock().unwrap_or_else(PoisonError::into_inner);
        self.counters
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        ledger.closed.clear();
        ledger.open = None;
    }

    /// Snapshot `(file, counters)` for every file that was touched.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, FileIo)> {
        let mut snap: Vec<(FileId, FileIo)> = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(f, c)| (*f, c.snapshot()))
            .collect();
        snap.sort_by_key(|(f, _)| *f);
        snap.into_iter()
    }

    fn totals(&self) -> Totals {
        Totals {
            reads: self.total_reads(),
            writes: self.total_writes(),
            hits: self.total_hits(),
            evictions: self.total_evictions(),
        }
    }

    /// Open a named phase. All I/O until `end_phase` (or the next
    /// `begin_phase`, which closes the current one first) is attributed to
    /// it. Phases do not nest — the paper's decomposition pipeline is a
    /// sequence, not a tree.
    pub fn begin_phase(&self, name: &str) {
        let mut ledger =
            self.phases.lock().unwrap_or_else(PoisonError::into_inner);
        Self::close_open(&mut ledger, self.totals());
        ledger.open = Some((name.to_string(), self.totals()));
    }

    /// Close the open phase, if any, recording its I/O delta.
    pub fn end_phase(&self) {
        let mut ledger =
            self.phases.lock().unwrap_or_else(PoisonError::into_inner);
        Self::close_open(&mut ledger, self.totals());
    }

    fn close_open(ledger: &mut PhaseLedger, now: Totals) {
        if let Some((name, base)) = ledger.open.take() {
            ledger.closed.push(PhaseIo {
                name,
                reads: now.reads - base.reads,
                writes: now.writes - base.writes,
                hits: now.hits - base.hits,
                evictions: now.evictions - base.evictions,
            });
        }
    }

    /// Every closed phase, in the order recorded (a snapshot).
    pub fn phases(&self) -> Vec<PhaseIo> {
        self.phases
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
            .clone()
    }

    /// The aggregate I/O of every recorded phase named `name` (all-zero if
    /// the phase never ran).
    pub fn scoped(&self, name: &str) -> PhaseIo {
        let mut out = PhaseIo {
            name: name.to_string(),
            ..Default::default()
        };
        for p in self.phases().iter().filter(|p| p.name == name) {
            out.reads += p.reads;
            out.writes += p.writes;
            out.hits += p.hits;
            out.evictions += p.evictions;
        }
        out
    }
}

impl Clone for IoStats {
    /// A deep snapshot: the clone gets its own counters frozen at the
    /// values observed now, sharing nothing with the original.
    fn clone(&self) -> Self {
        let out = IoStats::new();
        out.bloom_hits.store(self.bloom_hits(), Ordering::Relaxed);
        out.bloom_skips.store(self.bloom_skips(), Ordering::Relaxed);
        out.readahead
            .store(self.readahead_pages(), Ordering::Relaxed);
        {
            let mut dst = out
                .counters
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let src = self
                .counters
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            for (f, c) in src.iter() {
                let s = c.snapshot();
                dst.insert(
                    *f,
                    Arc::new(FileCounters {
                        reads: AtomicU64::new(s.reads),
                        writes: AtomicU64::new(s.writes),
                        hits: AtomicU64::new(s.hits),
                        evictions: AtomicU64::new(s.evictions),
                        accesses: AtomicU64::new(s.accesses),
                        retries: AtomicU64::new(s.retries),
                    }),
                );
            }
        }
        let src =
            self.phases.lock().unwrap_or_else(PoisonError::into_inner);
        let mut dst =
            out.phases.lock().unwrap_or_else(PoisonError::into_inner);
        dst.closed = src.closed.clone();
        dst.open = src.open.clone();
        drop(dst);
        drop(src);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let s = IoStats::new();
        let a = FileId(1);
        let b = FileId(2);
        s.record_access(a);
        s.record_read(a);
        s.record_access(a);
        s.record_read(a);
        s.record_write(a);
        s.record_access(b);
        s.record_read(b);
        assert_eq!(s.of(a).reads, 2);
        assert_eq!(s.of(a).writes, 1);
        assert_eq!(s.of(b).reads, 1);
        assert_eq!(s.of(FileId(99)), FileIo::default());
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.total_writes(), 1);
        assert_eq!(s.reads_of(&[a, b]), 3);
        assert_eq!(s.writes_of(&[a, b]), 1);
        assert!(s.is_consistent());
        s.reset();
        assert_eq!(s.total_reads(), 0);
    }

    #[test]
    fn chain_guard_counters_are_monotone_across_reset() {
        let s = IoStats::new();
        s.record_bloom_hit();
        s.record_bloom_skip();
        s.record_bloom_skip();
        s.record_readahead(5);
        s.reset();
        assert_eq!(s.bloom_hits(), 1);
        assert_eq!(s.bloom_skips(), 2);
        assert_eq!(s.readahead_pages(), 5);
        let snap = s.clone();
        assert_eq!(
            (
                snap.bloom_hits(),
                snap.bloom_skips(),
                snap.readahead_pages()
            ),
            (1, 2, 5)
        );
    }

    #[test]
    fn hit_miss_access_identity() {
        let s = IoStats::new();
        let f = FileId(7);
        for _ in 0..5 {
            s.record_access(f);
            s.record_hit(f);
        }
        for _ in 0..3 {
            s.record_access(f);
            s.record_read(f);
        }
        s.record_eviction(f);
        let io = s.of(f);
        assert_eq!(io.hits, 5);
        assert_eq!(io.misses(), 3);
        assert_eq!(io.accesses, 8);
        assert_eq!(io.evictions, 1);
        assert!(io.is_consistent());
        assert_eq!(s.total_hits(), 5);
        assert_eq!(s.total_accesses(), 8);
        assert_eq!(s.total_evictions(), 1);
    }

    #[test]
    fn phases_slice_the_ledger() {
        let s = IoStats::new();
        let f = FileId(3);
        s.begin_phase("decomposition");
        s.record_access(f);
        s.record_read(f);
        s.record_write(f);
        // begin_phase closes the open phase implicitly.
        s.begin_phase("substitution");
        s.record_access(f);
        s.record_hit(f);
        s.record_access(f);
        s.record_read(f);
        s.record_eviction(f);
        s.end_phase();
        // A second round of the same phase aggregates under `scoped`.
        s.begin_phase("substitution");
        s.record_access(f);
        s.record_read(f);
        s.end_phase();

        assert_eq!(s.phases().len(), 3);
        let d = s.scoped("decomposition");
        assert_eq!((d.reads, d.writes, d.hits, d.evictions), (1, 1, 0, 0));
        let sub = s.scoped("substitution");
        assert_eq!(
            (sub.reads, sub.writes, sub.hits, sub.evictions),
            (2, 0, 1, 1)
        );
        assert_eq!(
            s.scoped("never-ran"),
            PhaseIo {
                name: "never-ran".into(),
                ..Default::default()
            }
        );
        // end_phase with nothing open is a no-op.
        s.end_phase();
        assert_eq!(s.phases().len(), 3);
        s.reset();
        assert!(s.phases().is_empty());
    }

    #[test]
    fn clone_is_a_frozen_snapshot() {
        let s = IoStats::new();
        let f = FileId(4);
        s.record_access(f);
        s.record_read(f);
        let snap = s.clone();
        s.record_access(f);
        s.record_hit(f);
        assert_eq!(snap.of(f).accesses, 1);
        assert_eq!(s.of(f).accesses, 2);
        assert!(snap.is_consistent() && s.is_consistent());
    }

    /// Hammer one ledger from many threads; every increment must land
    /// and the classification identity must hold at the join point.
    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = Arc::new(IoStats::new());
        let threads = 8;
        let per = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let f = FileId(t % 3);
                    for i in 0..per {
                        s.record_access(f);
                        if i % 2 == 0 {
                            s.record_hit(f);
                        } else {
                            s.record_read(f);
                        }
                        if i % 7 == 0 {
                            s.record_write(f);
                        }
                    }
                });
            }
        });
        assert_eq!(s.total_accesses(), u64::from(threads) * per);
        assert_eq!(
            s.total_hits() + s.total_reads(),
            u64::from(threads) * per
        );
        assert!(s.is_consistent());
    }
}
