//! Page-access accounting.
//!
//! The paper's benchmark "focused solely on the number of disk accesses per
//! query at a granularity of a page", counting only accesses to *user*
//! relations. [`IoStats`] tallies, per file, the pages fetched from disk
//! (buffer misses) and pages written back, so a harness can reset the
//! counters before a query and read off exactly the paper's metric
//! afterwards.
//!
//! Version 2 widens the ledger beyond the paper's two columns: every
//! buffered page access is classified as a **hit** or a **miss** (a miss
//! is a disk fetch, i.e. a `read`), capacity-pressure **evictions** are
//! counted separately from explicit flushes, and the whole ledger can be
//! sliced into **named phases** (`begin_phase` / `end_phase`) so a query
//! processor can attribute I/O to, say, decomposition vs. tuple
//! substitution. The structural invariant `hits + misses == accesses`
//! holds per file and in total; `accesses` is counted at the access site
//! and `hits`/`reads` at the classification sites, so the identity is a
//! real cross-check, not a tautology.

use crate::disk::FileId;
use std::collections::HashMap;

/// Per-file read/write page counters.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    counters: HashMap<FileId, FileIo>,
    phases: Vec<PhaseIo>,
    open_phase: Option<(String, Totals)>,
}

/// Counters for one file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileIo {
    /// Pages fetched from disk (buffer misses).
    pub reads: u64,
    /// Pages written back to disk.
    pub writes: u64,
    /// Buffered accesses satisfied without a disk fetch.
    pub hits: u64,
    /// Frames evicted under capacity pressure (explicit flushes and
    /// invalidations are not evictions).
    pub evictions: u64,
    /// Buffered page accesses (every access is either a hit or a miss;
    /// a miss is exactly one `read`).
    pub accesses: u64,
    /// Disk reads retried after a transient failure. Retries are not
    /// extra `reads`: a fetch that succeeds on its second attempt is
    /// still one page read, with one retry on the side.
    pub retries: u64,
}

impl FileIo {
    /// Buffer misses (identical to `reads`; named for the invariant).
    pub fn misses(&self) -> u64 {
        self.reads
    }

    /// The v2 ledger invariant: every access was classified exactly once.
    pub fn is_consistent(&self) -> bool {
        self.hits + self.reads == self.accesses
    }
}

/// Aggregate totals at one instant (phase baselines).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Totals {
    reads: u64,
    writes: u64,
    hits: u64,
    evictions: u64,
}

/// The I/O attributed to one named phase of a statement.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PhaseIo {
    /// Phase name (e.g. `"decomposition"`, `"substitution"`).
    pub name: String,
    /// Pages fetched from disk during the phase.
    pub reads: u64,
    /// Pages written back during the phase.
    pub writes: u64,
    /// Buffer hits during the phase.
    pub hits: u64,
    /// Capacity evictions during the phase.
    pub evictions: u64,
}

impl IoStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&mut self, file: FileId) {
        self.counters.entry(file).or_default().reads += 1;
    }

    pub(crate) fn record_write(&mut self, file: FileId) {
        self.counters.entry(file).or_default().writes += 1;
    }

    pub(crate) fn record_hit(&mut self, file: FileId) {
        self.counters.entry(file).or_default().hits += 1;
    }

    pub(crate) fn record_eviction(&mut self, file: FileId) {
        self.counters.entry(file).or_default().evictions += 1;
    }

    pub(crate) fn record_access(&mut self, file: FileId) {
        self.counters.entry(file).or_default().accesses += 1;
    }

    pub(crate) fn record_retry(&mut self, file: FileId) {
        self.counters.entry(file).or_default().retries += 1;
    }

    /// Total transient-read retries across all files.
    pub fn total_retries(&self) -> u64 {
        self.counters.values().map(|c| c.retries).sum()
    }

    /// Charge `n` page writes against `file` from outside the pager. The
    /// WAL uses this to account its log appends (to a pseudo file id) in
    /// the same ledger as data-page I/O, so `QueryStats` phases can show
    /// the durability cost next to the paper's metric.
    pub fn add_writes(&mut self, file: FileId, n: u64) {
        self.counters.entry(file).or_default().writes += n;
    }

    /// Counters for one file (zero if never touched).
    pub fn of(&self, file: FileId) -> FileIo {
        self.counters.get(&file).copied().unwrap_or_default()
    }

    /// Total page reads across all files.
    pub fn total_reads(&self) -> u64 {
        self.counters.values().map(|c| c.reads).sum()
    }

    /// Total page writes across all files.
    pub fn total_writes(&self) -> u64 {
        self.counters.values().map(|c| c.writes).sum()
    }

    /// Total buffer hits across all files.
    pub fn total_hits(&self) -> u64 {
        self.counters.values().map(|c| c.hits).sum()
    }

    /// Total capacity evictions across all files.
    pub fn total_evictions(&self) -> u64 {
        self.counters.values().map(|c| c.evictions).sum()
    }

    /// Total buffered page accesses across all files.
    pub fn total_accesses(&self) -> u64 {
        self.counters.values().map(|c| c.accesses).sum()
    }

    /// The ledger invariant over every file: `hits + misses == accesses`.
    pub fn is_consistent(&self) -> bool {
        self.counters.values().all(|c| c.is_consistent())
    }

    /// Total page reads across a set of files.
    pub fn reads_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).reads).sum()
    }

    /// Total page writes across a set of files.
    pub fn writes_of(&self, files: &[FileId]) -> u64 {
        files.iter().map(|f| self.of(*f).writes).sum()
    }

    /// Zero every counter and drop all recorded phases.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.phases.clear();
        self.open_phase = None;
    }

    /// Iterate over `(file, counters)` for files that were touched.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, FileIo)> + '_ {
        self.counters.iter().map(|(f, c)| (*f, *c))
    }

    fn totals(&self) -> Totals {
        Totals {
            reads: self.total_reads(),
            writes: self.total_writes(),
            hits: self.total_hits(),
            evictions: self.total_evictions(),
        }
    }

    /// Open a named phase. All I/O until `end_phase` (or the next
    /// `begin_phase`, which closes the current one first) is attributed to
    /// it. Phases do not nest — the paper's decomposition pipeline is a
    /// sequence, not a tree.
    pub fn begin_phase(&mut self, name: &str) {
        self.end_phase();
        self.open_phase = Some((name.to_string(), self.totals()));
    }

    /// Close the open phase, if any, recording its I/O delta.
    pub fn end_phase(&mut self) {
        if let Some((name, base)) = self.open_phase.take() {
            let now = self.totals();
            self.phases.push(PhaseIo {
                name,
                reads: now.reads - base.reads,
                writes: now.writes - base.writes,
                hits: now.hits - base.hits,
                evictions: now.evictions - base.evictions,
            });
        }
    }

    /// Every closed phase, in the order recorded.
    pub fn phases(&self) -> &[PhaseIo] {
        &self.phases
    }

    /// The aggregate I/O of every recorded phase named `name` (all-zero if
    /// the phase never ran).
    pub fn scoped(&self, name: &str) -> PhaseIo {
        let mut out = PhaseIo { name: name.to_string(), ..Default::default() };
        for p in self.phases.iter().filter(|p| p.name == name) {
            out.reads += p.reads;
            out.writes += p.writes;
            out.hits += p.hits;
            out.evictions += p.evictions;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut s = IoStats::new();
        let a = FileId(1);
        let b = FileId(2);
        s.record_access(a);
        s.record_read(a);
        s.record_access(a);
        s.record_read(a);
        s.record_write(a);
        s.record_access(b);
        s.record_read(b);
        assert_eq!(s.of(a).reads, 2);
        assert_eq!(s.of(a).writes, 1);
        assert_eq!(s.of(b).reads, 1);
        assert_eq!(s.of(FileId(99)), FileIo::default());
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.total_writes(), 1);
        assert_eq!(s.reads_of(&[a, b]), 3);
        assert_eq!(s.writes_of(&[a, b]), 1);
        assert!(s.is_consistent());
        s.reset();
        assert_eq!(s.total_reads(), 0);
    }

    #[test]
    fn hit_miss_access_identity() {
        let mut s = IoStats::new();
        let f = FileId(7);
        for _ in 0..5 {
            s.record_access(f);
            s.record_hit(f);
        }
        for _ in 0..3 {
            s.record_access(f);
            s.record_read(f);
        }
        s.record_eviction(f);
        let io = s.of(f);
        assert_eq!(io.hits, 5);
        assert_eq!(io.misses(), 3);
        assert_eq!(io.accesses, 8);
        assert_eq!(io.evictions, 1);
        assert!(io.is_consistent());
        assert_eq!(s.total_hits(), 5);
        assert_eq!(s.total_accesses(), 8);
        assert_eq!(s.total_evictions(), 1);
    }

    #[test]
    fn phases_slice_the_ledger() {
        let mut s = IoStats::new();
        let f = FileId(3);
        s.begin_phase("decomposition");
        s.record_access(f);
        s.record_read(f);
        s.record_write(f);
        // begin_phase closes the open phase implicitly.
        s.begin_phase("substitution");
        s.record_access(f);
        s.record_hit(f);
        s.record_access(f);
        s.record_read(f);
        s.record_eviction(f);
        s.end_phase();
        // A second round of the same phase aggregates under `scoped`.
        s.begin_phase("substitution");
        s.record_access(f);
        s.record_read(f);
        s.end_phase();

        assert_eq!(s.phases().len(), 3);
        let d = s.scoped("decomposition");
        assert_eq!((d.reads, d.writes, d.hits, d.evictions), (1, 1, 0, 0));
        let sub = s.scoped("substitution");
        assert_eq!((sub.reads, sub.writes, sub.hits, sub.evictions), (2, 0, 1, 1));
        assert_eq!(s.scoped("never-ran"), PhaseIo {
            name: "never-ran".into(),
            ..Default::default()
        });
        // end_phase with nothing open is a no-op.
        s.end_phase();
        assert_eq!(s.phases().len(), 3);
        s.reset();
        assert!(s.phases().is_empty());
    }
}
