//! # tdbms-storage
//!
//! The Ingres-style page storage engine underneath the temporal DBMS:
//!
//! * [`page`] — 1024-byte slotted pages with per-page overflow pointers.
//! * [`disk`] — page-granularity storage ([`MemDisk`] for benchmarking,
//!   [`FileDisk`] for durability).
//! * [`pager`] — buffer management with per-file frame pools (default one
//!   frame per file, the paper's configuration) and page-access accounting.
//! * [`iostats`] — the benchmark's metric: page reads/writes per file.
//! * [`heap`], [`hash`], [`isam`] — the three access methods the paper
//!   exercises, each with the overflow-chain behaviour its analysis is
//!   built on.
//! * [`relfile`] — the access methods behind one interface.
//! * [`catalog`] — the registry of stored relations plus the `modify`
//!   reorganization.
//!
//! The engine is deliberately faithful to the prototype: static bucket
//! counts, chain-walking inserts, no early termination on keyed lookups —
//! because those are the behaviours whose cost the paper measures.

pub mod bloom;
pub mod catalog;
pub mod checksum;
pub mod disk;
pub mod fault;
pub mod hash;
pub mod heap;
pub mod history;
pub mod iostats;
pub mod isam;
pub mod key;
pub mod page;
pub mod pager;
pub mod persist;
pub mod relfile;
pub mod secondary;
pub mod tuple;

pub use bloom::Bloom;
pub use catalog::{Catalog, NamedIndex, RelId, StoredRelation};
pub use checksum::{fnv64, ChecksumSet, SUMS_FILE};
pub use disk::{DiskManager, FileDisk, FileId, MemDisk};
pub use fault::{FaultDisk, FaultPlan, SharedMemDisk};
pub use hash::{rows_per_page_at_fill, HashFile};
pub use heap::HeapFile;
pub use history::ClusteredHistory;
pub use iostats::{FileIo, IoStats, PhaseIo};
pub use isam::IsamFile;
pub use key::{HashFn, KeyKind, KeySpec};
pub use page::{
    page_capacity, Page, PageKind, NO_PAGE, PAGE_HEADER, PAGE_SIZE,
};
pub use pager::{
    BufferConfig, EvictionPolicy, Pager, DEFAULT_READ_RETRIES,
};
pub use persist::{
    decode_catalog, encode_catalog, load_catalog, save_catalog,
};
pub use relfile::{AccessMethod, RelFile, RelLookup, RelScan};
pub use secondary::{i4_attr, IndexStructure, SecondaryIndex};
pub use tuple::TupleId;
