//! A relation's storage file, whatever its organization.
//!
//! [`RelFile`] unifies the three access methods behind one interface so the
//! query processor can pick an access path ([`RelFile::lookup_eq`] when a
//! key-equality predicate exists, [`RelFile::scan`] otherwise) without
//! caring how the relation is organized.

use crate::disk::FileId;
use crate::hash::{HashFile, HashLookup, HashScan};
use crate::heap::{HeapFile, HeapScan};
use crate::isam::{IsamFile, IsamLookup, IsamScan};
use crate::pager::Pager;
use crate::tuple::TupleId;
use tdbms_kernel::{Error, Result};

/// The storage organization of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMethod {
    /// Unordered heap (the organization of a freshly created relation).
    #[default]
    Heap,
    /// Static hashing on a key attribute.
    Hash,
    /// ISAM on a key attribute.
    Isam,
}

impl std::fmt::Display for AccessMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessMethod::Heap => write!(f, "heap"),
            AccessMethod::Hash => write!(f, "hash"),
            AccessMethod::Isam => write!(f, "isam"),
        }
    }
}

/// A relation's file in one of the three organizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelFile {
    /// Heap organization.
    Heap(HeapFile),
    /// Static hash organization.
    Hash(HashFile),
    /// ISAM organization.
    Isam(IsamFile),
}

impl RelFile {
    /// The organization tag.
    pub fn method(&self) -> AccessMethod {
        match self {
            RelFile::Heap(_) => AccessMethod::Heap,
            RelFile::Hash(_) => AccessMethod::Hash,
            RelFile::Isam(_) => AccessMethod::Isam,
        }
    }

    /// The underlying storage file id.
    pub fn file_id(&self) -> FileId {
        match self {
            RelFile::Heap(f) => f.file,
            RelFile::Hash(f) => f.file,
            RelFile::Isam(f) => f.file,
        }
    }

    /// Fixed row width in bytes.
    pub fn row_width(&self) -> usize {
        match self {
            RelFile::Heap(f) => f.row_width,
            RelFile::Hash(f) => f.row_width,
            RelFile::Isam(f) => f.row_width,
        }
    }

    /// Insert a row, returning its address.
    pub fn insert(&self, pager: &Pager, row: &[u8]) -> Result<TupleId> {
        match self {
            RelFile::Heap(f) => f.insert(pager, row),
            RelFile::Hash(f) => f.insert(pager, row),
            RelFile::Isam(f) => f.insert(pager, row),
        }
    }

    /// Read the row at `tid`.
    pub fn get(&self, pager: &Pager, tid: TupleId) -> Result<Vec<u8>> {
        match self {
            RelFile::Heap(f) => f.get(pager, tid),
            RelFile::Hash(f) => f.get(pager, tid),
            RelFile::Isam(f) => f.get(pager, tid),
        }
    }

    /// Overwrite the row at `tid` in place.
    pub fn update(
        &self,
        pager: &Pager,
        tid: TupleId,
        row: &[u8],
    ) -> Result<()> {
        match self {
            RelFile::Heap(f) => f.update(pager, tid, row),
            RelFile::Hash(f) => f.update(pager, tid, row),
            RelFile::Isam(f) => f.update(pager, tid, row),
        }
    }

    /// Physically remove the row at `tid`, compacting within its page.
    /// Only static relations delete physically; the compaction moves the
    /// page's last row into the vacated slot, so callers deleting several
    /// rows must process slots of one page highest-first.
    pub fn delete(&self, pager: &Pager, tid: TupleId) -> Result<()> {
        let w = self.row_width();
        pager.write(self.file_id(), tid.page, |p| {
            p.remove_row(w, tid.slot).map(|_| ())
        })?
    }

    /// Begin a full scan.
    pub fn scan(&self) -> RelScan {
        match self {
            RelFile::Heap(f) => RelScan::Heap(f.scan()),
            RelFile::Hash(f) => RelScan::Hash(f.scan()),
            RelFile::Isam(f) => RelScan::Isam(f.scan()),
        }
    }

    /// Begin a keyed equality lookup, if this organization supports one.
    /// Returns `Ok(None)` for heaps (the caller falls back to a scan).
    pub fn lookup_eq(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
    ) -> Result<Option<RelLookup>> {
        match self {
            RelFile::Heap(_) => Ok(None),
            RelFile::Hash(f) => {
                Ok(Some(RelLookup::Hash(f.lookup(key_bytes))))
            }
            RelFile::Isam(f) => {
                Ok(Some(RelLookup::Isam(f.lookup(pager, key_bytes)?)))
            }
        }
    }

    /// Total pages, including any directory.
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file_id())
    }

    /// Pages a sequential scan reads (total minus ISAM directory).
    pub fn scannable_pages(&self, pager: &Pager) -> Result<u32> {
        match self {
            RelFile::Isam(f) => f.scannable_pages(pager),
            _ => self.total_pages(pager),
        }
    }

    /// Directory levels a keyed access descends (ISAM only; 0 otherwise).
    pub fn directory_levels(&self) -> u32 {
        match self {
            RelFile::Isam(f) => f.n_levels(),
            _ => 0,
        }
    }
}

/// A full-scan cursor over any organization.
#[derive(Debug, Clone)]
pub enum RelScan {
    /// Heap scan state.
    Heap(HeapScan),
    /// Hash scan state.
    Hash(HashScan),
    /// ISAM scan state.
    Isam(IsamScan),
}

impl RelScan {
    /// Advance; `None` at end.
    pub fn next(
        &mut self,
        pager: &Pager,
        file: &RelFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        match (self, file) {
            (RelScan::Heap(c), RelFile::Heap(f)) => c.next(pager, f),
            (RelScan::Hash(c), RelFile::Hash(f)) => c.next(pager, f),
            (RelScan::Isam(c), RelFile::Isam(f)) => c.next(pager, f),
            _ => Err(Error::Internal(
                "scan cursor does not match file organization".into(),
            )),
        }
    }
}

/// A keyed-lookup cursor over a hash or ISAM file.
#[derive(Debug, Clone)]
pub enum RelLookup {
    /// Hash bucket-chain lookup state.
    Hash(HashLookup),
    /// ISAM directory-descended lookup state.
    Isam(IsamLookup),
}

impl RelLookup {
    /// Advance; `None` when no more versions match the key.
    pub fn next(
        &mut self,
        pager: &Pager,
        file: &RelFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        match (self, file) {
            (RelLookup::Hash(c), RelFile::Hash(f)) => c.next(pager, f),
            (RelLookup::Isam(c), RelFile::Isam(f)) => c.next(pager, f),
            _ => Err(Error::Internal(
                "lookup cursor does not match file organization".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{HashFn, KeySpec};
    use tdbms_kernel::{AttrDef, Domain, RowCodec, Schema, Value};

    fn setup() -> (RowCodec, Vec<Vec<u8>>) {
        let s = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("pad", Domain::Char(104)),
        ])
        .unwrap();
        let codec = RowCodec::new(&s);
        let rows = (1..=40i64)
            .map(|i| {
                codec
                    .encode(&[Value::Int(i), Value::Str("x".into())])
                    .unwrap()
            })
            .collect();
        (codec, rows)
    }

    fn all_organizations(
        pager: &Pager,
        rows: &[Vec<u8>],
        key: KeySpec,
    ) -> Vec<RelFile> {
        let heap = HeapFile::create(pager, 108).unwrap();
        for r in rows {
            heap.insert(pager, r).unwrap();
        }
        let hash = HashFile::build(pager, rows, 108, key, HashFn::Mod, 100)
            .unwrap();
        let isam = IsamFile::build(pager, rows, 108, key, 100).unwrap();
        vec![
            RelFile::Heap(heap),
            RelFile::Hash(hash),
            RelFile::Isam(isam),
        ]
    }

    #[test]
    fn scan_sees_all_rows_in_every_organization() {
        let (codec, rows) = setup();
        let pager = Pager::in_memory();
        let key = KeySpec::for_attr(&codec, 0);
        for rel in all_organizations(&pager, &rows, key) {
            let mut ids: Vec<i32> = Vec::new();
            let mut cur = rel.scan();
            while let Some((_, row)) = cur.next(&pager, &rel).unwrap() {
                ids.push(codec.get_i4(&row, 0));
            }
            ids.sort_unstable();
            assert_eq!(
                ids,
                (1..=40).collect::<Vec<i32>>(),
                "organization {:?}",
                rel.method()
            );
        }
    }

    #[test]
    fn lookup_eq_matches_organization_capability() {
        let (codec, rows) = setup();
        let pager = Pager::in_memory();
        let key = KeySpec::for_attr(&codec, 0);
        let rels = all_organizations(&pager, &rows, key);
        let kb = 17i32.to_le_bytes();
        assert!(rels[0].lookup_eq(&pager, &kb).unwrap().is_none());
        for rel in &rels[1..] {
            let mut cur =
                rel.lookup_eq(&pager, &kb).unwrap().expect("keyed");
            let (_, row) = cur.next(&pager, rel).unwrap().expect("found");
            assert_eq!(codec.get_i4(&row, 0), 17);
            assert!(cur.next(&pager, rel).unwrap().is_none());
        }
    }

    #[test]
    fn mismatched_cursor_is_an_error() {
        let (codec, rows) = setup();
        let pager = Pager::in_memory();
        let key = KeySpec::for_attr(&codec, 0);
        let rels = all_organizations(&pager, &rows, key);
        let mut heap_cursor = rels[0].scan();
        assert!(heap_cursor.next(&pager, &rels[1]).is_err());
    }

    #[test]
    fn delete_compacts_in_any_organization() {
        let (codec, rows) = setup();
        let pager = Pager::in_memory();
        let key = KeySpec::for_attr(&codec, 0);
        for rel in all_organizations(&pager, &rows, key) {
            // Find id 5 and delete it.
            let mut cur = rel.scan();
            let mut target = None;
            while let Some((tid, row)) = cur.next(&pager, &rel).unwrap() {
                if codec.get_i4(&row, 0) == 5 {
                    target = Some(tid);
                    break;
                }
            }
            rel.delete(&pager, target.unwrap()).unwrap();
            let mut n = 0;
            let mut cur = rel.scan();
            while let Some((_, row)) = cur.next(&pager, &rel).unwrap() {
                assert_ne!(codec.get_i4(&row, 0), 5);
                n += 1;
            }
            assert_eq!(n, 39, "organization {:?}", rel.method());
        }
    }
}
