//! Keys for the keyed access methods.
//!
//! A key is a fixed-width byte range of the encoded row (keys are single
//! attributes in the prototype, as in `modify Temporal_h to hash on id`).
//! [`KeySpec`] says where the key lives and how to compare it; [`HashFn`]
//! says how a hash file maps it to a bucket.

use std::cmp::Ordering;
use tdbms_kernel::{Domain, RowCodec};

/// How key bytes are ordered and hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// 4-byte little-endian signed integer (the benchmark's `id = i4`).
    I4,
    /// Uninterpreted bytes, compared lexicographically (covers `c<N>`
    /// attributes; blank padding makes lexicographic order correct).
    Bytes,
}

/// Location and interpretation of a key within an encoded row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpec {
    /// Byte offset of the key within the row.
    pub offset: usize,
    /// Key width in bytes.
    pub len: usize,
    /// Interpretation for ordering/hashing.
    pub kind: KeyKind,
}

impl KeySpec {
    /// Key spec for attribute `attr_idx` of a relation with this codec.
    pub fn for_attr(codec: &RowCodec, attr_idx: usize) -> KeySpec {
        let domain = codec.domain_of(attr_idx);
        let kind = match domain {
            Domain::I4 | Domain::Time => KeyKind::I4,
            _ => KeyKind::Bytes,
        };
        KeySpec {
            offset: codec.offset_of(attr_idx),
            len: domain.width(),
            kind,
        }
    }

    /// Borrow the key bytes out of a row.
    pub fn extract<'a>(&self, row: &'a [u8]) -> &'a [u8] {
        &row[self.offset..self.offset + self.len]
    }

    /// Compare two keys (already extracted).
    pub fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        match self.kind {
            KeyKind::I4 => {
                let x =
                    i32::from_le_bytes(a.try_into().expect("4-byte key"));
                let y =
                    i32::from_le_bytes(b.try_into().expect("4-byte key"));
                x.cmp(&y)
            }
            KeyKind::Bytes => a.cmp(b),
        }
    }
}

/// The bucket function of a hash file.
///
/// `Mod` reduces an integer key modulo the bucket count — for the
/// benchmark's sequential ids this distributes tuples perfectly evenly,
/// giving the clean space numbers the analysis assumes. `Multiplicative`
/// (FNV-1a over the key bytes) behaves like Ingres' real hash: buckets
/// receive Poisson-distributed loads and some overflow even at load time,
/// reproducing the collision overhead the paper observed on its static
/// hashed relation. See DESIGN.md, substitution 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashFn {
    /// Integer value modulo bucket count (default).
    #[default]
    Mod,
    /// FNV-1a over the key bytes, then modulo bucket count.
    Multiplicative,
}

impl HashFn {
    /// The bucket for `key` among `nbuckets` buckets.
    pub fn bucket(&self, kind: KeyKind, key: &[u8], nbuckets: u32) -> u32 {
        debug_assert!(nbuckets > 0);
        match self {
            HashFn::Mod => match kind {
                KeyKind::I4 => {
                    let v = i32::from_le_bytes(
                        key.try_into().expect("4-byte key"),
                    );
                    (v as i64).rem_euclid(nbuckets as i64) as u32
                }
                KeyKind::Bytes => {
                    let sum: u64 =
                        key.iter().map(|b| *b as u64).sum::<u64>();
                    (sum % nbuckets as u64) as u32
                }
            },
            HashFn::Multiplicative => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in key {
                    h ^= *b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                // Final avalanche so low-entropy keys spread across all
                // bucket counts.
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                (h % nbuckets as u64) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{AttrDef, Schema};

    fn codec() -> RowCodec {
        let s = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("name", Domain::Char(8)),
        ])
        .unwrap();
        RowCodec::new(&s)
    }

    #[test]
    fn spec_for_i4_attr() {
        let c = codec();
        let k = KeySpec::for_attr(&c, 0);
        assert_eq!(
            k,
            KeySpec {
                offset: 0,
                len: 4,
                kind: KeyKind::I4
            }
        );
        let k2 = KeySpec::for_attr(&c, 1);
        assert_eq!(
            k2,
            KeySpec {
                offset: 4,
                len: 8,
                kind: KeyKind::Bytes
            }
        );
    }

    #[test]
    fn i4_comparison_is_numeric_not_lexicographic() {
        let k = KeySpec {
            offset: 0,
            len: 4,
            kind: KeyKind::I4,
        };
        let a = (-1i32).to_le_bytes();
        let b = 1i32.to_le_bytes();
        assert_eq!(k.compare(&a, &b), Ordering::Less);
        // Lexicographic comparison would get this wrong:
        assert_eq!(a.as_slice().cmp(b.as_slice()), Ordering::Greater);
    }

    #[test]
    fn mod_hash_spreads_sequential_ids_perfectly() {
        // The property the benchmark relies on: ids 1..=1024 over 128
        // buckets land exactly 8 per bucket.
        let mut counts = [0u32; 128];
        for id in 1..=1024i32 {
            let b = HashFn::Mod.bucket(KeyKind::I4, &id.to_le_bytes(), 128);
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8));
    }

    #[test]
    fn mod_hash_handles_negative_keys() {
        let b = HashFn::Mod.bucket(KeyKind::I4, &(-3i32).to_le_bytes(), 7);
        assert!(b < 7);
    }

    #[test]
    fn multiplicative_hash_spreads_but_collides() {
        // Poisson-like behaviour: all buckets hit overall range, but loads
        // are uneven (that unevenness is the paper's collision overhead).
        let mut counts = vec![0u32; 114];
        for id in 1..=1024i32 {
            let b = HashFn::Multiplicative.bucket(
                KeyKind::I4,
                &id.to_le_bytes(),
                114,
            );
            counts[b as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min, "loads should be uneven");
        assert!(max <= 30, "but not degenerate (max {max})");
        assert_eq!(counts.iter().sum::<u32>(), 1024);
    }

    #[test]
    fn bytes_kind_hashes_within_range() {
        for h in [HashFn::Mod, HashFn::Multiplicative] {
            let b = h.bucket(KeyKind::Bytes, b"hello   ", 13);
            assert!(b < 13);
        }
    }
}
