//! Deterministic fault injection for crash-recovery testing.
//!
//! [`FaultDisk`] wraps any [`DiskManager`] and simulates a process crash
//! at a chosen point: every *mutating* operation (write, append,
//! truncate, create, drop, sync) charges one unit against a budget held
//! in a shared [`FaultPlan`]; the operation that exhausts the budget is
//! dropped — or, for page writes, **torn**: only a prefix of the page
//! reaches the device — and from then on every operation fails with an
//! I/O error, exactly as a dead process stops issuing I/O. Reads are
//! free until the crash (a crash loses no already-durable data) and fail
//! after it.
//!
//! The plan is shared (`Arc<Mutex<…>>`, so one plan can also span
//! threads in the crash-under-concurrency matrix) so one budget can span
//! several channels — the data disk and the write-ahead log — giving a
//! single global "crash at op N" knob. [`SharedMemDisk`] is a cloneable
//! handle over a [`MemDisk`] so a test can crash one incarnation of a
//! database and reopen the *same* surviving bytes in the next, without
//! touching the filesystem.

use crate::disk::{DiskManager, FileId, MemDisk};
use crate::page::{Page, PAGE_SIZE};
use std::sync::{Arc, Mutex, PoisonError};
use tdbms_kernel::{Error, Result};

/// Shared crash schedule. Clones observe and charge the same budget.
#[derive(Clone)]
pub struct FaultPlan {
    state: Arc<Mutex<FaultState>>,
}

struct FaultState {
    /// Mutating ops left before the crash; `None` never crashes.
    remaining: Option<u64>,
    /// Mutating ops charged so far (for sizing a crash matrix).
    charged: u64,
    crashed: bool,
    /// Inclusive 1-based op-ordinal ranges during which every
    /// space-consuming op fails with ENOSPC. The counter still
    /// advances on a failing op, so a window always passes.
    enospc_windows: Vec<(u64, u64)>,
    /// Same, but for `sync` ops only (fsync failure).
    fsync_windows: Vec<(u64, u64)>,
    /// Manual toggles (the chaos harness flips these on a wall-clock
    /// schedule instead of an op schedule).
    enospc_on: bool,
    fsync_fail_on: bool,
}

impl FaultPlan {
    /// A plan that crashes on the `crash_after_ops`-th mutating
    /// operation (1-based): `Some(1)` tears/drops the very first write.
    /// `None` counts ops but never crashes (dry run to size the matrix).
    pub fn new(crash_after_ops: Option<u64>) -> Self {
        FaultPlan {
            state: Arc::new(Mutex::new(FaultState {
                remaining: crash_after_ops,
                charged: 0,
                crashed: false,
                enospc_windows: Vec::new(),
                fsync_windows: Vec::new(),
                enospc_on: false,
                fsync_fail_on: false,
            })),
        }
    }

    /// Schedule ENOSPC windows: inclusive `(start, end)` ranges of
    /// 1-based mutating-op ordinals during which every space-consuming
    /// op (write, append, create, truncate, reset — not sync, not
    /// read) fails with a disk-full I/O error. Unlike a crash these
    /// failures are *transient*: the counter keeps advancing on the
    /// failing ops themselves, so retries deterministically march the
    /// schedule past the window and the disk "recovers".
    pub fn set_enospc_windows(
        &self,
        windows: impl IntoIterator<Item = (u64, u64)>,
    ) {
        self.lock().enospc_windows = windows.into_iter().collect();
    }

    /// Schedule fsync-failure windows over the same op counter: `sync`
    /// ops falling inside fail (data may sit in volatile cache), other
    /// ops are untouched.
    pub fn set_fsync_fail_windows(
        &self,
        windows: impl IntoIterator<Item = (u64, u64)>,
    ) {
        self.lock().fsync_windows = windows.into_iter().collect();
    }

    /// Manually start/stop an ENOSPC condition (wall-clock-scheduled
    /// chaos, where op ordinals are not known in advance).
    pub fn set_enospc(&self, on: bool) {
        self.lock().enospc_on = on;
    }

    /// Manually start/stop fsync failure.
    pub fn set_fsync_fail(&self, on: bool) {
        self.lock().fsync_fail_on = on;
    }

    /// Is the disk-full condition active right now (manual toggle or
    /// the *next* op ordinal falling in a scheduled window)?
    pub fn enospc_active(&self) -> bool {
        let s = self.lock();
        let next = s.charged + 1;
        s.enospc_on
            || s.enospc_windows
                .iter()
                .any(|&(a, b)| next >= a && next <= b)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Has the simulated crash happened?
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Mutating operations charged so far.
    pub fn ops_charged(&self) -> u64 {
        self.lock().charged
    }

    /// The error every operation returns once the process is "dead".
    fn dead() -> Error {
        Error::Io("simulated crash: process is dead".into())
    }

    /// Fail if already crashed (guards reads too). Public so other fault
    /// channels — the WAL's log store — can share one plan.
    pub fn check_alive(&self) -> Result<()> {
        if self.crashed() {
            Err(Self::dead())
        } else {
            Ok(())
        }
    }

    /// Charge one mutating op. `Ok(())` means the op proceeds normally;
    /// `Err` means this op crashed (the caller must not apply it, except
    /// for a torn prefix), fell in an ENOSPC window (transient: the op
    /// fails but the process lives), or the process was already dead.
    /// Public for the same reason as [`FaultPlan::check_alive`].
    pub fn charge(&self) -> Result<()> {
        self.charge_kind(false)
    }

    /// [`FaultPlan::charge`] for a `sync` op: same crash budget and
    /// counter, but consults the fsync-failure schedule instead of the
    /// ENOSPC schedule (a full disk still fsyncs; a broken fsync still
    /// accepts writes into cache).
    pub fn charge_sync(&self) -> Result<()> {
        self.charge_kind(true)
    }

    fn charge_kind(&self, sync_op: bool) -> Result<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(Self::dead());
        }
        s.charged += 1;
        if let Some(rem) = &mut s.remaining {
            if *rem <= 1 {
                s.crashed = true;
                return Err(Error::Io(format!(
                    "simulated crash at mutating op {}",
                    s.charged
                )));
            }
            *rem -= 1;
        }
        let op = s.charged;
        let transient = if sync_op {
            s.fsync_fail_on
                || s.fsync_windows.iter().any(|&(a, b)| op >= a && op <= b)
        } else {
            s.enospc_on
                || s.enospc_windows.iter().any(|&(a, b)| op >= a && op <= b)
        };
        if transient {
            return Err(if sync_op {
                Error::Io(format!("simulated fsync failure at op {op}"))
            } else {
                Error::Io(format!(
                    "no space left on device (simulated, op {op})"
                ))
            });
        }
        Ok(())
    }
}

/// A [`DiskManager`] that crashes on schedule (see module docs), and can
/// additionally inject *transient* read failures: a schedule of 1-based
/// `read_page` ordinals that each fail exactly once with an I/O error.
/// The ordinal counter advances on every read attempt — including the
/// failing ones — so k *consecutive* ordinals make one fetch fail k times
/// in a row before a retry can succeed, which is exactly the shape a
/// bounded retry policy needs to be tested against.
pub struct FaultDisk {
    inner: Box<dyn DiskManager>,
    plan: FaultPlan,
    /// When the crashing op is a page write, persist this many leading
    /// bytes of the new image over the old page (a torn write). `None`
    /// drops the crashing write entirely.
    torn_bytes: Option<usize>,
    /// 1-based `read_page` ordinals that fail once each (flaky media,
    /// not a crash: the data underneath is intact).
    transient_reads: std::collections::BTreeSet<u64>,
    /// `read_page` calls issued so far.
    reads_issued: u64,
}

impl FaultDisk {
    /// Wrap `inner` under `plan`, dropping the crashing write whole.
    pub fn new(inner: Box<dyn DiskManager>, plan: FaultPlan) -> Self {
        FaultDisk {
            inner,
            plan,
            torn_bytes: None,
            transient_reads: Default::default(),
            reads_issued: 0,
        }
    }

    /// Wrap `inner` under `plan`; the crashing page write persists only
    /// its first `bytes` bytes (clamped to the page size).
    pub fn with_torn_writes(
        inner: Box<dyn DiskManager>,
        plan: FaultPlan,
        bytes: usize,
    ) -> Self {
        FaultDisk {
            inner,
            plan,
            torn_bytes: Some(bytes.min(PAGE_SIZE)),
            transient_reads: Default::default(),
            reads_issued: 0,
        }
    }

    /// Schedule transient read failures: each listed 1-based `read_page`
    /// ordinal fails once with an I/O error and succeeds if reissued.
    pub fn set_transient_reads(
        &mut self,
        failing_ops: impl IntoIterator<Item = u64>,
    ) {
        self.transient_reads = failing_ops.into_iter().collect();
    }

    /// `read_page` calls issued so far (for sizing a transient schedule).
    pub fn reads_issued(&self) -> u64 {
        self.reads_issued
    }

    /// Splice the torn prefix of `new` over `old`.
    fn tear(&self, old: &Page, new: &Page) -> Option<Page> {
        let k = self.torn_bytes?;
        let mut bytes = Box::new(*old.as_bytes());
        bytes[..k].copy_from_slice(&new.as_bytes()[..k]);
        Some(Page::from_bytes(bytes))
    }
}

impl DiskManager for FaultDisk {
    fn create_file(&mut self) -> Result<FileId> {
        self.plan.charge()?;
        self.inner.create_file()
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.plan.charge()?;
        self.inner.drop_file(file)
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.plan.check_alive()?;
        self.inner.page_count(file)
    }

    fn read_page(&mut self, file: FileId, page_no: u32) -> Result<Page> {
        self.plan.check_alive()?;
        self.reads_issued += 1;
        if self.transient_reads.remove(&self.reads_issued) {
            return Err(Error::Io(format!(
                "transient read error at read op {} ({file:?} page {page_no})",
                self.reads_issued
            )));
        }
        self.inner.read_page(file, page_no)
    }

    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        let was_alive = !self.plan.crashed();
        if let Err(e) = self.plan.charge() {
            // The write that *causes* the crash may persist a torn
            // prefix; writes after the crash persist nothing, and a
            // *transient* failure (ENOSPC window, plan still alive)
            // drops the write whole.
            if was_alive && self.plan.crashed() {
                if let Some(torn) = self
                    .inner
                    .read_page(file, page_no)
                    .ok()
                    .and_then(|old| self.tear(&old, page))
                {
                    let _ = self.inner.write_page(file, page_no, &torn);
                }
            }
            return Err(e);
        }
        self.inner.write_page(file, page_no, page)
    }

    fn append_page(&mut self, file: FileId, page: &Page) -> Result<u32> {
        self.plan.charge()?;
        self.inner.append_page(file, page)
    }

    fn truncate(&mut self, file: FileId) -> Result<()> {
        self.plan.charge()?;
        self.inner.truncate(file)
    }

    fn sync(&mut self, file: FileId) -> Result<()> {
        self.plan.charge_sync()?;
        self.inner.sync(file)
    }

    fn files(&self) -> Vec<FileId> {
        self.inner.files()
    }
}

/// A cloneable handle over one shared [`MemDisk`]: the surviving bytes of
/// a crashed in-memory database, reopenable by the next incarnation.
#[derive(Clone, Default)]
pub struct SharedMemDisk {
    inner: Arc<Mutex<MemDisk>>,
}

impl SharedMemDisk {
    /// An empty shared disk.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemDisk> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl DiskManager for SharedMemDisk {
    fn create_file(&mut self) -> Result<FileId> {
        self.lock().create_file()
    }

    fn drop_file(&mut self, file: FileId) -> Result<()> {
        self.lock().drop_file(file)
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.lock().page_count(file)
    }

    fn read_page(&mut self, file: FileId, page_no: u32) -> Result<Page> {
        self.lock().read_page(file, page_no)
    }

    fn write_page(
        &mut self,
        file: FileId,
        page_no: u32,
        page: &Page,
    ) -> Result<()> {
        self.lock().write_page(file, page_no, page)
    }

    fn append_page(&mut self, file: FileId, page: &Page) -> Result<u32> {
        self.lock().append_page(file, page)
    }

    fn truncate(&mut self, file: FileId) -> Result<()> {
        self.lock().truncate(file)
    }

    fn sync(&mut self, file: FileId) -> Result<()> {
        self.lock().sync(file)
    }

    fn files(&self) -> Vec<FileId> {
        self.lock().files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn page_of(byte: u8) -> Page {
        let mut p = Page::new(PageKind::Data);
        p.push_row(4, &[byte; 4]).unwrap();
        p
    }

    #[test]
    fn budget_counts_only_mutations_and_kills_the_process() {
        let plan = FaultPlan::new(Some(3));
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), plan.clone());
        let f = disk.create_file().unwrap(); // op 1
        disk.append_page(f, &page_of(1)).unwrap(); // op 2
        for _ in 0..10 {
            disk.read_page(f, 0).unwrap(); // reads are free
        }
        assert_eq!(plan.ops_charged(), 2);
        assert!(!plan.crashed());
        // Op 3 crashes: the write is dropped whole.
        assert!(disk.write_page(f, 0, &page_of(9)).is_err());
        assert!(plan.crashed());
        // Dead process: everything fails, nothing further is charged.
        assert!(disk.read_page(f, 0).is_err());
        assert!(disk.append_page(f, &page_of(2)).is_err());
        assert!(disk.sync(f).is_err());
        assert_eq!(plan.ops_charged(), 3);
    }

    #[test]
    fn dropped_write_leaves_the_old_image() {
        let shared = SharedMemDisk::new();
        let plan = FaultPlan::new(Some(3));
        let mut disk = FaultDisk::new(Box::new(shared.clone()), plan);
        let f = disk.create_file().unwrap();
        disk.append_page(f, &page_of(1)).unwrap();
        assert!(disk.write_page(f, 0, &page_of(9)).is_err());
        // Reopen the surviving bytes without the fault wrapper.
        let mut survivor = shared;
        let p = survivor.read_page(f, 0).unwrap();
        assert_eq!(p.row(4, 0).unwrap(), &[1; 4], "old image survives");
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let shared = SharedMemDisk::new();
        let plan = FaultPlan::new(Some(3));
        let mut disk = FaultDisk::with_torn_writes(
            Box::new(shared.clone()),
            plan,
            100,
        );
        let f = disk.create_file().unwrap();
        disk.append_page(f, &page_of(1)).unwrap();
        assert!(disk.write_page(f, 0, &page_of(9)).is_err());
        let mut survivor = shared;
        let got = survivor.read_page(f, 0).unwrap();
        let old = page_of(1);
        let new = page_of(9);
        assert_eq!(&got.as_bytes()[..100], &new.as_bytes()[..100]);
        assert_eq!(&got.as_bytes()[100..], &old.as_bytes()[100..]);
    }

    #[test]
    fn dry_run_counts_without_crashing() {
        let plan = FaultPlan::new(None);
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), plan.clone());
        let f = disk.create_file().unwrap();
        for _ in 0..5 {
            disk.append_page(f, &page_of(0)).unwrap();
        }
        disk.truncate(f).unwrap();
        disk.drop_file(f).unwrap();
        assert_eq!(plan.ops_charged(), 8);
        assert!(!plan.crashed());
    }

    #[test]
    fn transient_reads_fail_once_and_then_succeed() {
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), FaultPlan::new(None));
        let f = disk.create_file().unwrap();
        disk.append_page(f, &page_of(5)).unwrap();
        // Read ops 2 and 3 fail; everything else is healthy.
        disk.set_transient_reads([2, 3]);
        disk.read_page(f, 0).unwrap(); // op 1
        assert!(disk.read_page(f, 0).is_err()); // op 2: transient failure
        assert!(disk.read_page(f, 0).is_err()); // op 3: consecutive failure
        let p = disk.read_page(f, 0).unwrap(); // op 4: media recovered
        assert_eq!(p.row(4, 0).unwrap(), &[5; 4], "data was never damaged");
        assert_eq!(disk.reads_issued(), 4);
        assert!(!disk.plan.crashed(), "transient faults are not crashes");
    }

    #[test]
    fn enospc_window_fails_writes_but_advances_the_schedule() {
        let plan = FaultPlan::new(None);
        plan.set_enospc_windows([(3, 4)]);
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), plan.clone());
        let f = disk.create_file().unwrap(); // op 1
        disk.append_page(f, &page_of(1)).unwrap(); // op 2
        assert!(plan.enospc_active(), "next op falls in the window");
        // Ops 3 and 4: disk full. The failing ops still advance the
        // counter, so the window passes even under blind retry.
        let e = disk.append_page(f, &page_of(2)).unwrap_err();
        assert!(e.to_string().contains("no space left"), "{e}");
        assert!(disk.write_page(f, 0, &page_of(3)).is_err()); // op 4
        assert!(!plan.crashed(), "enospc is transient, not a crash");
        assert!(!plan.enospc_active());
        // Op 5: space recovered; reads were never affected.
        disk.append_page(f, &page_of(2)).unwrap();
        assert_eq!(
            disk.read_page(f, 0).unwrap().row(4, 0).unwrap(),
            &[1; 4]
        );
        assert_eq!(plan.ops_charged(), 5);
    }

    #[test]
    fn fsync_window_fails_only_sync_ops() {
        let plan = FaultPlan::new(None);
        plan.set_fsync_fail_windows([(3, 3)]);
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), plan.clone());
        let f = disk.create_file().unwrap(); // op 1
        disk.append_page(f, &page_of(1)).unwrap(); // op 2
        let e = disk.sync(f).unwrap_err(); // op 3: fsync fails
        assert!(e.to_string().contains("fsync"), "{e}");
        assert!(!plan.crashed());
        disk.sync(f).unwrap(); // op 4: recovered
    }

    #[test]
    fn manual_toggles_gate_faults_without_a_schedule() {
        let plan = FaultPlan::new(None);
        let mut disk =
            FaultDisk::new(Box::new(MemDisk::new()), plan.clone());
        let f = disk.create_file().unwrap();
        plan.set_enospc(true);
        assert!(plan.enospc_active());
        assert!(disk.append_page(f, &page_of(1)).is_err());
        plan.set_enospc(false);
        disk.append_page(f, &page_of(1)).unwrap();
        plan.set_fsync_fail(true);
        assert!(disk.sync(f).is_err());
        assert!(
            disk.write_page(f, 0, &page_of(2)).is_ok(),
            "fsync failure leaves plain writes alone"
        );
        plan.set_fsync_fail(false);
        disk.sync(f).unwrap();
    }

    #[test]
    fn shared_mem_disk_satisfies_the_disk_contract() {
        // Same exercise the concrete disks run in disk.rs, via the
        // shared handle.
        let mut disk = SharedMemDisk::new();
        let f = disk.create_file().unwrap();
        disk.append_page(f, &page_of(3)).unwrap();
        let clone = disk.clone();
        let mut other = clone;
        assert_eq!(other.page_count(f).unwrap(), 1);
        other.write_page(f, 0, &page_of(4)).unwrap();
        assert_eq!(
            disk.read_page(f, 0).unwrap().row(4, 0).unwrap(),
            &[4; 4]
        );
        assert_eq!(disk.files(), vec![f]);
        disk.drop_file(f).unwrap();
        assert!(other.read_page(f, 0).is_err());
    }
}
