//! ISAM files: sorted data pages under a static multi-level directory.
//!
//! `modify R to isam on k where fillfactor = F` sorts the rows, writes data
//! pages filled to the fill factor, then builds a directory of first keys —
//! one entry per child page, key-only (the child page number is implicit in
//! the entry's position, Ingres-style), so a 1024-byte directory page
//! indexes 253 children. Keyed access descends one directory page per
//! level, then walks the data page's overflow chain; a sequential scan
//! reads data and overflow pages but *not* the directory (which is why the
//! paper's ISAM scans cost exactly `size - directory` pages).
//!
//! The directory is static: inserted rows go to the overflow chain of the
//! data page their key maps to, and reorganization (`modify`) is the only
//! way to flatten chains — but, as the paper notes, "reorganization does
//! not help to shorten overflow chains, because all versions of a tuple
//! share the same key".

use crate::bloom::Bloom;
use crate::disk::FileId;
use crate::key::KeySpec;
use crate::page::{page_capacity, PageKind, NO_PAGE};
use crate::pager::Pager;
use crate::tuple::TupleId;
use std::cmp::Ordering;
use std::ops::Range;
use tdbms_kernel::{Error, Result};

/// An ISAM file of fixed-width rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsamFile {
    /// The underlying storage file.
    pub file: FileId,
    /// Fixed row width in bytes.
    pub row_width: usize,
    /// Where the key lives in a row.
    pub key: KeySpec,
    /// Number of data pages (pages `0..n_data_pages`).
    pub n_data_pages: u32,
    /// Directory page ranges, leaf level first, root level last. The root
    /// range always has length 1.
    pub levels: Vec<Range<u32>>,
}

impl IsamFile {
    /// Build an ISAM file over a fresh storage file from `rows` (sorted
    /// internally).
    pub fn build(
        pager: &Pager,
        rows: &[Vec<u8>],
        row_width: usize,
        key: KeySpec,
        fillfactor: u8,
    ) -> Result<IsamFile> {
        let file = pager.create_file()?;
        Self::build_into(pager, file, rows, row_width, key, fillfactor)
    }

    /// Build into an existing (truncated) file — used by `modify`.
    pub fn build_into(
        pager: &Pager,
        file: FileId,
        rows: &[Vec<u8>],
        row_width: usize,
        key: KeySpec,
        fillfactor: u8,
    ) -> Result<IsamFile> {
        if pager.page_count(file)? != 0 {
            return Err(Error::Internal(
                "isam build requires an empty file".into(),
            ));
        }
        let mut sorted: Vec<&Vec<u8>> = rows.iter().collect();
        for row in &sorted {
            if row.len() != row_width {
                return Err(Error::RowSize {
                    expected: row_width,
                    got: row.len(),
                });
            }
        }
        sorted.sort_by(|a, b| key.compare(key.extract(a), key.extract(b)));

        let per_page =
            crate::hash::rows_per_page_at_fill(row_width, fillfactor);

        // Data pages, filled to the fill factor.
        let mut first_keys: Vec<Vec<u8>> = Vec::new();
        if sorted.is_empty() {
            pager.append_page(file, PageKind::Data)?;
            first_keys.push(vec![0u8; key.len]);
        }
        for chunk in sorted.chunks(per_page) {
            let page_no = pager.append_page(file, PageKind::Data)?;
            for row in chunk {
                pager.write(file, page_no, |p| {
                    p.push_row(row_width, row)
                })??;
            }
            first_keys.push(key.extract(chunk[0]).to_vec());
        }
        let n_data_pages = first_keys.len() as u32;

        // Directory levels: each level holds the first keys of the level
        // below (level 0 = data pages), `fanout` entries per page, until a
        // level fits in one page (the root). Entries are key-only rows.
        let fanout = page_capacity(key.len);
        let mut levels: Vec<Range<u32>> = Vec::new();
        let mut level_keys = first_keys;
        loop {
            let start = pager.page_count(file)?;
            let mut next_keys: Vec<Vec<u8>> = Vec::new();
            for chunk in level_keys.chunks(fanout) {
                let page_no =
                    pager.append_page(file, PageKind::Directory)?;
                for k in chunk {
                    pager.write(file, page_no, |p| {
                        p.push_row(key.len, k)
                    })??;
                }
                next_keys.push(chunk[0].clone());
            }
            let end = pager.page_count(file)?;
            levels.push(start..end);
            if end - start <= 1 {
                break;
            }
            level_keys = next_keys;
        }
        pager.flush_file(file)?;
        // An ISAM build never spills (chains only grow through inserts),
        // so the chain guard starts empty: every data page's overflow
        // walk is skippable until an insert lands behind it.
        pager.bloom_install(
            file,
            Bloom::sized_for(rows.len().max(16), u64::from(file.0)),
        );
        Ok(IsamFile {
            file,
            row_width,
            key,
            n_data_pages,
            levels,
        })
    }

    /// Number of directory pages (of all levels).
    pub fn n_directory_pages(&self) -> u32 {
        self.levels.iter().map(|r| r.end - r.start).sum()
    }

    /// Number of directory levels (= directory pages read per keyed
    /// access).
    pub fn n_levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Total pages: data + overflow + directory.
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file)
    }

    /// Pages a sequential scan touches: everything except the directory.
    pub fn scannable_pages(&self, pager: &Pager) -> Result<u32> {
        Ok(self.total_pages(pager)? - self.n_directory_pages())
    }

    /// Stored entries at directory level `i` (level 0 is the leaf level,
    /// whose entries are data-page first keys).
    fn entries_of_level(&self, i: usize) -> u32 {
        if i == 0 {
            self.n_data_pages
        } else {
            self.levels[i - 1].end - self.levels[i - 1].start
        }
    }

    /// Read directory entry `idx` (a level-wide index) of level `i`.
    /// Consecutive indices hit the same buffered page, so walking a run of
    /// entries costs one page read.
    fn dir_entry(
        &self,
        pager: &Pager,
        i: usize,
        idx: u32,
    ) -> Result<Vec<u8>> {
        let fanout = page_capacity(self.key.len) as u32;
        let page = self.levels[i].start + idx / fanout;
        let slot = (idx % fanout) as u16;
        pager.read(self.file, page, |p| {
            p.row(self.key.len, slot).map(|r| r.to_vec())
        })?
    }

    /// Descend the directory for `key_bytes`. Returns the inclusive range
    /// `(start, end)` of data pages that may contain the key: the rightmost
    /// page whose first key is below the key (it may hold the key in its
    /// tail), plus every following page whose first key *equals* the key
    /// (duplicate runs).
    ///
    /// A candidate entry range is narrowed level by level, so boundary keys
    /// (a key equal to some page's first key) are handled exactly. For a
    /// key that is not a boundary — every benchmark key — the descent reads
    /// exactly one directory page per level, the paper's keyed-ISAM cost;
    /// a boundary key may touch a second page at a level.
    fn descend(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
    ) -> Result<(u32, u32)> {
        let fanout = page_capacity(self.key.len) as u32;
        let nlevels = self.levels.len();
        // Candidate entry range at the current level, inclusive.
        let mut cs: u32 = 0;
        let mut ce: u32 = self.entries_of_level(nlevels - 1) - 1;
        for i in (0..nlevels).rev() {
            // Narrow [cs, ce] to the children that can contain the key:
            // the rightmost entry below it plus any run of equal entries.
            let mut new_cs = cs;
            let mut new_ce = cs;
            for idx in cs..=ce {
                let entry = self.dir_entry(pager, i, idx)?;
                match self.key.compare(&entry, key_bytes) {
                    Ordering::Less => {
                        new_cs = idx;
                        new_ce = idx;
                    }
                    Ordering::Equal => new_ce = idx,
                    Ordering::Greater => break,
                }
            }
            if i == 0 {
                return Ok((new_cs, new_ce));
            }
            // Expand to the entries those child pages hold, one level down.
            cs = new_cs * fanout;
            ce = ((new_ce + 1) * fanout - 1)
                .min(self.entries_of_level(i - 1) - 1);
        }
        unreachable!("loop returns at the leaf level")
    }

    /// Insert a row: descend to its data page, then place it in the first
    /// chain page with room (appending an overflow page if needed).
    pub fn insert(&self, pager: &Pager, row: &[u8]) -> Result<TupleId> {
        if row.len() != self.row_width {
            return Err(Error::RowSize {
                expected: self.row_width,
                got: row.len(),
            });
        }
        // Insert at the *last* candidate page: for a key equal to some
        // page's first key that is the page which naturally owns it, so
        // uniform update rounds grow every data page's chain evenly.
        let (_start, primary) =
            self.descend(pager, self.key.extract(row))?;
        let mut page_no = primary;
        loop {
            let w = self.row_width;
            let (slot, next) = pager.write(self.file, page_no, |p| {
                if p.has_room(w) {
                    (Some(p.push_row(w, row)), NO_PAGE)
                } else {
                    (None, p.overflow())
                }
            })?;
            if let Some(slot) = slot {
                if page_no != primary {
                    pager.bloom_note_overflow(
                        self.file,
                        self.key.extract(row),
                    );
                }
                return Ok(TupleId::new(page_no, slot?));
            }
            if next == NO_PAGE {
                let of =
                    pager.append_page(self.file, PageKind::Overflow)?;
                pager.write(self.file, page_no, |p| p.set_overflow(of))?;
                let slot = pager.write(self.file, of, |p| {
                    p.push_row(self.row_width, row)
                })??;
                pager.bloom_note_overflow(self.file, self.key.extract(row));
                return Ok(TupleId::new(of, slot));
            }
            page_no = next;
        }
    }

    /// Read the row at `tid`.
    pub fn get(&self, pager: &Pager, tid: TupleId) -> Result<Vec<u8>> {
        pager.read(self.file, tid.page, |p| {
            p.row(self.row_width, tid.slot).map(|r| r.to_vec())
        })?
    }

    /// Overwrite the row at `tid` in place.
    pub fn update(
        &self,
        pager: &Pager,
        tid: TupleId,
        row: &[u8],
    ) -> Result<()> {
        pager.write(self.file, tid.page, |p| {
            p.write_row(self.row_width, tid.slot, row)
        })?
    }

    /// Begin a keyed lookup: descends the directory (one read per level),
    /// then yields every version with the key from the candidate data
    /// pages' chains.
    pub fn lookup(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
    ) -> Result<IsamLookup> {
        let (start, end) = self.descend(pager, key_bytes)?;
        Ok(IsamLookup {
            key: key_bytes.to_vec(),
            page: start,
            data_page: start,
            end_data_page: end,
            slot: 0,
            done: false,
        })
    }

    /// Begin a full scan of data + overflow pages (directory untouched).
    pub fn scan(&self) -> IsamScan {
        IsamScan {
            data_page: 0,
            page: 0,
            slot: 0,
        }
    }
}

/// Cursor over the versions matching one key.
#[derive(Debug, Clone)]
pub struct IsamLookup {
    key: Vec<u8>,
    /// Current page in the current data page's chain.
    page: u32,
    /// Current data (primary) page.
    data_page: u32,
    /// Last candidate data page (inclusive).
    end_data_page: u32,
    slot: u16,
    done: bool,
}

impl IsamLookup {
    /// Advance to the next version with the sought key.
    pub fn next(
        &mut self,
        pager: &Pager,
        isam: &IsamFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        while !self.done {
            let page_no = self.page;
            let start = self.slot;
            let key = &self.key;
            let step = pager.read(isam.file, page_no, |p| {
                let mut s = start;
                while (s as usize) < p.count() {
                    let row = p.row(isam.row_width, s)?;
                    if isam.key.compare(isam.key.extract(row), key)
                        == Ordering::Equal
                    {
                        return Ok::<_, Error>(Err((s, row.to_vec())));
                    }
                    s += 1;
                }
                Ok(Ok(p.overflow()))
            })??;
            match step {
                Err((slot, row)) => {
                    self.slot = slot + 1;
                    return Ok(Some((TupleId::new(page_no, slot), row)));
                }
                Ok(next) => {
                    self.slot = 0;
                    if next != NO_PAGE
                        && page_no == self.data_page
                        && pager.bloom_check(isam.file, &self.key)
                            == Some(false)
                    {
                        // Leaving a data page for its overflow chain, but
                        // the guard says no version of this key was ever
                        // placed on overflow: skip the walk. (Build-time
                        // chains are empty, so overflow rows exist only
                        // via inserts, which always note the key.)
                        if self.data_page < self.end_data_page {
                            self.data_page += 1;
                            self.page = self.data_page;
                        } else {
                            self.done = true;
                        }
                    } else if next != NO_PAGE {
                        self.page = next;
                    } else if self.data_page < self.end_data_page {
                        // Equal-key run continues on the next data page.
                        self.data_page += 1;
                        self.page = self.data_page;
                    } else {
                        self.done = true;
                    }
                }
            }
        }
        Ok(None)
    }
}

/// Cursor over every data/overflow row, data page by data page.
#[derive(Debug, Clone)]
pub struct IsamScan {
    data_page: u32,
    page: u32,
    slot: u16,
}

impl IsamScan {
    /// Advance; `None` once every data page's chain is exhausted.
    pub fn next(
        &mut self,
        pager: &Pager,
        isam: &IsamFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        while self.data_page < isam.n_data_pages {
            let got = pager.read(isam.file, self.page, |p| {
                if (self.slot as usize) < p.count() {
                    Some(
                        p.row(isam.row_width, self.slot)
                            .map(|r| r.to_vec()),
                    )
                } else {
                    self.slot = 0;
                    let next = p.overflow();
                    if next == NO_PAGE {
                        self.data_page += 1;
                        self.page = self.data_page;
                    } else {
                        self.page = next;
                    }
                    None
                }
            })?;
            if let Some(row) = got {
                let tid = TupleId::new(self.page, self.slot);
                self.slot += 1;
                return Ok(Some((tid, row?)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyKind;
    use tdbms_kernel::{AttrDef, Domain, RowCodec, Schema, Value};

    fn make_rows(n: i32, width_pad: u16) -> (RowCodec, Vec<Vec<u8>>) {
        let s = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("pad", Domain::Char(width_pad)),
        ])
        .unwrap();
        let codec = RowCodec::new(&s);
        // Shuffled insertion order to prove build() sorts.
        let mut ids: Vec<i32> = (1..=n).collect();
        ids.reverse();
        let rows = ids
            .iter()
            .map(|i| {
                codec
                    .encode(&[
                        Value::Int(*i as i64),
                        Value::Str("x".into()),
                    ])
                    .unwrap()
            })
            .collect();
        (codec, rows)
    }

    fn key(codec: &RowCodec) -> KeySpec {
        KeySpec::for_attr(codec, 0)
    }

    #[test]
    fn build_produces_paper_page_counts() {
        // 1024 rows at 108 bytes, 100 % fill: 114 data pages + 1 directory.
        let (codec, rows) = make_rows(1024, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        assert_eq!(f.n_data_pages, 114);
        assert_eq!(f.n_directory_pages(), 1);
        assert_eq!(f.n_levels(), 1);
        assert_eq!(f.total_pages(&pager).unwrap(), 115);

        // 50 % fill: 256 data pages; 256 entries exceed one directory page
        // (fanout 253), so two leaf pages plus a root = 3 directory pages.
        let f50 =
            IsamFile::build(&pager, &rows, 108, key(&codec), 50).unwrap();
        assert_eq!(f50.n_data_pages, 256);
        assert_eq!(f50.n_directory_pages(), 3);
        assert_eq!(f50.n_levels(), 2);
        assert_eq!(f50.total_pages(&pager).unwrap(), 259);
    }

    #[test]
    fn keyed_access_costs_levels_plus_chain() {
        let (codec, rows) = make_rows(1024, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let kb = 500i32.to_le_bytes();
        let mut cur = f.lookup(&pager, &kb).unwrap();
        let mut n = 0;
        while let Some((_, row)) = cur.next(&pager, &f).unwrap() {
            assert_eq!(codec.get_i4(&row, 0), 500);
            n += 1;
        }
        assert_eq!(n, 1);
        // 1 directory + 1 data page = the paper's Q02 cost of 2 at UC 0.
        assert_eq!(pager.stats().of(f.file).reads, 2);

        // At 50 % loading the directory has two levels: cost 3 (paper's
        // Q02 at 50 %).
        let f50 =
            IsamFile::build(&pager, &rows, 108, key(&codec), 50).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut cur = f50.lookup(&pager, &kb).unwrap();
        while cur.next(&pager, &f50).unwrap().is_some() {}
        assert_eq!(pager.stats().of(f50.file).reads, 3);
    }

    #[test]
    fn scan_skips_directory_pages() {
        let (codec, rows) = make_rows(1024, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut scan = f.scan();
        let mut n = 0;
        while scan.next(&pager, &f).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1024);
        assert_eq!(pager.stats().of(f.file).reads, 114);
    }

    #[test]
    fn scan_yields_rows_in_key_order() {
        let (codec, rows) = make_rows(100, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        let mut scan = f.scan();
        let mut prev = i32::MIN;
        while let Some((_, row)) = scan.next(&pager, &f).unwrap() {
            let id = codec.get_i4(&row, 0);
            assert!(id > prev);
            prev = id;
        }
        assert_eq!(prev, 100);
    }

    #[test]
    fn inserts_chain_on_the_right_data_page() {
        let (codec, rows) = make_rows(64, 104); // 8 data pages of 9... 64/9=8 pages
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        let v = codec
            .encode(&[Value::Int(12), Value::Str("v".into())])
            .unwrap();
        for _ in 0..12 {
            f.insert(&pager, &v).unwrap();
        }
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let kb = 12i32.to_le_bytes();
        let mut cur = f.lookup(&pager, &kb).unwrap();
        let mut n = 0;
        while cur.next(&pager, &f).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 13);
        // dir (1) + data page + 2 overflow pages (8 full + 12 versions:
        // page had 9, 8 original + 1 new fills it, 11 more → 2 overflow).
        assert_eq!(pager.stats().of(f.file).reads, 4);
        // Unrelated key in another page: still 2 reads.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let kb = 60i32.to_le_bytes();
        let mut cur = f.lookup(&pager, &kb).unwrap();
        while cur.next(&pager, &f).unwrap().is_some() {}
        assert_eq!(pager.stats().of(f.file).reads, 2);
    }

    #[test]
    fn bloom_guard_skips_absent_key_chain_walk() {
        let (codec, rows) = make_rows(64, 104);
        let pager = Pager::in_memory();
        pager.set_bloom_guards(true);
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        // Chain 12 versions of key 12 behind its data page.
        let v = codec
            .encode(&[Value::Int(12), Value::Str("v".into())])
            .unwrap();
        for _ in 0..12 {
            f.insert(&pager, &v).unwrap();
        }
        // Key 11 lives on the same data page but never spilled: the
        // guard stops the lookup before the 2-page overflow walk.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let skips_before = pager.stats().bloom_skips();
        let mut cur = f.lookup(&pager, &11i32.to_le_bytes()).unwrap();
        let mut n = 0;
        while cur.next(&pager, &f).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1);
        assert_eq!(pager.stats().of(f.file).reads, 2); // dir + data only
        assert_eq!(pager.stats().bloom_skips(), skips_before + 1);
        // The spilled key still walks its whole chain.
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut cur = f.lookup(&pager, &12i32.to_le_bytes()).unwrap();
        let mut n = 0;
        while cur.next(&pager, &f).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 13);
        assert_eq!(pager.stats().of(f.file).reads, 4);
    }

    #[test]
    fn equal_key_runs_crossing_pages_are_found() {
        // 30 rows with key 5 span multiple data pages at load.
        let s = Schema::static_relation(vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("pad", Domain::Char(104)),
        ])
        .unwrap();
        let codec = RowCodec::new(&s);
        let mut rows: Vec<Vec<u8>> = Vec::new();
        for i in 1..=5i64 {
            rows.push(
                codec
                    .encode(&[Value::Int(i), Value::Str("a".into())])
                    .unwrap(),
            );
        }
        for _ in 0..30 {
            rows.push(
                codec
                    .encode(&[Value::Int(5), Value::Str("b".into())])
                    .unwrap(),
            );
        }
        for i in 6..=10i64 {
            rows.push(
                codec
                    .encode(&[Value::Int(i), Value::Str("c".into())])
                    .unwrap(),
            );
        }
        let pager = Pager::in_memory();
        let f = IsamFile::build(
            &pager,
            &rows,
            108,
            KeySpec {
                offset: 0,
                len: 4,
                kind: KeyKind::I4,
            },
            100,
        )
        .unwrap();
        let kb = 5i32.to_le_bytes();
        let mut cur = f.lookup(&pager, &kb).unwrap();
        let mut n = 0;
        while cur.next(&pager, &f).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 31);
    }

    #[test]
    fn lookup_of_absent_and_extreme_keys() {
        let (codec, rows) = make_rows(50, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &rows, 108, key(&codec), 100).unwrap();
        for probe in [0i32, 51, 1000, -7] {
            let kb = probe.to_le_bytes();
            let mut cur = f.lookup(&pager, &kb).unwrap();
            assert!(
                cur.next(&pager, &f).unwrap().is_none(),
                "key {probe} should be absent"
            );
        }
    }

    #[test]
    fn empty_build_has_one_data_page_and_root() {
        let (codec, _) = make_rows(0, 104);
        let pager = Pager::in_memory();
        let f =
            IsamFile::build(&pager, &[], 108, key(&codec), 100).unwrap();
        assert_eq!(f.n_data_pages, 1);
        assert_eq!(f.n_directory_pages(), 1);
        let mut scan = f.scan();
        assert!(scan.next(&pager, &f).unwrap().is_none());
    }

    #[test]
    fn three_level_directory() {
        // Force multiple directory levels with a wide key: fanout for a
        // 340-byte key is (1024-12)/340 = 2 entries/page. 9 data pages →
        // levels of 5, 3, 2, 1 pages.
        let s = Schema::static_relation(vec![AttrDef::new(
            "k",
            Domain::Char(340),
        )])
        .unwrap();
        let codec = RowCodec::new(&s);
        let rows: Vec<Vec<u8>> = (0..18)
            .map(|i| {
                codec.encode(&[Value::Str(format!("key{:02}", i))]).unwrap()
            })
            .collect();
        let pager = Pager::in_memory();
        let f = IsamFile::build(
            &pager,
            &rows,
            340,
            KeySpec {
                offset: 0,
                len: 340,
                kind: KeyKind::Bytes,
            },
            100,
        )
        .unwrap();
        assert_eq!(f.n_data_pages, 9); // 2 rows per page
        assert_eq!(f.n_levels(), 4);
        // Every key is findable through the deep directory.
        for i in 0..18 {
            let probe = codec
                .encode(&[Value::Str(format!("key{:02}", i))])
                .unwrap();
            let kb = f.key.extract(&probe).to_vec();
            let mut cur = f.lookup(&pager, &kb).unwrap();
            assert!(
                cur.next(&pager, &f).unwrap().is_some(),
                "key{:02} not found",
                i
            );
        }
    }
}
