//! The 1024-byte slotted page.
//!
//! The prototype inherits Ingres' 1 KiB page. Every page has a 12-byte
//! header followed by fixed-width tuple slots:
//!
//! ```text
//! +--------------+-------------+---------+----------+------------------+
//! | overflow u32 | count u16   | kind u16| lsn u32  | slots ...        |
//! +--------------+-------------+---------+----------+------------------+
//! 0              4             6         8          12             1024
//! ```
//!
//! * `overflow` — page number of the next page in this page's overflow
//!   chain ([`NO_PAGE`] if none). Hash buckets and ISAM data pages grow by
//!   chaining overflow pages, which is exactly the degradation mechanism
//!   the paper measures.
//! * `count` — number of occupied slots.
//! * `kind` — [`PageKind`] tag, for integrity checking.
//! * `lsn` — log sequence number of the last write-ahead-log page image
//!   that produced this page (0 when the page was never logged). Recovery
//!   skips replaying an image onto a page that already carries it.
//!
//! With a 108-byte row this yields 9 tuples per page, and 8 for the
//! 116/124-byte rows of the versioned relation classes — matching the
//! paper's space numbers.

use tdbms_kernel::{Error, Result};

/// Page size in bytes (Ingres-compatible).
pub const PAGE_SIZE: usize = 1024;
/// Bytes of page header before the first slot.
pub const PAGE_HEADER: usize = 12;
/// Sentinel "no page" pointer.
pub const NO_PAGE: u32 = u32::MAX;

/// What role a page plays inside a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Heap data page, hash primary bucket, or ISAM data page.
    Data = 0,
    /// Overflow page chained behind a data page.
    Overflow = 1,
    /// ISAM directory page.
    Directory = 2,
}

impl PageKind {
    fn from_u16(v: u16) -> Result<PageKind> {
        match v {
            0 => Ok(PageKind::Data),
            1 => Ok(PageKind::Overflow),
            2 => Ok(PageKind::Directory),
            _ => Err(Error::Corruption {
                file: None,
                page: None,
                detail: format!("bad page kind tag {v}"),
            }),
        }
    }
}

/// Maximum number of fixed-width rows of `row_width` bytes per page.
pub fn page_capacity(row_width: usize) -> usize {
    (PAGE_SIZE - PAGE_HEADER) / row_width
}

/// An in-memory page image.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page of the given kind with an empty overflow pointer.
    pub fn new(kind: PageKind) -> Page {
        let mut p = Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_overflow(NO_PAGE);
        p.set_kind(kind);
        p
    }

    /// Wrap raw bytes read from disk.
    pub fn from_bytes(bytes: Box<[u8; PAGE_SIZE]>) -> Page {
        Page { bytes }
    }

    /// The raw bytes (for the disk manager).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Next page in this page's overflow chain, or [`NO_PAGE`].
    pub fn overflow(&self) -> u32 {
        u32::from_le_bytes(self.bytes[0..4].try_into().unwrap())
    }

    /// Set the overflow pointer.
    pub fn set_overflow(&mut self, p: u32) {
        self.bytes[0..4].copy_from_slice(&p.to_le_bytes());
    }

    /// Number of occupied slots.
    pub fn count(&self) -> usize {
        u16::from_le_bytes(self.bytes[4..6].try_into().unwrap()) as usize
    }

    fn set_count(&mut self, n: usize) {
        self.bytes[4..6].copy_from_slice(&(n as u16).to_le_bytes());
    }

    /// The page kind tag.
    pub fn kind(&self) -> Result<PageKind> {
        PageKind::from_u16(u16::from_le_bytes(
            self.bytes[6..8].try_into().unwrap(),
        ))
    }

    /// Set the page kind tag.
    pub fn set_kind(&mut self, k: PageKind) {
        self.bytes[6..8].copy_from_slice(&(k as u16).to_le_bytes());
    }

    /// Log sequence number of the last WAL image of this page (0 when the
    /// page has never been logged).
    pub fn lsn(&self) -> u32 {
        u32::from_le_bytes(self.bytes[8..12].try_into().unwrap())
    }

    /// Stamp the LSN (done by the WAL when an image is logged).
    pub fn set_lsn(&mut self, lsn: u32) {
        self.bytes[8..12].copy_from_slice(&lsn.to_le_bytes());
    }

    /// True if another `row_width`-byte row fits.
    pub fn has_room(&self, row_width: usize) -> bool {
        self.count() < page_capacity(row_width)
    }

    /// Append a row; returns the slot index.
    pub fn push_row(
        &mut self,
        row_width: usize,
        row: &[u8],
    ) -> Result<u16> {
        if row.len() != row_width {
            return Err(Error::RowSize {
                expected: row_width,
                got: row.len(),
            });
        }
        let n = self.count();
        if n >= page_capacity(row_width) {
            return Err(Error::Internal("push_row on full page".into()));
        }
        let off = PAGE_HEADER + n * row_width;
        self.bytes[off..off + row_width].copy_from_slice(row);
        self.set_count(n + 1);
        Ok(n as u16)
    }

    /// Borrow the row in `slot`.
    pub fn row(&self, row_width: usize, slot: u16) -> Result<&[u8]> {
        if (slot as usize) >= self.count() {
            return Err(Error::Corruption {
                file: None,
                page: None,
                detail: format!(
                    "slot {slot} out of range (count {})",
                    self.count()
                ),
            });
        }
        let off = PAGE_HEADER + slot as usize * row_width;
        Ok(&self.bytes[off..off + row_width])
    }

    /// Overwrite the row in `slot`.
    pub fn write_row(
        &mut self,
        row_width: usize,
        slot: u16,
        row: &[u8],
    ) -> Result<()> {
        if row.len() != row_width {
            return Err(Error::RowSize {
                expected: row_width,
                got: row.len(),
            });
        }
        if (slot as usize) >= self.count() {
            return Err(Error::Internal(format!(
                "write to empty slot {slot}"
            )));
        }
        let off = PAGE_HEADER + slot as usize * row_width;
        self.bytes[off..off + row_width].copy_from_slice(row);
        Ok(())
    }

    /// Remove the row in `slot` by moving the last row into its place
    /// (order-destroying compaction; used only by static relations, which
    /// have no version identity to preserve). Returns the slot that was
    /// vacated at the end of the page.
    pub fn remove_row(
        &mut self,
        row_width: usize,
        slot: u16,
    ) -> Result<u16> {
        let n = self.count();
        if (slot as usize) >= n {
            return Err(Error::Internal(format!(
                "remove empty slot {slot}"
            )));
        }
        let last = n - 1;
        if slot as usize != last {
            let src = PAGE_HEADER + last * row_width;
            let dst = PAGE_HEADER + slot as usize * row_width;
            let (a, b) = self.bytes.split_at_mut(src);
            a[dst..dst + row_width].copy_from_slice(&b[..row_width]);
        }
        self.set_count(last);
        Ok(last as u16)
    }

    /// Iterate over the occupied slots as `(slot, row_bytes)`.
    pub fn rows(
        &self,
        row_width: usize,
    ) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.count()).map(move |i| {
            let off = PAGE_HEADER + i * row_width;
            (i as u16, &self.bytes[off..off + row_width])
        })
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Page {{ kind: {:?}, count: {}, overflow: {} }}",
            self.kind(),
            self.count(),
            if self.overflow() == NO_PAGE {
                "none".to_string()
            } else {
                self.overflow().to_string()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        assert_eq!(page_capacity(108), 9); // static
        assert_eq!(page_capacity(116), 8); // rollback / historical
        assert_eq!(page_capacity(124), 8); // temporal
    }

    #[test]
    fn push_and_read_rows() {
        let mut p = Page::new(PageKind::Data);
        let w = 100;
        for i in 0..page_capacity(w) {
            let row = vec![i as u8; w];
            assert_eq!(p.push_row(w, &row).unwrap() as usize, i);
        }
        assert!(!p.has_room(w));
        assert!(p.push_row(w, &vec![0; w]).is_err());
        assert_eq!(p.row(w, 3).unwrap(), &vec![3u8; w][..]);
        assert_eq!(p.rows(w).count(), page_capacity(w));
    }

    #[test]
    fn overflow_pointer_roundtrip() {
        let mut p = Page::new(PageKind::Data);
        assert_eq!(p.overflow(), NO_PAGE);
        p.set_overflow(42);
        assert_eq!(p.overflow(), 42);
    }

    #[test]
    fn lsn_roundtrip_and_independence() {
        // The LSN lives in the spare header word: stamping it must not
        // disturb the overflow pointer, count, kind, or any slot.
        let mut p = Page::new(PageKind::Overflow);
        assert_eq!(p.lsn(), 0, "fresh pages are unlogged");
        p.set_overflow(7);
        p.push_row(4, &[1, 2, 3, 4]).unwrap();
        p.set_lsn(0xDEAD_BEEF);
        assert_eq!(p.lsn(), 0xDEAD_BEEF);
        assert_eq!(p.overflow(), 7);
        assert_eq!(p.count(), 1);
        assert_eq!(p.kind().unwrap(), PageKind::Overflow);
        assert_eq!(p.row(4, 0).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn remove_compacts_with_last_row() {
        let mut p = Page::new(PageKind::Data);
        let w = 200;
        for i in 0..4u8 {
            p.push_row(w, &vec![i; w]).unwrap();
        }
        p.remove_row(w, 1).unwrap();
        assert_eq!(p.count(), 3);
        assert_eq!(p.row(w, 1).unwrap()[0], 3); // last row moved in
        assert_eq!(p.row(w, 0).unwrap()[0], 0);
        assert!(p.row(w, 3).is_err());
    }

    #[test]
    fn kind_tag_roundtrip() {
        let p = Page::new(PageKind::Directory);
        assert_eq!(p.kind().unwrap(), PageKind::Directory);
        let mut raw = Box::new([0u8; PAGE_SIZE]);
        raw[6] = 9; // invalid tag
        assert!(Page::from_bytes(raw).kind().is_err());
    }

    #[test]
    fn row_size_mismatch_is_rejected() {
        let mut p = Page::new(PageKind::Data);
        assert!(matches!(
            p.push_row(10, &[0u8; 9]),
            Err(Error::RowSize {
                expected: 10,
                got: 9
            })
        ));
    }
}
