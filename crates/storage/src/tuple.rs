//! Tuple identifiers.

/// Physical address of a stored tuple: page number within the relation's
/// file, plus slot within the page.
///
/// Tuple ids are stable for versioned relations (rollback / historical /
/// temporal never physically remove rows); static relations may move the
/// last row of a page into a deleted slot, invalidating that row's previous
/// id — callers that delete collect ids first and delete from the highest
/// slot down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Page number within the relation's file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(page: u32, slot: u16) -> Self {
        TupleId { page, slot }
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_page_major() {
        assert!(TupleId::new(1, 5) < TupleId::new(2, 0));
        assert!(TupleId::new(1, 5) < TupleId::new(1, 6));
    }

    #[test]
    fn displays_as_page_slot() {
        assert_eq!(TupleId::new(3, 7).to_string(), "3:7");
    }
}
