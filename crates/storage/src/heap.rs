//! Heap files: unordered pages, appended in arrival order.
//!
//! The simplest organization — new rows go on the last page, a full scan
//! reads every page once. Temporary relations created by one-variable
//! detachment are heaps, as are freshly `create`d relations before a
//! `modify`.

use crate::disk::FileId;
use crate::page::PageKind;
use crate::pager::Pager;
use crate::tuple::TupleId;
use tdbms_kernel::Result;

/// An unordered heap file of fixed-width rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFile {
    /// The underlying storage file.
    pub file: FileId,
    /// Fixed row width in bytes.
    pub row_width: usize,
}

impl HeapFile {
    /// Create an empty heap over a fresh file.
    pub fn create(pager: &Pager, row_width: usize) -> Result<HeapFile> {
        let file = pager.create_file()?;
        Ok(HeapFile { file, row_width })
    }

    /// Wrap an existing file as a heap.
    pub fn attach(file: FileId, row_width: usize) -> HeapFile {
        HeapFile { file, row_width }
    }

    /// Insert a row at the end of the file.
    pub fn insert(&self, pager: &Pager, row: &[u8]) -> Result<TupleId> {
        let n = pager.page_count(self.file)?;
        if n > 0 {
            let last = n - 1;
            let w = self.row_width;
            let slot = pager.write(self.file, last, |p| {
                if p.has_room(w) {
                    Some(p.push_row(w, row))
                } else {
                    None
                }
            })?;
            if let Some(slot) = slot {
                return Ok(TupleId::new(last, slot?));
            }
        }
        let page_no = pager.append_page(self.file, PageKind::Data)?;
        let slot = pager.write(self.file, page_no, |p| {
            p.push_row(self.row_width, row)
        })??;
        Ok(TupleId::new(page_no, slot))
    }

    /// Read the row at `tid`.
    pub fn get(&self, pager: &Pager, tid: TupleId) -> Result<Vec<u8>> {
        pager.read(self.file, tid.page, |p| {
            p.row(self.row_width, tid.slot).map(|r| r.to_vec())
        })?
    }

    /// Overwrite the row at `tid` in place.
    pub fn update(
        &self,
        pager: &Pager,
        tid: TupleId,
        row: &[u8],
    ) -> Result<()> {
        pager.write(self.file, tid.page, |p| {
            p.write_row(self.row_width, tid.slot, row)
        })?
    }

    /// Physically remove the row at `tid` (compacting within the page).
    /// Only static relations do this; versioned relations delete logically
    /// by stamping a stop time.
    pub fn delete(&self, pager: &Pager, tid: TupleId) -> Result<()> {
        pager.write(self.file, tid.page, |p| {
            p.remove_row(self.row_width, tid.slot).map(|_| ())
        })?
    }

    /// Total pages (all are data pages for a heap).
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file)
    }

    /// Begin a full scan.
    pub fn scan(&self) -> HeapScan {
        HeapScan { page: 0, slot: 0 }
    }
}

/// Cursor over every row of a heap, in physical order.
///
/// Holds no borrow of the pager, so callers can interleave access to other
/// relations (as tuple substitution does) between `next` calls.
#[derive(Debug, Clone)]
pub struct HeapScan {
    page: u32,
    slot: u16,
}

impl HeapScan {
    /// Advance; `None` at end of file.
    pub fn next(
        &mut self,
        pager: &Pager,
        heap: &HeapFile,
    ) -> Result<Option<(TupleId, Vec<u8>)>> {
        let n = pager.page_count(heap.file)?;
        while self.page < n {
            let got = pager.read(heap.file, self.page, |p| {
                if (self.slot as usize) < p.count() {
                    Some(
                        p.row(heap.row_width, self.slot)
                            .map(|r| r.to_vec()),
                    )
                } else {
                    None
                }
            })?;
            match got {
                Some(row) => {
                    let tid = TupleId::new(self.page, self.slot);
                    self.slot += 1;
                    return Ok(Some((tid, row?)));
                }
                None => {
                    self.page += 1;
                    self.slot = 0;
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: u8, w: usize) -> Vec<u8> {
        vec![v; w]
    }

    #[test]
    fn insert_fills_pages_in_order() {
        let pager = Pager::in_memory();
        let heap = HeapFile::create(&pager, 100).unwrap();
        // 10 rows/page at width 100 (1012 / 100 = 10).
        for i in 0..25u8 {
            heap.insert(&pager, &row(i, 100)).unwrap();
        }
        assert_eq!(heap.total_pages(&pager).unwrap(), 3);
        let mut scan = heap.scan();
        let mut seen = Vec::new();
        while let Some((_, r)) = scan.next(&pager, &heap).unwrap() {
            seen.push(r[0]);
        }
        assert_eq!(seen, (0..25).collect::<Vec<u8>>());
    }

    #[test]
    fn scan_cost_equals_page_count() {
        let pager = Pager::in_memory();
        let heap = HeapFile::create(&pager, 100).unwrap();
        for i in 0..50u8 {
            heap.insert(&pager, &row(i, 100)).unwrap();
        }
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut scan = heap.scan();
        while scan.next(&pager, &heap).unwrap().is_some() {}
        assert_eq!(
            pager.stats().of(heap.file).reads as u32,
            heap.total_pages(&pager).unwrap()
        );
    }

    #[test]
    fn get_update_delete_roundtrip() {
        let pager = Pager::in_memory();
        let heap = HeapFile::create(&pager, 10).unwrap();
        let a = heap.insert(&pager, &row(1, 10)).unwrap();
        let b = heap.insert(&pager, &row(2, 10)).unwrap();
        assert_eq!(heap.get(&pager, a).unwrap(), row(1, 10));
        heap.update(&pager, a, &row(9, 10)).unwrap();
        assert_eq!(heap.get(&pager, a).unwrap(), row(9, 10));
        heap.delete(&pager, a).unwrap();
        // b moved into a's slot (compaction).
        assert_eq!(heap.get(&pager, a).unwrap(), row(2, 10));
        assert!(heap.get(&pager, b).is_err());
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let pager = Pager::in_memory();
        let heap = HeapFile::create(&pager, 10).unwrap();
        let mut scan = heap.scan();
        assert!(scan.next(&pager, &heap).unwrap().is_none());
        assert_eq!(heap.total_pages(&pager).unwrap(), 0);
    }
}
