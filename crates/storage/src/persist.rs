//! Catalog persistence for file-backed databases.
//!
//! The page files of a [`crate::disk::FileDisk`] survive process restarts,
//! but the catalog — schemas, organizations, key attributes, index
//! registrations — lives in memory (the prototype kept it in Ingres'
//! system relations). This module serializes the catalog to a small text
//! file (`catalog.tdbms`) beside the page files, in a line-oriented format
//! with no external dependencies:
//!
//! ```text
//! tdbms-catalog 1
//! relation emp temporal interval 100 7 0
//! attr name c16
//! attr salary i4
//! file hash 0 2 mod 0
//! index emp_salary 1 hash <file spec...>
//! end
//! ```
//!
//! Loading validates that every referenced page file exists and that page
//! counts are consistent with the recorded organization.

use crate::catalog::{Catalog, NamedIndex, StoredRelation};
use crate::hash::HashFile;
use crate::heap::HeapFile;
use crate::isam::IsamFile;
use crate::key::{HashFn, KeySpec};
use crate::pager::Pager;
use crate::relfile::RelFile;
use crate::secondary::{IndexStructure, SecondaryIndex};
use std::fmt::Write as _;
use std::path::Path;
use tdbms_kernel::{
    AttrDef, DatabaseClass, Domain, Error, Result, RowCodec, Schema,
    TemporalKind,
};

const MAGIC: &str = "tdbms-catalog 1";

fn hashfn_str(h: HashFn) -> &'static str {
    match h {
        HashFn::Mod => "mod",
        HashFn::Multiplicative => "mult",
    }
}

fn parse_hashfn(s: &str) -> Result<HashFn> {
    match s {
        "mod" => Ok(HashFn::Mod),
        "mult" => Ok(HashFn::Multiplicative),
        _ => Err(Error::Io(format!("bad hash function {s:?} in catalog"))),
    }
}

/// Serialize a file organization: the tokens after `file `.
fn write_relfile(out: &mut String, f: &RelFile, key_attr: Option<usize>) {
    match f {
        RelFile::Heap(h) => {
            writeln!(out, "file heap {}", h.file.0).unwrap();
        }
        RelFile::Hash(h) => {
            writeln!(
                out,
                "file hash {} {} {} {}",
                h.file.0,
                h.nbuckets,
                hashfn_str(h.hashfn),
                key_attr.expect("hash files are keyed"),
            )
            .unwrap();
        }
        RelFile::Isam(i) => {
            let levels: Vec<String> = i
                .levels
                .iter()
                .map(|r| format!("{}:{}", r.start, r.end))
                .collect();
            writeln!(
                out,
                "file isam {} {} {} {}",
                i.file.0,
                i.n_data_pages,
                key_attr.expect("isam files are keyed"),
                levels.join(","),
            )
            .unwrap();
        }
    }
}

/// Parse the tokens after `file `, rebuilding the organization descriptor.
fn parse_relfile(
    tokens: &[&str],
    codec: &RowCodec,
    row_width: usize,
) -> Result<(RelFile, Option<usize>)> {
    let bad = || Error::Io(format!("bad file spec {tokens:?} in catalog"));
    match tokens {
        ["heap", id] => {
            let id: u32 = id.parse().map_err(|_| bad())?;
            Ok((
                RelFile::Heap(HeapFile::attach(
                    crate::disk::FileId(id),
                    row_width,
                )),
                None,
            ))
        }
        ["hash", id, nbuckets, hashfn, key_attr] => {
            let id: u32 = id.parse().map_err(|_| bad())?;
            let nbuckets: u32 = nbuckets.parse().map_err(|_| bad())?;
            let key_attr: usize = key_attr.parse().map_err(|_| bad())?;
            let key = KeySpec::for_attr(codec, key_attr);
            Ok((
                RelFile::Hash(HashFile {
                    file: crate::disk::FileId(id),
                    row_width,
                    nbuckets,
                    key,
                    hashfn: parse_hashfn(hashfn)?,
                }),
                Some(key_attr),
            ))
        }
        ["isam", id, n_data, key_attr, levels] => {
            let id: u32 = id.parse().map_err(|_| bad())?;
            let n_data_pages: u32 = n_data.parse().map_err(|_| bad())?;
            let key_attr: usize = key_attr.parse().map_err(|_| bad())?;
            let key = KeySpec::for_attr(codec, key_attr);
            let mut ranges = Vec::new();
            for part in levels.split(',') {
                let (s, e) = part.split_once(':').ok_or_else(bad)?;
                ranges.push(
                    s.parse().map_err(|_| bad())?
                        ..e.parse().map_err(|_| bad())?,
                );
            }
            Ok((
                RelFile::Isam(IsamFile {
                    file: crate::disk::FileId(id),
                    row_width,
                    key,
                    n_data_pages,
                    levels: ranges,
                }),
                Some(key_attr),
            ))
        }
        _ => Err(bad()),
    }
}

/// Serialize the catalog to its line-oriented text form. The WAL embeds
/// this text in commit records so recovery restores the exact catalog the
/// committed state was described by.
pub fn encode_catalog(catalog: &Catalog) -> String {
    let mut out = String::new();
    writeln!(out, "{MAGIC}").unwrap();
    for (_, rel) in catalog.iter() {
        if rel.temporary {
            continue;
        }
        writeln!(
            out,
            "relation {} {} {} {} {}",
            rel.name,
            rel.schema.class(),
            rel.schema.kind(),
            rel.fillfactor,
            rel.tuple_count,
        )
        .unwrap();
        for a in rel.schema.explicit_attrs() {
            writeln!(out, "attr {} {}", a.name, a.domain).unwrap();
        }
        write_relfile(&mut out, &rel.file, rel.key_attr);
        if let Some(h) = &rel.history {
            writeln!(
                out,
                "history {} {} {}",
                h.file_id().0,
                h.rows(),
                h.max_stop().0,
            )
            .unwrap();
        }
        for ix in &rel.indexes {
            let key = ix.index.target_attr();
            write!(
                out,
                "index {} {} {} {} ",
                ix.name,
                ix.attr,
                match ix.index.structure() {
                    IndexStructure::Heap => "heap",
                    IndexStructure::Hash => "hash",
                },
                key.len,
            )
            .unwrap();
            write_relfile(&mut out, ix.index.file(), Some(0));
        }
        writeln!(out, "end").unwrap();
    }
    out
}

/// Write the catalog beside the page files: serialized to a temporary
/// file, fsynced, then atomically renamed over `catalog.tdbms` — a crash
/// leaves either the old catalog or the new one, never a torn mix, and
/// never a rename pointing at unsynced bytes.
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<()> {
    let out = encode_catalog(catalog);
    let tmp = dir.join("catalog.tdbms.tmp");
    {
        let mut fh = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut fh, out.as_bytes())?;
        fh.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join("catalog.tdbms"))?;
    Ok(())
}

/// Load a previously saved catalog; `Ok(None)` when no catalog file
/// exists (a fresh directory).
pub fn load_catalog(dir: &Path, pager: &Pager) -> Result<Option<Catalog>> {
    let path = dir.join("catalog.tdbms");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(None)
        }
        Err(e) => return Err(e.into()),
    };
    decode_catalog(&text, pager).map(Some)
}

/// Parse a serialized catalog, validating every referenced page file
/// against the pager's disk. The inverse of [`encode_catalog`].
pub fn decode_catalog(text: &str, pager: &Pager) -> Result<Catalog> {
    let mut lines = text.lines().peekable();
    if lines.next() != Some(MAGIC) {
        return Err(Error::Io("not a tdbms catalog".into()));
    }
    let mut catalog = Catalog::new();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let head: Vec<&str> = line.split_whitespace().collect();
        let bad = |l: &str| Error::Io(format!("bad catalog line {l:?}"));
        let ["relation", name, class, kind, fillfactor, tuple_count] =
            head.as_slice()
        else {
            return Err(bad(line));
        };
        let class = DatabaseClass::parse(class)?;
        let kind = match *kind {
            "interval" => TemporalKind::Interval,
            "event" => TemporalKind::Event,
            _ => return Err(bad(line)),
        };
        let fillfactor: u8 = fillfactor.parse().map_err(|_| bad(line))?;
        let tuple_count: u64 =
            tuple_count.parse().map_err(|_| bad(line))?;

        // Attributes.
        let mut attrs: Vec<AttrDef> = Vec::new();
        while let Some(l) = lines.peek() {
            let Some(rest) = l.strip_prefix("attr ") else {
                break;
            };
            let (n, d) = rest.split_once(' ').ok_or_else(|| bad(l))?;
            attrs.push(AttrDef::new(n, Domain::parse(d)?));
            lines.next();
        }
        let schema = Schema::new(attrs, class, kind)?;
        let codec = RowCodec::new(&schema);
        let width = schema.row_width();

        // Base file.
        let file_line =
            lines.next().ok_or_else(|| bad("<eof, expected file>"))?;
        let toks: Vec<&str> = file_line
            .strip_prefix("file ")
            .ok_or_else(|| bad(file_line))?
            .split_whitespace()
            .collect();
        let (file, key_attr) = parse_relfile(&toks, &codec, width)?;
        // Sanity: the page file must exist.
        pager.page_count(file.file_id()).map_err(|_| {
            Error::Io(format!(
                "catalog references missing page file {:?}",
                file.file_id()
            ))
        })?;

        // Optional clustered-history sidecar. The cluster directory is
        // rebuilt by scanning the history file; the persisted line keeps
        // only what the scan cannot recover (the high-water stop time)
        // plus the row count as a consistency check.
        let mut history = None;
        if let Some(l) = lines.peek() {
            if let Some(rest) = l.strip_prefix("history ") {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                let [fid, rows, max_stop] = toks.as_slice() else {
                    return Err(bad(l));
                };
                let fid: u32 = fid.parse().map_err(|_| bad(l))?;
                let rows: u64 = rows.parse().map_err(|_| bad(l))?;
                let max_stop: u32 = max_stop.parse().map_err(|_| bad(l))?;
                let key_attr = key_attr.ok_or_else(|| {
                    Error::Io(format!(
                        "history sidecar on unkeyed relation {name}"
                    ))
                })?;
                let h = crate::history::ClusteredHistory::reopen(
                    pager,
                    crate::disk::FileId(fid),
                    width,
                    KeySpec::for_attr(&codec, key_attr),
                    tdbms_kernel::TimeVal(max_stop),
                )?;
                if h.rows() != rows {
                    return Err(Error::Io(format!(
                        "history file {fid} holds {} rows, catalog \
                         recorded {rows}",
                        h.rows()
                    )));
                }
                history = Some(std::sync::Arc::new(h));
                lines.next();
            }
        }

        // Indexes, until `end`.
        let mut indexes: Vec<NamedIndex> = Vec::new();
        loop {
            let l =
                lines.next().ok_or_else(|| bad("<eof, expected end>"))?;
            if l == "end" {
                break;
            }
            let Some(rest) = l.strip_prefix("index ") else {
                return Err(bad(l));
            };
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let [name, attr, structure, key_len, "file", file_toks @ ..] =
                toks.as_slice()
            else {
                return Err(bad(l));
            };
            let attr: usize = attr.parse().map_err(|_| bad(l))?;
            let structure = match *structure {
                "heap" => IndexStructure::Heap,
                "hash" => IndexStructure::Hash,
                _ => return Err(bad(l)),
            };
            let _key_len: usize = key_len.parse().map_err(|_| bad(l))?;
            let target_attr = KeySpec::for_attr(&codec, attr);
            let entry_width = target_attr.len + 6;
            // The index file stores entry rows keyed at offset 0.
            let entry_codec_key = KeySpec {
                offset: 0,
                len: target_attr.len,
                kind: target_attr.kind,
            };
            let (ix_file, _) = parse_relfile_for_entries(
                file_toks,
                entry_width,
                entry_codec_key,
            )?;
            indexes.push(NamedIndex {
                name: name.to_string(),
                attr,
                index: SecondaryIndex::attach(
                    ix_file,
                    target_attr,
                    entry_width,
                    structure,
                ),
            });
        }

        let id = catalog.adopt(StoredRelation {
            name: name.to_string(),
            schema,
            codec,
            file,
            key_attr,
            fillfactor,
            tuple_count,
            temporary: false,
            indexes,
            history,
        })?;
        let _ = id;
    }
    Ok(catalog)
}

/// Like [`parse_relfile`] but for index-entry files, whose "codec" is just
/// the entry key at offset 0.
fn parse_relfile_for_entries(
    tokens: &[&str],
    entry_width: usize,
    key: KeySpec,
) -> Result<(RelFile, Option<usize>)> {
    let bad = || Error::Io(format!("bad index file spec {tokens:?}"));
    match tokens {
        ["heap", id] => {
            let id: u32 = id.parse().map_err(|_| bad())?;
            Ok((
                RelFile::Heap(HeapFile::attach(
                    crate::disk::FileId(id),
                    entry_width,
                )),
                None,
            ))
        }
        ["hash", id, nbuckets, hashfn, _key_attr] => {
            let id: u32 = id.parse().map_err(|_| bad())?;
            let nbuckets: u32 = nbuckets.parse().map_err(|_| bad())?;
            Ok((
                RelFile::Hash(HashFile {
                    file: crate::disk::FileId(id),
                    row_width: entry_width,
                    nbuckets,
                    key,
                    hashfn: parse_hashfn(hashfn)?,
                }),
                Some(0),
            ))
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::Value;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tdbms-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn catalog_roundtrips_through_disk() {
        let dir = tempdir("roundtrip");
        let (saved_rows, saved_meta);
        {
            let pager = Pager::new(Box::new(
                crate::disk::FileDisk::open(&dir).unwrap(),
            ));
            let mut cat = Catalog::new();
            let schema = Schema::new(
                vec![
                    AttrDef::new("id", Domain::I4),
                    AttrDef::new("amount", Domain::I4),
                    AttrDef::new("note", Domain::Char(20)),
                ],
                DatabaseClass::Temporal,
                TemporalKind::Interval,
            )
            .unwrap();
            let id = cat.create_relation(&pager, "t", schema).unwrap();
            {
                let rel = cat.get_mut(id);
                for i in 1..=40i64 {
                    let row = rel
                        .codec
                        .encode(&[
                            Value::Int(i),
                            Value::Int(i * 3),
                            Value::Str("x".into()),
                            Value::Time(tdbms_kernel::TimeVal::from_secs(
                                10,
                            )),
                            Value::Time(tdbms_kernel::TimeVal::FOREVER),
                            Value::Time(tdbms_kernel::TimeVal::from_secs(
                                10,
                            )),
                            Value::Time(tdbms_kernel::TimeVal::FOREVER),
                        ])
                        .unwrap();
                    rel.insert_row(&pager, &row).unwrap();
                }
                rel.modify(
                    &pager,
                    crate::relfile::AccessMethod::Isam,
                    Some(0),
                    50,
                    HashFn::Mod,
                )
                .unwrap();
                rel.create_index(
                    &pager,
                    "t_amount",
                    1,
                    IndexStructure::Hash,
                )
                .unwrap();
            }
            pager.flush_all().unwrap();
            save_catalog(&cat, &dir).unwrap();
            let rel = cat.get(id);
            saved_meta = (
                rel.fillfactor,
                rel.key_attr,
                rel.tuple_count,
                rel.file.method(),
            );
            let mut rows = Vec::new();
            let mut cur = rel.file.scan();
            let pager2 = pager;
            while let Some((_, r)) = cur.next(&pager2, &rel.file).unwrap() {
                rows.push(r);
            }
            saved_rows = rows;
        }
        // "Next process": reopen disk + catalog.
        let pager = Pager::new(Box::new(
            crate::disk::FileDisk::open(&dir).unwrap(),
        ));
        let cat = load_catalog(&dir, &pager).unwrap().expect("catalog");
        let id = cat.id_of("t").expect("relation registered");
        let rel = cat.get(id);
        assert_eq!(
            (
                rel.fillfactor,
                rel.key_attr,
                rel.tuple_count,
                rel.file.method()
            ),
            saved_meta
        );
        assert_eq!(rel.indexes.len(), 1);
        assert_eq!(rel.indexes[0].name, "t_amount");
        // Rows come back identical, through the reconstructed ISAM.
        let mut rows = Vec::new();
        let mut cur = rel.file.scan();
        while let Some((_, r)) = cur.next(&pager, &rel.file).unwrap() {
            rows.push(r);
        }
        assert_eq!(rows, saved_rows);
        // Keyed access works through the reloaded descriptor.
        let kb = 7i32.to_le_bytes();
        let mut cur = rel.file.lookup_eq(&pager, &kb).unwrap().unwrap();
        let (_, row) = cur.next(&pager, &rel.file).unwrap().unwrap();
        assert_eq!(rel.codec.get_i4(&row, 0), 7);
        // The reloaded index finds by amount.
        let tids = rel.indexes[0]
            .index
            .lookup_tids(&pager, &21i32.to_le_bytes())
            .unwrap();
        assert_eq!(tids.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_sidecar_roundtrips_through_the_catalog_text() {
        let pager = Pager::in_memory();
        let mut cat = Catalog::new();
        let schema = Schema::new(
            vec![AttrDef::new("id", Domain::I4)],
            DatabaseClass::Rollback,
            TemporalKind::Interval,
        )
        .unwrap();
        let id = cat.create_relation(&pager, "h", schema).unwrap();
        {
            let rel = cat.get_mut(id);
            rel.modify(
                &pager,
                crate::relfile::AccessMethod::Hash,
                Some(0),
                100,
                HashFn::Mod,
            )
            .unwrap();
            let key = KeySpec::for_attr(&rel.codec, 0);
            let width = rel.schema.row_width();
            let mut h = crate::history::ClusteredHistory::create(
                &pager, width, key,
            )
            .unwrap();
            for i in 1..=5i32 {
                let mut row = vec![0u8; width];
                row[key.offset..key.offset + 4]
                    .copy_from_slice(&i.to_le_bytes());
                h.push(&pager, &row, tdbms_kernel::TimeVal(40 + i as u32))
                    .unwrap();
            }
            rel.history = Some(std::sync::Arc::new(h));
        }
        let text = encode_catalog(&cat);
        assert!(text.contains("history "), "sidecar line emitted");
        let back = decode_catalog(&text, &pager).unwrap();
        let rel = back.get(back.id_of("h").unwrap());
        let h = rel.history.as_ref().expect("history reattached");
        assert_eq!(h.rows(), 5);
        assert_eq!(h.max_stop(), tdbms_kernel::TimeVal(45));
        assert_eq!(h.cluster_pages(&3i32.to_le_bytes()), 1);
    }

    #[test]
    fn missing_catalog_is_none_and_garbage_errors() {
        let dir = tempdir("garbage");
        let pager = Pager::new(Box::new(
            crate::disk::FileDisk::open(&dir).unwrap(),
        ));
        assert!(load_catalog(&dir, &pager).unwrap().is_none());
        std::fs::write(dir.join("catalog.tdbms"), "not a catalog").unwrap();
        assert!(load_catalog(&dir, &pager).is_err());
        std::fs::write(
            dir.join("catalog.tdbms"),
            "tdbms-catalog 1\nrelation r static interval 100 0\nattr x i4\nfile heap 99\nend\n",
        )
        .unwrap();
        // References a page file that does not exist.
        assert!(load_catalog(&dir, &pager).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
