//! Microbenchmarks of the storage engine's access methods: build, keyed
//! lookup, and sequential scan for heap, hash, and ISAM organizations on
//! benchmark-shaped rows.
//!
//! Plain `harness = false` binary on the in-repo timing helper — the
//! build is hermetic, so no Criterion.

use std::hint::black_box;
use tdbms_bench::timing;
use tdbms_kernel::{AttrDef, Domain, RowCodec, Schema, Value};
use tdbms_storage::{
    HashFile, HashFn, HeapFile, IsamFile, KeySpec, Pager, RelFile,
};

fn rows(n: i64) -> (RowCodec, Vec<Vec<u8>>) {
    let schema = Schema::static_relation(vec![
        AttrDef::new("id", Domain::I4),
        AttrDef::new("pad", Domain::Char(104)),
    ])
    .unwrap();
    let codec = RowCodec::new(&schema);
    let rows = (1..=n)
        .map(|i| {
            codec
                .encode(&[Value::Int(i), Value::Str("x".into())])
                .unwrap()
        })
        .collect();
    (codec, rows)
}

fn main() {
    let (codec, data) = rows(1024);
    let key = KeySpec::for_attr(&codec, 0);

    timing::print_header("build");
    timing::bench("hash_1024", 20, || {
        let pager = Pager::in_memory();
        black_box(
            HashFile::build(&pager, &data, 108, key, HashFn::Mod, 100)
                .unwrap(),
        )
    });
    timing::bench("isam_1024", 20, || {
        let pager = Pager::in_memory();
        black_box(IsamFile::build(&pager, &data, 108, key, 100).unwrap())
    });

    let pager = Pager::in_memory();
    let heap = HeapFile::create(&pager, 108).unwrap();
    for r in &data {
        heap.insert(&pager, r).unwrap();
    }
    let files = vec![
        (
            "hash",
            RelFile::Hash(
                HashFile::build(&pager, &data, 108, key, HashFn::Mod, 100)
                    .unwrap(),
            ),
        ),
        (
            "isam",
            RelFile::Isam(
                IsamFile::build(&pager, &data, 108, key, 100).unwrap(),
            ),
        ),
        ("heap", RelFile::Heap(heap)),
    ];

    timing::print_header("lookup_id500");
    for (name, file) in &files {
        if matches!(file, RelFile::Heap(_)) {
            continue;
        }
        timing::bench(name, 100, || {
            let kb = 500i32.to_le_bytes();
            let mut cur = file.lookup_eq(&pager, &kb).unwrap().unwrap();
            while let Some(hit) = cur.next(&pager, file).unwrap() {
                black_box(hit);
            }
        });
    }

    timing::print_header("scan_1024");
    for (name, file) in &files {
        timing::bench(name, 50, || {
            let mut n = 0u64;
            let mut cur = file.scan();
            while cur.next(&pager, file).unwrap().is_some() {
                n += 1;
            }
            black_box(n)
        });
    }
}
