//! `cargo bench --bench figures` regenerates every table and figure of
//! the paper (plain harness, not Criterion: the output IS the artifact).
//! Set TDBMS_MAX_UC (default 14) to trade depth for runtime.

fn main() {
    // Reuse the run_all logic with the default update-count ceiling.
    use tdbms_bench::{
        figures, max_uc_from_env, measure_improvements,
        nonuniform_experiment, run_sweep, BenchConfig,
    };
    use tdbms_kernel::DatabaseClass;

    let max_uc = max_uc_from_env(14);
    let mut sweeps = Vec::new();
    let mut temporal_db = None;
    for cfg in BenchConfig::all() {
        let (data, db) = run_sweep(cfg, max_uc);
        if cfg.class == DatabaseClass::Temporal && cfg.fillfactor == 100 {
            temporal_db = Some(db);
        }
        sweeps.push(data);
    }
    let refs: Vec<&_> = sweeps.iter().collect();
    println!("{}", figures::fig5(&refs));
    let t100 = refs
        .iter()
        .find(|d| {
            d.cfg.class == DatabaseClass::Temporal
                && d.cfg.fillfactor == 100
        })
        .unwrap();
    let r50 = refs
        .iter()
        .find(|d| {
            d.cfg.class == DatabaseClass::Rollback && d.cfg.fillfactor == 50
        })
        .unwrap();
    println!("{}", figures::fig6(t100));
    println!("{}", figures::fig7(&refs));
    println!(
        "{}",
        figures::fig8(t100, &["Q10", "Q09", "Q11", "Q03", "Q12", "Q01"])
    );
    println!("{}", figures::fig8(r50, &["Q10", "Q09", "Q03", "Q01"]));
    let f9: Vec<&_> = refs
        .iter()
        .copied()
        .filter(|d| {
            matches!(
                d.cfg.class,
                DatabaseClass::Rollback | DatabaseClass::Temporal
            )
        })
        .collect();
    println!("{}", figures::fig9(&f9));
    let mut db = temporal_db.expect("temporal sweep ran");
    let rows = measure_improvements(&mut db, t100);
    println!("{}", figures::fig10(&rows, max_uc));
    let rows = nonuniform_experiment(2);
    println!("{}", figures::nonuniform_table(&rows));
}
