//! Wall-clock benchmarks of the twelve queries on the temporal database
//! at update counts 0 and 8 (page accesses are the paper's metric; this
//! confirms they track runtime on the in-memory engine too).
//!
//! Plain `harness = false` binary on the in-repo timing helper — the
//! build is hermetic, so no Criterion.

use std::hint::black_box;
use tdbms_bench::{queries_for, run_sweep, timing, BenchConfig};
use tdbms_kernel::DatabaseClass;

fn main() {
    for uc in [0u32, 8] {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (_, mut db) = run_sweep(cfg, uc);
        timing::print_header(&format!("temporal100_uc{uc}"));
        for q in queries_for(DatabaseClass::Temporal) {
            timing::bench(q.id, 10, || {
                let out = db.execute(black_box(&q.tquel)).unwrap();
                black_box(out.stats.input_pages)
            });
        }
    }
}
