//! Criterion wall-clock benchmarks of the twelve queries on the temporal
//! database at update counts 0 and 8 (page accesses are the paper's
//! metric; this confirms they track runtime on the in-memory engine too).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdbms_bench::{queries_for, run_sweep, BenchConfig};
use tdbms_kernel::DatabaseClass;

fn bench_queries(c: &mut Criterion) {
    for uc in [0u32, 8] {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (_, mut db) = run_sweep(cfg, uc);
        let mut group = c.benchmark_group(format!("temporal100_uc{uc}"));
        group.sample_size(10);
        for q in queries_for(DatabaseClass::Temporal) {
            group.bench_function(q.id, |b| {
                b.iter(|| {
                    let out = db.execute(black_box(&q.tquel)).unwrap();
                    black_box(out.stats.input_pages)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
