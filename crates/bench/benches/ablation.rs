//! Ablations of the design choices DESIGN.md calls out (plain harness:
//! the tables are the artifact).
//!
//! 1. Hash function: uniform `mod` vs. Ingres-like multiplicative hashing
//!    (DESIGN.md substitution 1) — space and scan cost at load time.
//! 2. Buffer frames per relation: the paper's single frame vs. more.
//! 3. History layout: simple vs. clustered version scans.
//! 4. Loading factor: the §6 observation that lower loading wins at high
//!    update counts but costs more at low ones.

use tdbms_bench::{
    measure, queries_for, query_for, run_sweep, workload, BenchConfig,
};
use tdbms_kernel::DatabaseClass;
use tdbms_storage::HashFn;

fn ablation_hash_function() {
    println!("Ablation 1: hash function (static database, 100 % loading)");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "hash fn", "H pages", "Q07 scan", "Q01 keyed"
    );
    for (name, f) in [
        ("mod", HashFn::Mod),
        ("multiplicative", HashFn::Multiplicative),
    ] {
        let cfg = BenchConfig::new(DatabaseClass::Static, 100);
        let mut db = workload::build_database_with_hash(&cfg, f);
        let pages = db.relation_meta(&cfg.rel_h()).unwrap().total_pages;
        let q07 = measure(
            &mut db,
            &query_for("Q07", DatabaseClass::Static).unwrap(),
        );
        let q01 = measure(
            &mut db,
            &query_for("Q01", DatabaseClass::Static).unwrap(),
        );
        println!(
            "{:<16} {:>12} {:>12} {:>12}",
            name, pages, q07.input, q01.input
        );
    }
    println!(
        "(the paper's Ingres hash behaved like the multiplicative row: \
         166 pages where perfect hashing needs 114)\n"
    );
}

fn ablation_buffer_frames() {
    println!("Ablation 2: buffer frames per relation (temporal, UC 4)");
    println!("{:<10} {:>12} {:>12}", "frames", "Q09 input", "Q03 input");
    for frames in [1usize, 4, 32] {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (_, mut db) = run_sweep(cfg, 4);
        db.set_buffer_frames(&cfg.rel_h(), frames).unwrap();
        db.set_buffer_frames(&cfg.rel_i(), frames).unwrap();
        let q09 = measure(&mut db, &query_for("Q09", cfg.class).unwrap());
        let q03 = measure(&mut db, &query_for("Q03", cfg.class).unwrap());
        println!("{:<10} {:>12} {:>12}", frames, q09.input, q03.input);
    }
    println!(
        "(more frames only help re-reads; the paper's 1-frame setup isolates \
         the access-method behaviour)\n"
    );
}

fn ablation_loading_factor() {
    println!("Ablation 3: loading factor crossover (temporal database)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "UC", "Q10 @100%", "Q10 @50%", "Q07 @100%", "Q07 @50%"
    );
    let (d100, _) =
        run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 8);
    let (d50, _) =
        run_sweep(BenchConfig::new(DatabaseClass::Temporal, 50), 8);
    for uc in [0u32, 4, 8] {
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            uc,
            d100.input("Q10", uc).unwrap(),
            d50.input("Q10", uc).unwrap(),
            d100.input("Q07", uc).unwrap(),
            d50.input("Q07", uc).unwrap(),
        );
    }
    println!(
        "(lower loading costs more when the update count is low and less \
         when it is high — the paper's §6 observation)\n"
    );
}

fn ablation_all_queries_track_runtime() {
    println!("Ablation 4: page accesses vs. wall time (temporal, UC 4)");
    println!("{:<6} {:>12} {:>14}", "query", "input pages", "wall time");
    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let (_, mut db) = run_sweep(cfg, 4);
    for q in queries_for(cfg.class) {
        let t = std::time::Instant::now();
        let cost = measure(&mut db, &q);
        let dt = t.elapsed();
        println!("{:<6} {:>12} {:>14?}", q.id, cost.input, dt);
    }
    println!(
        "(the paper used page accesses because they are \"highly correlated \
         with both CPU time and response time\")\n"
    );
}

fn ablation_disk_backend() {
    println!(
        "Ablation 5: disk backend (temporal 100%, UC 2, same page counts)"
    );
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "backend", "Q03 pages", "Q03 time", "Q09 time"
    );
    for backend in ["memory", "file"] {
        let dir = std::env::temp_dir()
            .join(format!("tdbms-ablation-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = if backend == "memory" {
            tdbms_core::Database::in_memory()
        } else {
            tdbms_core::Database::open(&dir).unwrap()
        };
        db.set_clock(tdbms_kernel::Clock::new(
            tdbms_kernel::TimeVal::from_ymd(1980, 3, 1).unwrap(),
            60,
        ));
        db.execute(
            "create temporal interval t (id = i4, amount = i4, seq = i4,              string = c96)",
        )
        .unwrap();
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let _ = &cfg;
        for i in 1..=1024 {
            db.execute(&format!(
                "append to t (id = {i}, amount = {}, seq = 0, string = \"x\")",
                i * 97 % 100_000
            ))
            .unwrap();
        }
        db.execute("modify t to hash on id where fillfactor = 100")
            .unwrap();
        db.execute("range of h is t").unwrap();
        for _ in 0..2 {
            db.execute("replace h (seq = h.seq + 1)").unwrap();
        }
        let time = |db: &mut tdbms_core::Database, q: &str| {
            let t = std::time::Instant::now();
            let out = db.execute(q).unwrap();
            (out.stats.input_pages, t.elapsed())
        };
        let (q03_pages, q03_t) =
            time(&mut db, r#"retrieve (h.id, h.seq) as of "08:00 1/1/80""#);
        let (_, q09_t) = time(
            &mut db,
            r#"retrieve (h.id, h.seq) where h.amount = 97 when h overlap "now""#,
        );
        println!(
            "{:<10} {:>12} {:>14?} {:>14?}",
            backend, q03_pages, q03_t, q09_t
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "(page counts are identical by construction; the file backend pays          real syscalls per miss)\n"
    );
}

fn main() {
    ablation_hash_function();
    ablation_buffer_frames();
    ablation_loading_factor();
    ablation_all_queries_track_runtime();
    ablation_disk_backend();
}
