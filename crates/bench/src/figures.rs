//! Printable reproductions of every figure in the paper's evaluation.
//!
//! Each `fig*` function renders the same rows/series the paper reports,
//! from [`SweepData`] produced by [`crate::sweep::run_sweep`]. Absolute
//! numbers differ from the paper where DESIGN.md documents a substitution
//! (notably the Ingres hash function); the shapes — growth rates, who
//! wins, by what factor — are the reproduction targets.

use crate::analysis::{cost_model, space_growth};
use crate::improvements::Fig10Row;
use crate::queries::QUERY_IDS;
use crate::sweep::{BufferSweepData, SweepData};
use std::fmt::Write as _;

fn opt(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
}

/// Figure 5: space requirements (pages) per database type and loading
/// factor, with growth per update and growth rate.
pub fn fig5(sweeps: &[&SweepData]) -> String {
    let mut s = String::new();
    let n = sweeps.first().map(|d| d.max_uc).unwrap_or(0);
    writeln!(s, "Figure 5: Space Requirements (in Pages)").unwrap();
    writeln!(
        s,
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12} {:>8} {:>8}",
        "Database (loading)",
        "H, UC=0",
        "I, UC=0",
        format!("H, UC={n}"),
        format!("I, UC={n}"),
        "H growth/u",
        "I growth/u",
        "H rate",
        "I rate"
    )
    .unwrap();
    for d in sweeps {
        let gh = space_growth(&d.sizes_h);
        let gi = space_growth(&d.sizes_i);
        let grows = d.cfg.class != tdbms_kernel::DatabaseClass::Static;
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12} {:>8} {:>8}",
            format!("{} ({}%)", d.cfg.class, d.cfg.fillfactor),
            gh.size0,
            gi.size0,
            if grows {
                gh.size_n.to_string()
            } else {
                "-".into()
            },
            if grows {
                gi.size_n.to_string()
            } else {
                "-".into()
            },
            if grows {
                format!("{:.1}", gh.growth_per_update)
            } else {
                "-".into()
            },
            if grows {
                format!("{:.1}", gi.growth_per_update)
            } else {
                "-".into()
            },
            if grows {
                format!("{:.2}", gh.growth_rate)
            } else {
                "-".into()
            },
            if grows {
                format!("{:.2}", gi.growth_rate)
            } else {
                "-".into()
            },
        )
        .unwrap();
    }
    s
}

/// Figure 6: input costs for one database (the paper shows the temporal
/// database with 100 % loading) at every update count.
pub fn fig6(d: &SweepData) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 6: Input Costs for the {} Database with {} % Loading",
        d.cfg.class, d.cfg.fillfactor
    )
    .unwrap();
    write!(s, "{:<6}", "Query").unwrap();
    for uc in 0..=d.max_uc {
        write!(s, "{uc:>7}").unwrap();
    }
    writeln!(s).unwrap();
    for q in QUERY_IDS {
        let Some(costs) = d.costs.get(q) else {
            continue;
        };
        write!(s, "{q:<6}").unwrap();
        for c in costs {
            write!(s, "{:>7}", c.input).unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Figure 7: input pages for the four database types at update counts 0
/// and `max_uc`.
pub fn fig7(sweeps: &[&SweepData]) -> String {
    let mut s = String::new();
    let n = sweeps.first().map(|d| d.max_uc).unwrap_or(0);
    writeln!(
        s,
        "Figure 7: Number of Input Pages for Four Types of Databases"
    )
    .unwrap();
    write!(s, "{:<6}", "Query").unwrap();
    for d in sweeps {
        write!(
            s,
            "{:>22}",
            format!("{} {}%", d.cfg.class, d.cfg.fillfactor)
        )
        .unwrap();
    }
    writeln!(s).unwrap();
    write!(s, "{:<6}", "").unwrap();
    for _ in sweeps {
        write!(s, "{:>11}{:>11}", "UC=0", format!("UC={n}")).unwrap();
    }
    writeln!(s).unwrap();
    for q in QUERY_IDS {
        write!(s, "{q:<6}").unwrap();
        for d in sweeps {
            let grows = d.cfg.class != tdbms_kernel::DatabaseClass::Static;
            write!(s, "{:>11}", opt(d.input(q, 0))).unwrap();
            write!(
                s,
                "{:>11}",
                if grows {
                    opt(d.input(q, n))
                } else {
                    "-".into()
                }
            )
            .unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// Figure 8: the input-page series as an ASCII graph plus a CSV block
/// (the paper plots (a) temporal/100 % and (b) rollback/50 %).
pub fn fig8(d: &SweepData, queries: &[&str]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 8: Input Pages vs. Update Count — {} database, {} % loading",
        d.cfg.class, d.cfg.fillfactor
    )
    .unwrap();
    // CSV block first (machine-readable series).
    write!(s, "uc").unwrap();
    for q in queries {
        write!(s, ",{q}").unwrap();
    }
    writeln!(s).unwrap();
    for uc in 0..=d.max_uc {
        write!(s, "{uc}").unwrap();
        for q in queries {
            write!(s, ",{}", d.input(q, uc).unwrap_or(0)).unwrap();
        }
        writeln!(s).unwrap();
    }
    // ASCII plot: one column per update count, 20 rows of resolution.
    let max = queries
        .iter()
        .filter_map(|q| d.input(q, d.max_uc))
        .max()
        .unwrap_or(1)
        .max(1);
    const HEIGHT: u64 = 20;
    writeln!(s, "\n  input pages (top = {max})").unwrap();
    for level in (1..=HEIGHT).rev() {
        let threshold = max * level / HEIGHT;
        write!(s, "  |").unwrap();
        for uc in 0..=d.max_uc {
            let mut cell = ' ';
            for (k, q) in queries.iter().enumerate() {
                let v = d.input(q, uc).unwrap_or(0);
                let prev_threshold = max * (level - 1) / HEIGHT;
                if v > prev_threshold && v <= threshold {
                    cell = char::from(b'1' + k as u8);
                }
            }
            write!(s, "{cell:>4}").unwrap();
        }
        writeln!(s).unwrap();
    }
    write!(s, "  +").unwrap();
    for _ in 0..=d.max_uc {
        write!(s, "----").unwrap();
    }
    writeln!(s, "  update count 0..{}", d.max_uc).unwrap();
    for (k, q) in queries.iter().enumerate() {
        writeln!(s, "   {} = {q}", char::from(b'1' + k as u8)).unwrap();
    }
    s
}

/// Figure 9: fixed costs, variable costs, and growth rates.
pub fn fig9(sweeps: &[&SweepData]) -> String {
    let mut s = String::new();
    writeln!(s, "Figure 9: Fixed Costs, Variable Costs and Growth Rates")
        .unwrap();
    write!(s, "{:<6}", "Query").unwrap();
    for d in sweeps {
        write!(
            s,
            "{:>30}",
            format!("{} {}%", d.cfg.class, d.cfg.fillfactor)
        )
        .unwrap();
    }
    writeln!(s).unwrap();
    write!(s, "{:<6}", "").unwrap();
    for _ in sweeps {
        write!(s, "{:>12}{:>10}{:>8}", "Fixed", "Variable", "Rate")
            .unwrap();
    }
    writeln!(s).unwrap();
    for q in QUERY_IDS {
        write!(s, "{q:<6}").unwrap();
        for d in sweeps {
            match cost_model(q, d) {
                Some(m) => write!(
                    s,
                    "{:>12}{:>10}{:>8.2}",
                    m.fixed, m.variable, m.growth_rate
                )
                .unwrap(),
                None => {
                    write!(s, "{:>12}{:>10}{:>8}", "-", "-", "-").unwrap()
                }
            }
        }
        writeln!(s).unwrap();
    }
    s
}

/// Figure 10: improvements for the temporal database.
pub fn fig10(rows: &[Fig10Row], max_uc: u32) -> String {
    let mut s = String::new();
    writeln!(s, "Figure 10: Improvements for the Temporal Database")
        .unwrap();
    writeln!(
        s,
        "{:<6}{:>10}{:>10} | {:>8}{:>10} | {:>9}{:>9}{:>9}{:>9}",
        "Query",
        "UC=0",
        format!("UC={max_uc}"),
        "Simple",
        "Clustered",
        "1L heap",
        "1L hash",
        "2L heap",
        "2L hash"
    )
    .unwrap();
    writeln!(
        s,
        "{:<6}{:>20} | {:>18} | {:>36}",
        "",
        "Conventional",
        "2-Level Store",
        format!("Indexed on amount (UC={max_uc})")
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<6}{:>10}{:>10} | {:>8}{:>10} | {:>9}{:>9}{:>9}{:>9}",
            r.query,
            opt(r.conv_uc0),
            opt(r.conv_ucn),
            opt(r.simple),
            opt(r.clustered),
            opt(r.l1_heap),
            opt(r.l1_hash),
            opt(r.l2_heap),
            opt(r.l2_hash),
        )
        .unwrap();
    }
    writeln!(
        s,
        "('-' : not applicable / unchanged from the conventional cost)"
    )
    .unwrap();
    s
}

/// Figure 11 (extension): buffer sensitivity. Input pages per query as
/// the frames-per-relation cap grows; the paper's 1-buffer setup is the
/// leftmost column. A second block reports the buffer hits behind each
/// cell, so thrash-bound queries (large drop, large hit gain) stand out
/// from sequential ones (flat lines).
pub fn fig11(d: &BufferSweepData) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Figure 11: Input Pages vs. Buffer Frames — {} database, {} % \
         loading, UC={}",
        d.cfg.class, d.cfg.fillfactor, d.uc
    )
    .unwrap();
    writeln!(s, "(frames apply per relation, temporaries included; LRU)")
        .unwrap();
    write!(s, "{:<6}", "Query").unwrap();
    for f in &d.frames {
        write!(s, "{:>8}", format!("f={f}")).unwrap();
    }
    writeln!(s).unwrap();
    for q in QUERY_IDS {
        let Some(costs) = d.costs.get(q) else {
            continue;
        };
        write!(s, "{q:<6}").unwrap();
        for c in costs {
            write!(s, "{:>8}", c.cost.input).unwrap();
        }
        writeln!(s).unwrap();
    }
    writeln!(s, "\nBuffer hits (of the same accesses)").unwrap();
    write!(s, "{:<6}", "Query").unwrap();
    for f in &d.frames {
        write!(s, "{:>8}", format!("f={f}")).unwrap();
    }
    writeln!(s).unwrap();
    for q in QUERY_IDS {
        let Some(costs) = d.costs.get(q) else {
            continue;
        };
        write!(s, "{q:<6}").unwrap();
        for c in costs {
            write!(s, "{:>8}", c.hits).unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

/// The §5.4 non-uniform-distribution table.
pub fn nonuniform_table(rows: &[(u32, u64, u64, f64)]) -> String {
    let mut s = String::new();
    writeln!(s, "Section 5.4: Non-uniform (maximum-variance) Updates")
        .unwrap();
    writeln!(
        s,
        "{:>7} {:>10} {:>11} {:>14} {:>17}",
        "avg UC",
        "hot probe",
        "cold probe",
        "weighted avg",
        "uniform (1+2n)"
    )
    .unwrap();
    for (avg, hot, cold, weighted) in rows {
        writeln!(
            s,
            "{:>7} {:>10} {:>11} {:>14.2} {:>17}",
            avg,
            hot,
            cold,
            weighted,
            1 + 2 * avg
        )
        .unwrap();
    }
    writeln!(
        s,
        "(growth rate of the weighted average matches the uniform case, \
         per the paper's analysis)"
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;
    use crate::workload::BenchConfig;
    use tdbms_kernel::DatabaseClass;

    #[test]
    fn renderers_produce_tables() {
        let (t, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 1);
        let (r, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Rollback, 100), 1);
        let sweeps = [&t, &r];
        let f5 = fig5(&sweeps);
        assert!(f5.contains("temporal (100%)"));
        assert!(f5.contains("rollback (100%)"));
        let f6 = fig6(&t);
        assert!(f6.contains("Q12"));
        let f7 = fig7(&sweeps);
        assert!(f7.contains("Q01"));
        let f8 = fig8(&t, &["Q03", "Q09"]);
        assert!(f8.contains("uc,Q03,Q09"));
        let f9 = fig9(&sweeps);
        assert!(f9.contains("Rate"));
        let buf = crate::sweep::run_buffer_sweep(
            BenchConfig::new(DatabaseClass::Temporal, 100),
            1,
            &[1, 2],
        );
        let f11 = fig11(&buf);
        assert!(f11.contains("Figure 11"));
        assert!(f11.contains("f=2"));
        assert!(f11.contains("Buffer hits"));
    }

    #[test]
    fn fig10_renders_improvement_cells() {
        let (sweep, mut db) =
            run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 1);
        let rows =
            crate::improvements::measure_improvements(&mut db, &sweep);
        let table = fig10(&rows, sweep.max_uc);
        assert!(table.contains("Q07"));
        assert!(table.contains("2L hash"));
        // Q05's simple-store cost is a single page.
        let q05 = rows.iter().find(|r| r.query == "Q05").unwrap();
        assert_eq!(q05.simple, Some(1));
    }
}
