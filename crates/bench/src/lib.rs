//! # tdbms-bench
//!
//! The benchmark harness reproducing Section 5 and Figure 10 of the
//! paper: workload generation ([`workload`]), the twelve queries per
//! database class ([`queries`]), update-count sweeps ([`sweep`]), the
//! fixed/variable-cost analysis ([`analysis`]), and printable
//! reproductions of every figure ([`figures`]).

pub mod analysis;
pub mod figures;
pub mod improvements;
pub mod predict;
pub mod queries;
pub mod sweep;
pub mod timing;
pub mod workload;

pub use analysis::{cost_model, fixed_cost, CostModel};
pub use improvements::{
    measure_improvements, nonuniform_experiment, Fig10Row,
};
pub use predict::{predict_json, predict_report, ranking_violations};
pub use queries::{queries_for, query_for, BenchQuery, QUERY_IDS};
pub use sweep::{
    measure, run_buffer_sweep, run_buffer_sweep_threaded, run_scale_sweep,
    run_sweep, run_sweeps_threaded, BufferCost, BufferSweepData, Cost,
    ScaleRound, ScaleSweepData, SweepData,
};
pub use timing::{time_n, TimingStats};
pub use workload::{
    build_database, build_database_with_hash, build_scale_database,
    evolve_scale_round, evolve_single_tuple, evolve_uniform,
    populate_database, populate_scale_database, scale_update_key,
    BenchConfig, ScaleConfig, SCALE_REL,
};

/// Update-count ceiling for harness binaries: `TDBMS_MAX_UC` (default 14,
/// the paper's reporting point; Figure 6 extends to 15).
pub fn max_uc_from_env(default: u32) -> u32 {
    std::env::var("TDBMS_MAX_UC")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Worker-thread count for harness binaries: `--threads N` on the command
/// line, else the `TDBMS_THREADS` environment variable, else 1 (the
/// paper-mode serial driver, whose output is the golden reference).
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) =
            a.strip_prefix("--threads=").and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    std::env::var("TDBMS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}
