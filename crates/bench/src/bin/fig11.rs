//! Regenerate Figure 11 (extension): buffer sensitivity of Q01–Q12 on
//! the temporal database with 100 % loading at UC 14, as the
//! frames-per-relation cap grows 1→8. The paper's 1-buffer methodology
//! is the leftmost column of a measured curve. `--threads N` (or
//! `TDBMS_THREADS`) measures the frame caps in parallel, one database
//! copy per worker; the numbers match the serial sweep exactly.
use tdbms_bench::{
    figures, max_uc_from_env, run_buffer_sweep_threaded, threads_from_args,
    BenchConfig,
};
use tdbms_kernel::DatabaseClass;

fn main() {
    let uc = max_uc_from_env(14);
    let threads = threads_from_args();
    let mut frames: Vec<usize> = (1..=8).collect();
    // The benefit cliff sits at the overflow-chain length (1 + 2n pages
    // per bucket at update count n): a keyed probe walks its whole chain,
    // so LRU reuses nothing until the chain fits. Measure one cap at that
    // knee so the full-scale figure shows it (at small UC it already
    // falls inside 1..=8).
    let chain = 2 * uc as usize + 1;
    if chain > 8 {
        frames.push(chain);
    }
    let data = run_buffer_sweep_threaded(
        BenchConfig::new(DatabaseClass::Temporal, 100),
        uc,
        &frames,
        threads,
    );
    print!("{}", figures::fig11(&data));
}
