//! Regenerate Figure 5: space requirements for the eight test databases.
//! `--threads N` (or `TDBMS_THREADS`) sweeps the eight configurations in
//! parallel; the data is identical at any thread count because each
//! configuration builds its own deterministic database.
use tdbms_bench::{
    figures, max_uc_from_env, run_sweeps_threaded, threads_from_args,
    BenchConfig,
};

fn main() {
    let max_uc = max_uc_from_env(14);
    let threads = threads_from_args();
    let sweeps = run_sweeps_threaded(&BenchConfig::all(), max_uc, threads);
    let refs: Vec<&_> = sweeps.iter().collect();
    print!("{}", figures::fig5(&refs));
}
