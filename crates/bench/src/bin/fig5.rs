//! Regenerate Figure 5: space requirements for the eight test databases.
//! `--threads N` (or `TDBMS_THREADS`) sweeps the eight configurations in
//! parallel; the data is identical at any thread count because each
//! configuration builds its own deterministic database.
//!
//! `--predict` switches to the planner-prediction report: the cost
//! model's estimated input pages next to the measured ones for every
//! query and update count, written as `BENCH_planner.json` (or the
//! `--json PATH` override). Exits nonzero if the estimates fail to
//! reproduce the figures' growth *ordering* — a query whose measured
//! cost grows across update counts while its estimate shrinks.
use tdbms_bench::{
    figures, max_uc_from_env, predict_json, predict_report,
    ranking_violations, run_sweeps_threaded, threads_from_args,
    BenchConfig,
};

fn main() {
    let max_uc = max_uc_from_env(14);
    let threads = threads_from_args();
    let predict = std::env::args().any(|a| a == "--predict");
    let sweeps = run_sweeps_threaded(&BenchConfig::all(), max_uc, threads);
    let refs: Vec<&_> = sweeps.iter().collect();
    if !predict {
        print!("{}", figures::fig5(&refs));
        return;
    }
    let violations = ranking_violations(&refs);
    print!("{}", predict_report(&refs));
    let path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "BENCH_planner.json".to_string());
    match std::fs::write(&path, predict_json(&refs, &violations)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!(
                "invariant artifact-written violated: prediction \
                 report computed but its JSON evidence is lost \
                 (cannot write {path}: {e})"
            );
            std::process::exit(2);
        }
    }
    if !violations.is_empty() {
        eprintln!(
            "planner mis-ranked {} measured growth pair(s):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!(
        "ranking check: estimates reproduce measured growth ordering \
         for all queries"
    );
}
