//! Regenerate Figure 6: input costs for the temporal database, 100 %
//! loading, at every update count (the paper sweeps to 15).
use tdbms_bench::{figures, max_uc_from_env, run_sweep, BenchConfig};
use tdbms_kernel::DatabaseClass;

fn main() {
    let max_uc = max_uc_from_env(15);
    let (data, _) =
        run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), max_uc);
    print!("{}", figures::fig6(&data));
}
