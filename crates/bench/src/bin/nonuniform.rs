//! Regenerate the §5.4 non-uniform-distribution experiment: repeatedly
//! update a single tuple and confirm that the *average* growth rate
//! matches the uniform case. O(n²) in the average update count, so the
//! paper (and our default) stops at 4.
use tdbms_bench::{figures, max_uc_from_env, nonuniform_experiment};

fn main() {
    let max_avg = max_uc_from_env(4);
    let rows = nonuniform_experiment(max_avg);
    print!("{}", figures::nonuniform_table(&rows));
}
