//! Regenerate Figure 10: the measured two-level store and secondary-index
//! improvements for the temporal database at update count 14.
use tdbms_bench::{
    figures, max_uc_from_env, measure_improvements, run_sweep, BenchConfig,
};
use tdbms_kernel::DatabaseClass;

fn main() {
    let max_uc = max_uc_from_env(14);
    let (sweep, mut db) =
        run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), max_uc);
    let rows = measure_improvements(&mut db, &sweep);
    print!("{}", figures::fig10(&rows, max_uc));
}
