//! Regenerate Figure 8: input-page series, (a) temporal/100 % and
//! (b) rollback/50 %, as CSV plus an ASCII plot.
use tdbms_bench::{figures, max_uc_from_env, run_sweep, BenchConfig};
use tdbms_kernel::DatabaseClass;

fn main() {
    let max_uc = max_uc_from_env(15);
    let (t, _) =
        run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), max_uc);
    println!(
        "{}",
        figures::fig8(&t, &["Q10", "Q09", "Q11", "Q03", "Q12", "Q01"])
    );
    let (r, _) =
        run_sweep(BenchConfig::new(DatabaseClass::Rollback, 50), max_uc);
    println!("{}", figures::fig8(&r, &["Q10", "Q09", "Q03", "Q01"]));
}
